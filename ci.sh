#!/usr/bin/env bash
# Full local CI: build, format check, lint, static analysis, test. Run
# before every PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Workspace-wide determinism & protocol-invariant linter (DESIGN.md §8,
# §13). The run is ratcheted against the committed baseline: any finding
# not in lint-baseline.json (or any baseline entry the code no longer
# produces) exits 1. The --json pass re-runs with the machine report,
# which the binary self-validates before printing and exits 2 on if
# malformed.
echo "==> selsync-lint (workspace, baselined)"
./target/release/selsync-lint --baseline lint-baseline.json
./target/release/selsync-lint --json --baseline lint-baseline.json > /dev/null

# The committed baseline must be byte-identical to a fresh snapshot —
# a stale baseline (lines drifted, findings added/removed without
# regenerating) fails here even when the diff above happens to be clean.
echo "==> selsync-lint baseline regenerate-check"
./target/release/selsync-lint --write-baseline /tmp/selsync_lint_baseline_ci.json 2> /dev/null
diff -u lint-baseline.json /tmp/selsync_lint_baseline_ci.json || {
  echo "lint-baseline.json is stale; regenerate with: ./target/release/selsync-lint --write-baseline lint-baseline.json" >&2
  exit 1
}

# The wire-protocol table in DESIGN.md §13 is derived, not hand-written:
# regenerate it from the Payload enum + codec and diff against the copy
# committed between the wire-table markers.
echo "==> selsync-lint --wire-table vs DESIGN.md"
./target/release/selsync-lint --wire-table > /tmp/selsync_wire_table_ci.md
awk '/<!-- wire-table:begin -->/{f=1;next} /<!-- wire-table:end -->/{f=0} f' DESIGN.md > /tmp/selsync_wire_table_design.md
diff -u /tmp/selsync_wire_table_design.md /tmp/selsync_wire_table_ci.md || {
  echo "DESIGN.md wire table is stale; paste the output of: ./target/release/selsync-lint --wire-table" >&2
  exit 1
}

echo "==> cargo test -q (workspace, minus multi-process suites)"
cargo test -q --workspace --exclude selsync-bench --exclude selsync-serve

echo "==> cargo test -q (bench unit tests)"
cargo test -q -p selsync-bench --lib --bins

echo "==> cargo test -q (serve unit + steady-state tests)"
cargo test -q -p selsync-serve --lib --bins
cargo test -q -p selsync-serve --test steady_state

# The multi-process suites spawn real selsync_dist / selsync_serve OS
# processes on loopback TCP with liveness timeouts; under
# workspace-wide parallel load they miss heartbeat deadlines and flake.
# Run each binary alone, single-threaded.
for suite in dist_processes chaos_processes ps_failover_processes shard_processes overlap_processes; do
  echo "==> cargo test -q (${suite}, isolated)"
  cargo test -q -p selsync-bench --test "${suite}" -- --test-threads=1
done

echo "==> cargo test -q (serve_processes, isolated)"
cargo test -q -p selsync-serve --test serve_processes -- --test-threads=1

echo "==> chaos smoke (fault_experiments, reduced)"
SELSYNC_WORKERS=2 SELSYNC_STEPS=6 ./target/release/fault_experiments > /dev/null

# Seeded mutational fuzzing of the frame codec: ~12k mutated frames
# across every payload kind must decode to Ok or a typed FrameError —
# never a panic — and every accepted frame must re-encode bit-identical.
echo "==> frame-fuzz smoke (codec totality)"
cargo test -q -p selsync-net --test frame_fuzz

# Randomized fault-schedule sweep: 51 seeded FaultPlans across the
# monolithic / sharded / serve topologies, each checked against the
# soak invariants (deadline, conservation, classified recovery,
# bit-identity). Exits 1 and writes a shrunk JSON repro on violation.
echo "==> selsync_soak --quick (randomized fault sweep)"
./target/release/selsync_soak --quick --out /tmp/SOAK_repro_ci.json > /dev/null

# Regenerates BENCH_kernels.json and exits nonzero if the file is
# malformed or any optimized kernel's checksum diverges from the naive
# reference kernels beyond float-reassociation tolerance. The overlap
# smoke rides along: the `overlap_steps_per_sec` rows re-run the real
# bucketed vs monolithic BSP cluster and fail the run unless the two
# are bit-identical (DESIGN.md §12).
echo "==> kernel bench (quick; checksum + overlap bit-identity + JSON validation)"
./target/release/kernel_bench --quick > /dev/null

# Merges the sharded-PS sweep rows into BENCH_kernels.json (must run
# after kernel_bench, which rewrites the file wholesale) and exits
# nonzero if the fan-out byte accounting drifts, results diverge across
# shard counts, or the modeled K=4 stops beating K=1 at the congested
# point.
echo "==> shard bench (quick; byte-accounting + crossover validation)"
./target/release/shard_bench --quick > /dev/null

# Regenerates BENCH_serve.json from an in-process serving group and
# exits nonzero if any grid point dropped a request, produced a
# non-finite rate, or wrote a malformed file.
echo "==> serve bench (quick; request-accounting + JSON validation)"
./target/release/serve_bench --quick --out /tmp/BENCH_serve_ci.json > /dev/null

echo "CI OK"
