#!/usr/bin/env bash
# Full local CI: build, test, format check, lint. Run before every PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> chaos smoke (fault_experiments, reduced)"
SELSYNC_WORKERS=2 SELSYNC_STEPS=6 ./target/release/fault_experiments > /dev/null

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
