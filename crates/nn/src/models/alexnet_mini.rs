//! `AlexNetMini` — the shallow-convolution workload standing in for
//! AlexNet/ImageNet-1K (§IV-A of the paper).
//!
//! Architecture over `[n, 3, 8, 8]` inputs:
//! `conv3x3(3→12) → relu → maxpool2 → conv3x3(12→24) → relu → maxpool2
//!  → flatten → dropout(0.5) → fc(96→48) → relu → fc(48 → classes)`.
//! Shallow and few-layered — the property that made SSP competitive on
//! AlexNet in the paper (staleness hurts less with fewer layers), trained
//! with Adam and evaluated by top-5 accuracy.

use crate::batch::Input;
use crate::layers::{Conv2d, Dropout, Linear, MaxPool2d, Relu};
use crate::models::Model;
use crate::module::{Module, Param, ParamVisitor};
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_tensor::Tensor;

/// The AlexNet-style mini model (see module docs).
#[derive(Clone)]
pub struct AlexNetMini {
    conv1: Conv2d,
    relu1: Relu,
    pool1: MaxPool2d,
    conv2: Conv2d,
    relu2: Relu,
    pool2: MaxPool2d,
    drop: Dropout,
    fc1: Linear,
    relu3: Relu,
    fc2: Linear,
    classes: usize,
    flat_dim: usize,
    cache_n: usize,
    cache_conv_dims: Vec<usize>,
    ws: Workspace,
}

impl AlexNetMini {
    /// Expected input spatial size.
    pub const IMAGE_SIZE: usize = 8;

    /// Build with `classes` outputs from a seed.
    pub fn new(classes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = Self::IMAGE_SIZE;
        let conv1 = Conv2d::new("features.0", 3, 12, s, s, 3, 1, 1, &mut rng);
        let conv2 = Conv2d::new("features.3", 12, 24, s / 2, s / 2, 3, 1, 1, &mut rng);
        let flat_dim = 24 * (s / 4) * (s / 4);
        AlexNetMini {
            conv1,
            relu1: Relu::new(),
            pool1: MaxPool2d::new(2),
            conv2,
            relu2: Relu::new(),
            pool2: MaxPool2d::new(2),
            drop: Dropout::new(0.5, seed ^ 0xA1EC),
            fc1: Linear::new_kaiming("classifier.1", flat_dim, 48, &mut rng),
            relu3: Relu::new(),
            fc2: Linear::new("classifier.3", 48, classes, &mut rng),
            classes,
            flat_dim,
            cache_n: 0,
            cache_conv_dims: Vec::new(),
            ws: Workspace::new(),
        }
    }
}

impl ParamVisitor for AlexNetMini {
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.conv1.visit_params(f);
        self.conv2.visit_params(f);
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params_mut(f);
        self.conv2.visit_params_mut(f);
        self.fc1.visit_params_mut(f);
        self.fc2.visit_params_mut(f);
    }
}

impl Model for AlexNetMini {
    fn forward(&mut self, input: &Input, train: bool) -> Tensor {
        let x = input.dense();
        self.cache_n = x.shape().dim(0);
        let c1 = self.conv1.forward_ws(x, train, &mut self.ws);
        let h = self.relu1.forward(&c1, train);
        self.ws.give(c1);
        let h = self.pool1.forward(&h, train);
        let c2 = self.conv2.forward_ws(&h, train, &mut self.ws);
        let h = self.relu2.forward(&c2, train);
        self.ws.give(c2);
        let h = self.pool2.forward(&h, train);
        self.cache_conv_dims = h.shape().dims().to_vec();
        let h = h.reshape([self.cache_n, self.flat_dim]);
        let h = self.drop.forward(&h, train);
        let f1 = self.fc1.forward_ws(&h, train, &mut self.ws);
        let h = self.relu3.forward(&f1, train);
        self.ws.give(f1);
        // last layer stays on the allocating path: the logits escape
        self.fc2.forward(&h, train)
    }

    fn backward(&mut self, dlogits: &Tensor) {
        self.backward_hooked(dlogits, &mut |_, _| {});
    }

    fn backward_hooked(
        &mut self,
        dlogits: &Tensor,
        hook: &mut dyn FnMut(usize, &dyn ParamVisitor),
    ) {
        // visit order conv1 conv2 fc1 fc2; backward finalizes the exact
        // reverse (dropout/pool/relu carry no params).
        let mut watermark = self.num_params();
        let g = self.fc2.backward_ws(dlogits, &mut self.ws);
        watermark -= self.fc2.num_params();
        hook(watermark, &*self);
        let gr = self.relu3.backward(&g);
        self.ws.give(g);
        let g = self.fc1.backward_ws(&gr, &mut self.ws);
        watermark -= self.fc1.num_params();
        hook(watermark, &*self);
        let gd = self.drop.backward(&g);
        self.ws.give(g);
        let g = gd.reshape(self.cache_conv_dims.as_slice());
        let g = self.pool2.backward(&g);
        let g = self.relu2.backward(&g);
        let gc = self.conv2.backward_ws(&g, &mut self.ws);
        watermark -= self.conv2.num_params();
        hook(watermark, &*self);
        let g = self.pool1.backward(&gc);
        self.ws.give(gc);
        let g = self.relu1.backward(&g);
        let gc = self.conv1.backward_ws(&g, &mut self.ws);
        self.ws.give(gc);
        watermark -= self.conv1.num_params();
        debug_assert_eq!(watermark, 0);
        hook(0, &*self);
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn name(&self) -> &'static str {
        "alexnet_mini"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::{flat_grads, flat_params, set_flat_params};
    use crate::loss::softmax_cross_entropy;
    use selsync_tensor::init;

    fn input(n: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        init::randn([n, 3, 8, 8], 1.0, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut m = AlexNetMini::new(20, 0);
        let y = m.forward(&Input::Dense(input(2, 1)), true);
        assert_eq!(y.shape().dims(), &[2, 20]);
    }

    #[test]
    fn dropout_only_active_in_train_mode() {
        let mut m = AlexNetMini::new(20, 2);
        let x = Input::Dense(input(2, 3));
        let a = m.forward(&x, false);
        let b = m.forward(&x, false);
        assert_eq!(a.as_slice(), b.as_slice(), "eval is deterministic");
        let c = m.forward(&x, true);
        assert_ne!(
            a.as_slice(),
            c.as_slice(),
            "dropout perturbs training output"
        );
    }

    #[test]
    fn gradient_check_eval_dropout_path() {
        // gradient-check with train=true is noisy under dropout, so check
        // through the deterministic eval path using a dropout-free clone.
        let mut m = AlexNetMini::new(4, 4);
        m.drop = Dropout::new(0.0, 0);
        let x = input(2, 5);
        let targets = vec![1usize, 2];
        let logits = m.forward(&Input::Dense(x.clone()), true);
        let (base, dl) = softmax_cross_entropy(&logits, &targets);
        m.zero_grad();
        m.backward(&dl);
        let grads = flat_grads(&m);
        let params = flat_params(&m);
        let eps = 1e-2;
        let n = params.len();
        for &i in &[10usize, 500, n - 3] {
            let mut p2 = params.clone();
            p2[i] += eps;
            let mut m2 = m.clone();
            set_flat_params(&mut m2, &p2);
            let l2 = m2.forward(&Input::Dense(x.clone()), true);
            let (pert, _) = softmax_cross_entropy(&l2, &targets);
            let fd = (pert - base) / eps;
            assert!(
                (grads[i] - fd).abs() < 0.05 * fd.abs().max(0.2),
                "param {i}: analytic {} vs fd {fd}",
                grads[i]
            );
        }
    }
}
