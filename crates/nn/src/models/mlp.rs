//! A configurable multi-layer perceptron — the fast workhorse model used
//! by unit/integration tests and overhead-measurement experiments.

use crate::batch::Input;
use crate::layers::{Linear, Relu};
use crate::models::Model;
use crate::module::{Module, Param, ParamVisitor};
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_tensor::Tensor;

/// Fully-connected ReLU network `dims[0] → … → dims.last()`.
#[derive(Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    relus: Vec<Relu>,
    classes: usize,
}

impl Mlp {
    /// Build an MLP with the given layer widths from a seed.
    ///
    /// # Panics
    /// Panics if fewer than two widths are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        let mut relus = Vec::new();
        for i in 0..dims.len() - 1 {
            layers.push(Linear::new_kaiming(
                &format!("fc{i}"),
                dims[i],
                dims[i + 1],
                &mut rng,
            ));
            if i + 2 < dims.len() {
                relus.push(Relu::new());
            }
        }
        Mlp {
            layers,
            relus,
            classes: *dims.last().unwrap(),
        }
    }

    /// Input feature width.
    pub fn in_features(&self) -> usize {
        self.layers[0].in_features()
    }
}

impl ParamVisitor for Mlp {
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        for l in &self.layers {
            l.visit_params(f);
        }
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params_mut(f);
        }
    }
}

impl Model for Mlp {
    fn forward(&mut self, input: &Input, train: bool) -> Tensor {
        let x = input.dense();
        // accept [n, d] or flatten [n, c, h, w]
        let n = x.shape().dim(0);
        let feat: usize = x.shape().dims()[1..].iter().product();
        let mut h = x.reshaped([n, feat]);
        for i in 0..self.layers.len() {
            h = self.layers[i].forward(&h, train);
            if i < self.relus.len() {
                h = self.relus[i].forward(&h, train);
            }
        }
        h
    }

    /// Allocation-free inference for `[rows, features]` batches: every
    /// intermediate comes from the arena via `Linear::forward_ws`, and
    /// ReLU runs in place on the hidden activations (inference needs no
    /// saved mask). Image-shaped input falls back to the allocating
    /// path, since flattening it requires a copy anyway.
    fn predict_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        if x.shape().ndim() != 2 {
            return self.forward(&Input::Dense(x.clone()), false);
        }
        let mut h = self.layers[0].forward_ws(x, false, ws);
        for i in 1..self.layers.len() {
            for v in h.as_mut_slice() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            let next = self.layers[i].forward_ws(&h, false, ws);
            ws.give(h);
            h = next;
        }
        h
    }

    fn backward(&mut self, dlogits: &Tensor) {
        self.backward_hooked(dlogits, &mut |_, _| {});
    }

    fn backward_hooked(
        &mut self,
        dlogits: &Tensor,
        hook: &mut dyn FnMut(usize, &dyn ParamVisitor),
    ) {
        // forward order is L0 R0 L1 R1 … L_last (no ReLU after the last
        // layer), so ReLU i-1 precedes layer i on the way back; a
        // layer's params are final the moment its backward returns.
        let mut g = dlogits.clone();
        let mut watermark = self.num_params();
        for i in (0..self.layers.len()).rev() {
            g = self.layers[i].backward(&g);
            watermark -= self.layers[i].num_params();
            hook(watermark, &*self);
            if i > 0 {
                g = self.relus[i - 1].backward(&g);
            }
        }
        debug_assert_eq!(watermark, 0);
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn name(&self) -> &'static str {
        "mlp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::{Optimizer, Sgd};
    use selsync_tensor::init;

    #[test]
    fn forward_shapes() {
        let mut m = Mlp::new(&[4, 8, 3], 0);
        let y = m.forward(&Input::Dense(Tensor::zeros([5, 4])), true);
        assert_eq!(y.shape().dims(), &[5, 3]);
        assert_eq!(m.num_classes(), 3);
    }

    #[test]
    fn flattens_image_input() {
        let mut m = Mlp::new(&[12, 6, 2], 1);
        let y = m.forward(&Input::Dense(Tensor::zeros([2, 3, 2, 2])), true);
        assert_eq!(y.shape().dims(), &[2, 2]);
    }

    #[test]
    fn predict_ws_matches_forward_bit_exactly() {
        let mut m = Mlp::new(&[6, 12, 4], 7);
        let mut rng = StdRng::seed_from_u64(8);
        let x = init::randn([5, 6], 1.0, &mut rng);
        let want = m.forward(&Input::Dense(x.clone()), false);
        let mut ws = Workspace::new();
        let got = m.predict_ws(&x, &mut ws);
        assert_eq!(got.shape().dims(), want.shape().dims());
        let wb: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, wb, "workspace predict must be bit-identical");
    }

    #[test]
    fn predict_ws_flattens_image_input() {
        let mut m = Mlp::new(&[12, 6, 2], 1);
        let mut ws = Workspace::new();
        let y = m.predict_ws(&Tensor::zeros([2, 3, 2, 2]), &mut ws);
        assert_eq!(y.shape().dims(), &[2, 2]);
    }

    #[test]
    fn gradient_check_through_two_layers() {
        let mut m = Mlp::new(&[3, 5, 2], 2);
        let mut rng = StdRng::seed_from_u64(3);
        let x = init::randn([4, 3], 1.0, &mut rng);
        let targets = vec![0usize, 1, 0, 1];
        let logits = m.forward(&Input::Dense(x.clone()), true);
        let (base, dlogits) = softmax_cross_entropy(&logits, &targets);
        m.zero_grad();
        m.backward(&dlogits);
        let grads = crate::flat::flat_grads(&m);

        let eps = 1e-3;
        let params = crate::flat::flat_params(&m);
        for &i in &[0usize, 7, 20, params.len() - 1] {
            let mut p2 = params.clone();
            p2[i] += eps;
            let mut m2 = m.clone();
            crate::flat::set_flat_params(&mut m2, &p2);
            let l2 = m2.forward(&Input::Dense(x.clone()), true);
            let (pert, _) = softmax_cross_entropy(&l2, &targets);
            let fd = (pert - base) / eps;
            assert!(
                (grads[i] - fd).abs() < 2e-2,
                "param {i}: analytic {} vs fd {fd}",
                grads[i]
            );
        }
    }

    #[test]
    fn sgd_training_reduces_loss() {
        let mut m = Mlp::new(&[2, 16, 2], 4);
        let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        // simple separable task: sign of x0
        let x = init::randn([64, 2], 1.0, &mut rng);
        let targets: Vec<usize> = (0..64).map(|i| (x.at(&[i, 0]) > 0.0) as usize).collect();
        let batch = Batch::dense(x, targets);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..60 {
            let logits = m.forward(&batch.input, true);
            let (loss, dl) = softmax_cross_entropy(&logits, &batch.targets);
            if step == 0 {
                first = loss;
            }
            last = loss;
            m.zero_grad();
            m.backward(&dl);
            opt.step(&mut m);
        }
        assert!(last < first * 0.5, "loss {first} → {last} should halve");
    }
}
