//! `TransformerMini` — the language-model workload standing in for the
//! paper's 2-layer Transformer encoder on WikiText-103 (§IV-A).
//!
//! Post-norm encoder layers (matching the paper's
//! `transformer_encoder_layers_0_norm1_weight` naming):
//! `x → attn → (+x) → norm1 → ffn → (+) → norm2`, with causal masking so
//! the model is trained on next-token prediction; logits share no weights
//! with the embedding (untied, like `nn.Transformer` reference code).

use crate::batch::Input;
use crate::layers::embedding::PositionalEncoding;
use crate::layers::{Embedding, Gelu, LayerNorm, Linear, MultiHeadSelfAttention};
use crate::models::Model;
use crate::module::{Module, Param, ParamVisitor};
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_tensor::{ops, Tensor};

/// One post-norm Transformer encoder layer.
#[derive(Clone)]
struct EncoderLayer {
    attn: MultiHeadSelfAttention,
    norm1: LayerNorm,
    ff1: Linear,
    act: Gelu,
    ff2: Linear,
    norm2: LayerNorm,
}

impl EncoderLayer {
    fn new(name: &str, dim: usize, heads: usize, ff_dim: usize, rng: &mut StdRng) -> Self {
        EncoderLayer {
            attn: MultiHeadSelfAttention::new(&format!("{name}.self_attn"), dim, heads, rng),
            norm1: LayerNorm::new(&format!("{name}.norm1"), dim),
            ff1: Linear::new(&format!("{name}.linear1"), dim, ff_dim, rng),
            act: Gelu::new(),
            ff2: Linear::new(&format!("{name}.linear2"), ff_dim, dim, rng),
            norm2: LayerNorm::new(&format!("{name}.norm2"), dim),
        }
    }

    /// Forward pass; attention and feed-forward temporaries come from
    /// `ws`. The returned activation is heap-owned (LayerNorm output).
    fn forward(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        train: bool,
        ws: &mut Workspace,
    ) -> Tensor {
        let mut a = self.attn.forward_seq_ws(x, batch, seq, true, ws);
        ops::add_assign(&mut a, x);
        let h = self.norm1.forward(&a, train);
        ws.give(a);
        let f1 = self.ff1.forward_ws(&h, train, ws);
        let f = self.act.forward(&f1, train);
        ws.give(f1);
        let mut f2 = self.ff2.forward_ws(&f, train, ws);
        ops::add_assign(&mut f2, &h);
        let out = self.norm2.forward(&f2, train);
        ws.give(f2);
        out
    }

    /// Backward pass. The returned `dx` is workspace-owned — the caller
    /// must `ws.give` it back once consumed.
    fn backward(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let dsum2 = self.norm2.backward(dy);
        // ffn branch
        let g2 = self.ff2.backward_ws(&dsum2, ws);
        let ga = self.act.backward(&g2);
        ws.give(g2);
        let mut g = self.ff1.backward_ws(&ga, ws);
        // + residual into norm1 output
        ops::add_assign(&mut g, &dsum2);
        let dsum1 = self.norm1.backward(&g);
        ws.give(g);
        // attention branch + residual into layer input
        let mut dx = self.attn.backward_seq_ws(&dsum1, ws);
        ops::add_assign(&mut dx, &dsum1);
        dx
    }

    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.attn.visit_params(f);
        self.norm1.visit_params(f);
        self.ff1.visit_params(f);
        self.ff2.visit_params(f);
        self.norm2.visit_params(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.attn.visit_params_mut(f);
        self.norm1.visit_params_mut(f);
        self.ff1.visit_params_mut(f);
        self.ff2.visit_params_mut(f);
        self.norm2.visit_params_mut(f);
    }

    /// Scalar parameter count across the whole encoder layer.
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |p| n += p.numel());
        n
    }
}

/// The Transformer-style mini language model (see module docs).
#[derive(Clone)]
pub struct TransformerMini {
    embed: Embedding,
    pos: PositionalEncoding,
    layers: Vec<EncoderLayer>,
    head: Linear,
    vocab: usize,
    cache_batch: usize,
    cache_seq: usize,
    ws: Workspace,
}

impl TransformerMini {
    /// Embedding width (the paper uses 200; scaled down with the vocab).
    pub const DIM: usize = 16;
    /// Attention heads (the paper uses 2).
    pub const HEADS: usize = 2;
    /// Feed-forward width.
    pub const FF_DIM: usize = 32;
    /// Encoder layers (the paper uses 2).
    pub const LAYERS: usize = 2;
    /// Maximum sequence length supported (paper bptt = 35).
    pub const MAX_SEQ: usize = 64;

    /// Build with `vocab` output classes from a seed.
    pub fn new(vocab: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = (0..Self::LAYERS)
            .map(|i| {
                EncoderLayer::new(
                    &format!("transformer_encoder.layers.{i}"),
                    Self::DIM,
                    Self::HEADS,
                    Self::FF_DIM,
                    &mut rng,
                )
            })
            .collect();
        TransformerMini {
            embed: Embedding::new("embedding", vocab, Self::DIM, &mut rng),
            pos: PositionalEncoding::new(Self::MAX_SEQ, Self::DIM),
            layers,
            head: Linear::new("decoder", Self::DIM, vocab, &mut rng),
            vocab,
            cache_batch: 0,
            cache_seq: 0,
            ws: Workspace::new(),
        }
    }
}

impl ParamVisitor for TransformerMini {
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.embed.visit_params(f);
        for l in &self.layers {
            l.visit(f);
        }
        self.head.visit_params(f);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.embed.visit_params_mut(f);
        for l in &mut self.layers {
            l.visit_mut(f);
        }
        self.head.visit_params_mut(f);
    }
}

impl Model for TransformerMini {
    fn forward(&mut self, input: &Input, train: bool) -> Tensor {
        let seqs = input.tokens();
        let batch = seqs.len();
        let seq = seqs[0].len();
        assert!(seqs.iter().all(|s| s.len() == seq), "ragged batch");
        assert!(seq <= Self::MAX_SEQ, "sequence too long");
        self.cache_batch = batch;
        self.cache_seq = seq;
        let flat_ids: Vec<usize> = seqs.iter().flatten().copied().collect();
        let mut h = self.embed.forward_tokens(&flat_ids);
        self.pos.add_to(&mut h, seq);
        for l in &mut self.layers {
            h = l.forward(&h, batch, seq, train, &mut self.ws);
        }
        // last layer stays on the allocating path: the logits escape
        self.head.forward(&h, train)
    }

    fn backward(&mut self, dlogits: &Tensor) {
        self.backward_hooked(dlogits, &mut |_, _| {});
    }

    fn backward_hooked(
        &mut self,
        dlogits: &Tensor,
        hook: &mut dyn FnMut(usize, &dyn ParamVisitor),
    ) {
        // visit order embed layers[0..L] head; an EncoderLayer's
        // backward finalizes all five of its modules before returning,
        // and the embedding is untied from the decoder head, so the
        // finalized region is always a clean suffix.
        let mut watermark = self.num_params();
        let mut g = self.head.backward_ws(dlogits, &mut self.ws);
        watermark -= self.head.num_params();
        hook(watermark, &*self);
        for i in (0..self.layers.len()).rev() {
            let g2 = self.layers[i].backward(&g, &mut self.ws);
            self.ws.give(g);
            g = g2;
            watermark -= self.layers[i].param_count();
            hook(watermark, &*self);
        }
        self.embed.backward_tokens(&g);
        self.ws.give(g);
        watermark -= self.embed.num_params();
        debug_assert_eq!(watermark, 0);
        hook(0, &*self);
    }

    fn num_classes(&self) -> usize {
        self.vocab
    }

    fn name(&self) -> &'static str {
        "transformer_mini"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use crate::flat::{flat_grads, flat_params, set_flat_params};
    use crate::loss::softmax_cross_entropy;

    fn batch() -> Batch {
        // two sequences of length 4 over a vocab of 16
        Batch::tokens(
            vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]],
            vec![2, 3, 4, 5, 6, 7, 8, 9],
        )
    }

    #[test]
    fn forward_shape_is_positions_by_vocab() {
        let mut m = TransformerMini::new(16, 0);
        let y = m.forward(&batch().input, true);
        assert_eq!(y.shape().dims(), &[8, 16]);
    }

    #[test]
    fn causality_future_tokens_do_not_affect_past_logits() {
        let mut m = TransformerMini::new(16, 1);
        let a = m.forward(&Input::Tokens(vec![vec![1, 2, 3, 4]]), false);
        let b = m.forward(&Input::Tokens(vec![vec![1, 2, 9, 10]]), false);
        // logits at positions 0 and 1 must be identical (only tokens ≥ 2 differ)
        assert_eq!(a.row(0), b.row(0));
        assert_eq!(a.row(1), b.row(1));
        assert_ne!(a.row(2), b.row(2));
    }

    #[test]
    fn paper_layer_names_present() {
        let m = TransformerMini::new(16, 2);
        let mut names = Vec::new();
        m.visit_params(&mut |p| names.push(p.name.clone()));
        assert!(names
            .iter()
            .any(|n| n == "transformer_encoder.layers.0.norm1.weight"));
        assert!(names.iter().any(|n| n == "decoder.weight"));
    }

    #[test]
    fn gradient_check_spot_samples() {
        let mut m = TransformerMini::new(8, 3);
        let b = Batch::tokens(vec![vec![1, 2, 3]], vec![2, 3, 4]);
        let logits = m.forward(&b.input, true);
        let (base, dl) = softmax_cross_entropy(&logits, &b.targets);
        m.zero_grad();
        m.backward(&dl);
        let grads = flat_grads(&m);
        let params = flat_params(&m);
        let eps = 1e-2;
        let n = params.len();
        // embedding row of token 1, an attention weight, an ffn weight,
        // and a decoder weight
        for &i in &[16usize, 200, n / 2, n - 3] {
            let mut p2 = params.clone();
            p2[i] += eps;
            let mut m2 = m.clone();
            set_flat_params(&mut m2, &p2);
            let l2 = m2.forward(&b.input, true);
            let (pert, _) = softmax_cross_entropy(&l2, &b.targets);
            let fd = (pert - base) / eps;
            assert!(
                (grads[i] - fd).abs() < 0.05 * fd.abs().max(0.2),
                "param {i}: analytic {} vs fd {fd}",
                grads[i]
            );
        }
    }

    #[test]
    fn training_reduces_perplexity_on_repetitive_sequence() {
        use crate::optim::{Optimizer, Sgd};
        let mut m = TransformerMini::new(8, 4);
        let mut opt = Sgd::with_momentum(0.05, 0.9, 0.0);
        // cyclic language: 0 1 2 3 0 1 2 3 ... is fully predictable
        let seqs = vec![vec![0, 1, 2, 3, 0, 1, 2, 3]];
        let targets = vec![1, 2, 3, 0, 1, 2, 3, 0];
        let b = Batch::tokens(seqs, targets);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..80 {
            let logits = m.forward(&b.input, true);
            let (loss, dl) = softmax_cross_entropy(&logits, &b.targets);
            if step == 0 {
                first = loss;
            }
            last = loss;
            m.zero_grad();
            m.backward(&dl);
            opt.step(&mut m);
        }
        assert!(last < first * 0.7, "loss {first} → {last}");
    }
}
