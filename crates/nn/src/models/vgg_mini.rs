//! `VggMini` — the plain deep-convolution workload standing in for
//! VGG11/CIFAR100 (§IV-A of the paper).
//!
//! Architecture over `[n, 3, 8, 8]` inputs:
//! `conv3x3(3→16) → relu → maxpool2 → conv3x3(16→32) → relu → maxpool2
//!  → flatten → fc(128→64) → relu → fc(64 → classes)`.
//! No skip connections and no batch-norm — the "simpler convolution-based
//! architecture" whose generalization suffers most under DefDP (§IV-C).

use crate::batch::Input;
use crate::layers::{Conv2d, Linear, MaxPool2d, Relu};
use crate::models::Model;
use crate::module::{Module, Param, ParamVisitor};
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_tensor::Tensor;

/// The VGG-style mini model (see module docs).
#[derive(Clone)]
pub struct VggMini {
    conv1: Conv2d,
    relu1: Relu,
    pool1: MaxPool2d,
    conv2: Conv2d,
    relu2: Relu,
    pool2: MaxPool2d,
    fc1: Linear,
    relu3: Relu,
    fc2: Linear,
    classes: usize,
    flat_dim: usize,
    cache_n: usize,
    cache_conv_dims: Vec<usize>,
    ws: Workspace,
}

impl VggMini {
    /// Expected input spatial size.
    pub const IMAGE_SIZE: usize = 8;

    /// Build with `classes` outputs from a seed.
    pub fn new(classes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = Self::IMAGE_SIZE;
        let conv1 = Conv2d::new("features.0", 3, 16, s, s, 3, 1, 1, &mut rng);
        let conv2 = Conv2d::new("features.3", 16, 32, s / 2, s / 2, 3, 1, 1, &mut rng);
        let flat_dim = 32 * (s / 4) * (s / 4);
        VggMini {
            conv1,
            relu1: Relu::new(),
            pool1: MaxPool2d::new(2),
            conv2,
            relu2: Relu::new(),
            pool2: MaxPool2d::new(2),
            fc1: Linear::new_kaiming("classifier.0", flat_dim, 64, &mut rng),
            relu3: Relu::new(),
            fc2: Linear::new("classifier.2", 64, classes, &mut rng),
            classes,
            flat_dim,
            cache_n: 0,
            cache_conv_dims: Vec::new(),
            ws: Workspace::new(),
        }
    }
}

impl ParamVisitor for VggMini {
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.conv1.visit_params(f);
        self.conv2.visit_params(f);
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params_mut(f);
        self.conv2.visit_params_mut(f);
        self.fc1.visit_params_mut(f);
        self.fc2.visit_params_mut(f);
    }
}

impl Model for VggMini {
    fn forward(&mut self, input: &Input, train: bool) -> Tensor {
        let x = input.dense();
        self.cache_n = x.shape().dim(0);
        let c1 = self.conv1.forward_ws(x, train, &mut self.ws);
        let h = self.relu1.forward(&c1, train);
        self.ws.give(c1);
        let h = self.pool1.forward(&h, train);
        let c2 = self.conv2.forward_ws(&h, train, &mut self.ws);
        let h = self.relu2.forward(&c2, train);
        self.ws.give(c2);
        let h = self.pool2.forward(&h, train);
        self.cache_conv_dims = h.shape().dims().to_vec();
        let h = h.reshape([self.cache_n, self.flat_dim]);
        let f1 = self.fc1.forward_ws(&h, train, &mut self.ws);
        let h = self.relu3.forward(&f1, train);
        self.ws.give(f1);
        // last layer stays on the allocating path: the logits escape
        self.fc2.forward(&h, train)
    }

    fn backward(&mut self, dlogits: &Tensor) {
        self.backward_hooked(dlogits, &mut |_, _| {});
    }

    fn backward_hooked(
        &mut self,
        dlogits: &Tensor,
        hook: &mut dyn FnMut(usize, &dyn ParamVisitor),
    ) {
        // visit order conv1 conv2 fc1 fc2; backward finalizes the exact
        // reverse, so the watermark walks down one layer at a time.
        let mut watermark = self.num_params();
        let g = self.fc2.backward_ws(dlogits, &mut self.ws);
        watermark -= self.fc2.num_params();
        hook(watermark, &*self);
        let gr = self.relu3.backward(&g);
        self.ws.give(g);
        let g = self.fc1.backward_ws(&gr, &mut self.ws);
        watermark -= self.fc1.num_params();
        hook(watermark, &*self);
        let g2 = g.reshape(self.cache_conv_dims.as_slice());
        let g = self.pool2.backward(&g2);
        self.ws.give(g2);
        let g = self.relu2.backward(&g);
        let gc = self.conv2.backward_ws(&g, &mut self.ws);
        watermark -= self.conv2.num_params();
        hook(watermark, &*self);
        let g = self.pool1.backward(&gc);
        self.ws.give(gc);
        let g = self.relu1.backward(&g);
        let gc = self.conv1.backward_ws(&g, &mut self.ws);
        self.ws.give(gc);
        watermark -= self.conv1.num_params();
        debug_assert_eq!(watermark, 0);
        hook(0, &*self);
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn name(&self) -> &'static str {
        "vgg_mini"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::{flat_grads, flat_params, set_flat_params};
    use crate::loss::softmax_cross_entropy;
    use selsync_tensor::init;

    fn input(n: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        init::randn([n, 3, 8, 8], 1.0, &mut rng)
    }

    #[test]
    fn forward_shape_and_determinism() {
        let mut m = VggMini::new(100, 0);
        let y = m.forward(&Input::Dense(input(3, 1)), true);
        assert_eq!(y.shape().dims(), &[3, 100]);
        assert_eq!(
            flat_params(&VggMini::new(100, 9)),
            flat_params(&VggMini::new(100, 9))
        );
    }

    #[test]
    fn no_norm_layers_all_params_weight_or_bias() {
        let m = VggMini::new(10, 0);
        let mut count = 0;
        m.visit_params(&mut |p| {
            assert!(p.name.ends_with(".weight") || p.name.ends_with(".bias"));
            count += 1;
        });
        assert_eq!(count, 8, "4 layers × (weight, bias)");
    }

    #[test]
    fn gradient_check_spot_samples() {
        let mut m = VggMini::new(4, 2);
        let x = input(2, 3);
        let targets = vec![2usize, 0];
        let logits = m.forward(&Input::Dense(x.clone()), true);
        let (base, dl) = softmax_cross_entropy(&logits, &targets);
        m.zero_grad();
        m.backward(&dl);
        let grads = flat_grads(&m);
        let params = flat_params(&m);
        let eps = 1e-2;
        let n = params.len();
        for &i in &[5usize, 300, n - 10, n - 1] {
            let mut p2 = params.clone();
            p2[i] += eps;
            let mut m2 = m.clone();
            set_flat_params(&mut m2, &p2);
            let l2 = m2.forward(&Input::Dense(x.clone()), true);
            let (pert, _) = softmax_cross_entropy(&l2, &targets);
            let fd = (pert - base) / eps;
            // one-sided finite differences carry O(eps) curvature error
            assert!(
                (grads[i] - fd).abs() < 0.08 * fd.abs().max(0.2),
                "param {i}: analytic {} vs fd {fd}",
                grads[i]
            );
        }
    }
}
