//! The mini model zoo standing in for the paper's four workloads.
//!
//! | Mini                | Paper workload             | Property preserved |
//! |---------------------|----------------------------|--------------------|
//! | [`ResNetMini`]      | ResNet101 on CIFAR10       | skip connections → robust to local training |
//! | [`VggMini`]         | VGG11 on CIFAR100          | plain deep conv stack → fragile under DefDP |
//! | [`AlexNetMini`]     | AlexNet on ImageNet-1K     | shallow; trained with Adam, top-5 metric |
//! | [`TransformerMini`] | Transformer on WikiText-103| attention LM, perplexity metric |
//!
//! Each model implements [`Model`]: `forward` consumes a [`Input`] and
//! yields logits `[rows, classes]`; `backward` consumes the logits
//! gradient. The cost model in `selsync-comm` uses
//! [`ModelKind::paper_model_bytes`] so timing figures reflect the
//! *paper's* model sizes, not the minis'.

pub mod alexnet_mini;
pub mod mlp;
pub mod resnet_mini;
pub mod transformer_mini;
pub mod vgg_mini;

pub use alexnet_mini::AlexNetMini;
pub use mlp::Mlp;
pub use resnet_mini::ResNetMini;
pub use transformer_mini::TransformerMini;
pub use vgg_mini::VggMini;

use crate::batch::Input;
use crate::module::ParamVisitor;
use crate::workspace::Workspace;
use selsync_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable model: batch in, logits out.
pub trait Model: ParamVisitor + Send {
    /// Forward pass producing logits `[rows, classes]` (one row per
    /// sample, or per token position for language models).
    fn forward(&mut self, input: &Input, train: bool) -> Tensor;

    /// Backward pass from the logits gradient (as produced by
    /// [`crate::loss::softmax_cross_entropy`]).
    fn backward(&mut self, dlogits: &Tensor);

    /// Backward pass that reports gradient readiness as it runs.
    ///
    /// Every in-tree model runs backprop in exactly the *reverse* of its
    /// [`ParamVisitor::visit_params`] order, so mid-backward the
    /// finalized gradients always form a **suffix** of the flat
    /// parameter vector. After each parameterized stage finishes, `hook`
    /// is invoked with the new *watermark* — the flat offset below which
    /// gradients are still in flight. When `hook(w, m)` runs,
    /// `flat_grads(m)[w..]` is final and will not change for the rest of
    /// the pass.
    ///
    /// Contract (relied on by the bucketed gradient pipeline,
    /// DESIGN.md §12):
    /// - watermarks are strictly decreasing across calls and the final
    ///   call passes 0;
    /// - the gradients produced are bit-identical to a plain
    ///   [`Model::backward`] — the hook observes, it never reorders
    ///   arithmetic.
    ///
    /// The default ignores `hook` and delegates to [`Model::backward`]:
    /// correct for any model — callers must flush buckets that were
    /// never announced once this returns — but with zero
    /// compute/communication overlap. All in-tree models override it.
    fn backward_hooked(
        &mut self,
        dlogits: &Tensor,
        hook: &mut dyn FnMut(usize, &dyn ParamVisitor),
    ) {
        let _ = hook;
        self.backward(dlogits);
    }

    /// Workspace-aware inference entry point for the serving tier:
    /// logits `[rows, classes]` for a dense batch `x` of shape
    /// `[rows, features…]`, drawing every temporary from `ws` so a
    /// steady-state predict loop performs zero arena allocations after
    /// warmup. The caller owns the returned tensor and should `give` it
    /// back to `ws` once consumed to keep the arena balanced.
    ///
    /// The default delegates to the allocating [`Model::forward`] path;
    /// models with a full `_ws` pipeline (the MLP) override it.
    fn predict_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let _ = &mut *ws;
        self.forward(&Input::Dense(x.clone()), false)
    }

    /// Number of output classes (vocab size for language models).
    fn num_classes(&self) -> usize;

    /// Short name used in logs and experiment output.
    fn name(&self) -> &'static str;
}

/// Identifier of a paper workload; carries the metadata the experiment
/// harnesses need (paper-scale sizes, metric names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// ResNet101 / CIFAR10 analogue.
    ResNetMini,
    /// VGG11 / CIFAR100 analogue.
    VggMini,
    /// AlexNet / ImageNet-1K analogue.
    AlexNetMini,
    /// Transformer / WikiText-103 analogue.
    TransformerMini,
}

impl ModelKind {
    /// All four paper workloads, in Table-I order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::ResNetMini,
        ModelKind::VggMini,
        ModelKind::AlexNetMini,
        ModelKind::TransformerMini,
    ];

    /// The paper's name for the workload.
    pub fn paper_name(self) -> &'static str {
        match self {
            ModelKind::ResNetMini => "ResNet101",
            ModelKind::VggMini => "VGG11",
            ModelKind::AlexNetMini => "AlexNet",
            ModelKind::TransformerMini => "Transformer",
        }
    }

    /// Size of the *paper's* model in bytes (fp32), used by the network
    /// cost model so communication/compute ratios match the paper's
    /// regime. VGG11 = 507 MB is stated in the paper (§I); the others are
    /// standard parameter counts × 4 bytes (ResNet101 ≈ 44.5 M,
    /// AlexNet ≈ 61 M, WikiText-103 Transformer w/ 200-d tied embedding
    /// ≈ 28 M).
    pub fn paper_model_bytes(self) -> u64 {
        match self {
            ModelKind::ResNetMini => 178_000_000,
            ModelKind::VggMini => 507_000_000,
            ModelKind::AlexNetMini => 233_000_000,
            ModelKind::TransformerMini => 112_000_000,
        }
    }

    /// The paper's evaluation metric for this workload.
    pub fn metric(self) -> &'static str {
        match self {
            ModelKind::ResNetMini => "top-1 accuracy",
            ModelKind::VggMini => "top-1 accuracy",
            ModelKind::AlexNetMini => "top-5 accuracy",
            ModelKind::TransformerMini => "perplexity",
        }
    }

    /// Whether lower metric values are better (perplexity) or higher
    /// (accuracy).
    pub fn lower_is_better(self) -> bool {
        matches!(self, ModelKind::TransformerMini)
    }

    /// Number of classes in the paired dataset substitute. The ratios
    /// mirror the paper's datasets — VGG's task has several times the
    /// labels of ResNet's (CIFAR100 vs CIFAR10), AlexNet's sits between
    /// (ImageNet-1K scaled down), the LM vocab is largest.
    pub fn default_classes(self) -> usize {
        match self {
            ModelKind::ResNetMini => 10,
            ModelKind::VggMini => 20,
            ModelKind::AlexNetMini => 20,
            ModelKind::TransformerMini => 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::flat_grads;
    use crate::loss::softmax_cross_entropy;
    use crate::module::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selsync_tensor::init;

    /// The `backward_hooked` contract every model must satisfy: strictly
    /// decreasing watermarks ending at 0, each announced suffix already
    /// bit-final, and total grads bit-identical to plain `backward`.
    fn assert_hook_contract<M: Model>(mut build: impl FnMut() -> M, input: Input) {
        // reference: plain backward on a fresh same-seed model
        let mut a = build();
        let logits = a.forward(&input, true);
        let rows = logits.shape().dim(0);
        let classes = a.num_classes();
        let targets: Vec<usize> = (0..rows).map(|i| i % classes).collect();
        let (_, dl) = softmax_cross_entropy(&logits, &targets);
        a.zero_grad();
        a.backward(&dl);
        let want = flat_grads(&a);

        // hooked pass on an identical twin
        let mut b = build();
        let logits_b = b.forward(&input, true);
        let (_, dl_b) = softmax_cross_entropy(&logits_b, &targets);
        b.zero_grad();
        let total = b.num_params();
        let mut marks: Vec<usize> = Vec::new();
        b.backward_hooked(&dl_b, &mut |w, m| {
            let partial = flat_grads(m);
            assert_eq!(partial.len(), total);
            let got: Vec<u32> = partial[w..].iter().map(|v| v.to_bits()).collect();
            let exp: Vec<u32> = want[w..].iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, exp, "suffix at watermark {w} not yet final");
            marks.push(w);
        });
        assert!(!marks.is_empty(), "hook never fired");
        assert!(
            marks.windows(2).all(|p| p[0] > p[1]),
            "watermarks must strictly decrease: {marks:?}"
        );
        assert!(marks[0] < total, "first watermark excludes the last layer");
        assert_eq!(*marks.last().unwrap(), 0, "backward must finish at 0");
        let got: Vec<u32> = flat_grads(&b).iter().map(|v| v.to_bits()).collect();
        let exp: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, exp, "hooked grads must be bit-identical to plain");
    }

    fn image(n: usize, seed: u64) -> Input {
        let mut rng = StdRng::seed_from_u64(seed);
        Input::Dense(init::randn([n, 3, 8, 8], 1.0, &mut rng))
    }

    #[test]
    fn backward_hooked_contract_mlp() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = init::randn([3, 12], 1.0, &mut rng);
        assert_hook_contract(|| Mlp::new(&[12, 10, 8, 4], 7), Input::Dense(x));
    }

    #[test]
    fn backward_hooked_contract_vgg() {
        assert_hook_contract(|| VggMini::new(4, 5), image(2, 6));
    }

    #[test]
    fn backward_hooked_contract_alexnet() {
        assert_hook_contract(|| AlexNetMini::new(4, 5), image(2, 6));
    }

    #[test]
    fn backward_hooked_contract_resnet() {
        assert_hook_contract(|| ResNetMini::new(4, 5), image(2, 6));
    }

    #[test]
    fn backward_hooked_contract_transformer() {
        assert_hook_contract(
            || TransformerMini::new(16, 5),
            Input::Tokens(vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]]),
        );
    }

    struct Plain {
        p: Param,
    }

    impl ParamVisitor for Plain {
        fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
            f(&self.p);
        }
        fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    impl Model for Plain {
        fn forward(&mut self, _input: &Input, _train: bool) -> Tensor {
            Tensor::zeros([1, 1])
        }
        fn backward(&mut self, _dlogits: &Tensor) {
            self.p.grad.fill(1.0);
        }
        fn num_classes(&self) -> usize {
            1
        }
        fn name(&self) -> &'static str {
            "plain"
        }
    }

    #[test]
    fn default_backward_hooked_delegates_without_announcing() {
        let mut m = Plain {
            p: Param::new("w", Tensor::zeros([2])),
        };
        let mut calls = 0;
        m.backward_hooked(&Tensor::zeros([1, 1]), &mut |_, _| calls += 1);
        assert_eq!(calls, 0, "default must not announce partial progress");
        assert_eq!(m.p.grad.as_slice(), &[1.0, 1.0], "still runs backward");
    }

    #[test]
    fn kinds_cover_table1_rows() {
        assert_eq!(ModelKind::ALL.len(), 4);
        assert_eq!(ModelKind::ResNetMini.paper_name(), "ResNet101");
        assert_eq!(ModelKind::VggMini.paper_model_bytes(), 507_000_000);
    }

    #[test]
    fn metric_direction() {
        assert!(ModelKind::TransformerMini.lower_is_better());
        assert!(!ModelKind::ResNetMini.lower_is_better());
    }
}
