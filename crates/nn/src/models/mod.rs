//! The mini model zoo standing in for the paper's four workloads.
//!
//! | Mini                | Paper workload             | Property preserved |
//! |---------------------|----------------------------|--------------------|
//! | [`ResNetMini`]      | ResNet101 on CIFAR10       | skip connections → robust to local training |
//! | [`VggMini`]         | VGG11 on CIFAR100          | plain deep conv stack → fragile under DefDP |
//! | [`AlexNetMini`]     | AlexNet on ImageNet-1K     | shallow; trained with Adam, top-5 metric |
//! | [`TransformerMini`] | Transformer on WikiText-103| attention LM, perplexity metric |
//!
//! Each model implements [`Model`]: `forward` consumes a [`Input`] and
//! yields logits `[rows, classes]`; `backward` consumes the logits
//! gradient. The cost model in `selsync-comm` uses
//! [`ModelKind::paper_model_bytes`] so timing figures reflect the
//! *paper's* model sizes, not the minis'.

pub mod alexnet_mini;
pub mod mlp;
pub mod resnet_mini;
pub mod transformer_mini;
pub mod vgg_mini;

pub use alexnet_mini::AlexNetMini;
pub use mlp::Mlp;
pub use resnet_mini::ResNetMini;
pub use transformer_mini::TransformerMini;
pub use vgg_mini::VggMini;

use crate::batch::Input;
use crate::module::ParamVisitor;
use crate::workspace::Workspace;
use selsync_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable model: batch in, logits out.
pub trait Model: ParamVisitor + Send {
    /// Forward pass producing logits `[rows, classes]` (one row per
    /// sample, or per token position for language models).
    fn forward(&mut self, input: &Input, train: bool) -> Tensor;

    /// Backward pass from the logits gradient (as produced by
    /// [`crate::loss::softmax_cross_entropy`]).
    fn backward(&mut self, dlogits: &Tensor);

    /// Workspace-aware inference entry point for the serving tier:
    /// logits `[rows, classes]` for a dense batch `x` of shape
    /// `[rows, features…]`, drawing every temporary from `ws` so a
    /// steady-state predict loop performs zero arena allocations after
    /// warmup. The caller owns the returned tensor and should `give` it
    /// back to `ws` once consumed to keep the arena balanced.
    ///
    /// The default delegates to the allocating [`Model::forward`] path;
    /// models with a full `_ws` pipeline (the MLP) override it.
    fn predict_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let _ = &mut *ws;
        self.forward(&Input::Dense(x.clone()), false)
    }

    /// Number of output classes (vocab size for language models).
    fn num_classes(&self) -> usize;

    /// Short name used in logs and experiment output.
    fn name(&self) -> &'static str;
}

/// Identifier of a paper workload; carries the metadata the experiment
/// harnesses need (paper-scale sizes, metric names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// ResNet101 / CIFAR10 analogue.
    ResNetMini,
    /// VGG11 / CIFAR100 analogue.
    VggMini,
    /// AlexNet / ImageNet-1K analogue.
    AlexNetMini,
    /// Transformer / WikiText-103 analogue.
    TransformerMini,
}

impl ModelKind {
    /// All four paper workloads, in Table-I order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::ResNetMini,
        ModelKind::VggMini,
        ModelKind::AlexNetMini,
        ModelKind::TransformerMini,
    ];

    /// The paper's name for the workload.
    pub fn paper_name(self) -> &'static str {
        match self {
            ModelKind::ResNetMini => "ResNet101",
            ModelKind::VggMini => "VGG11",
            ModelKind::AlexNetMini => "AlexNet",
            ModelKind::TransformerMini => "Transformer",
        }
    }

    /// Size of the *paper's* model in bytes (fp32), used by the network
    /// cost model so communication/compute ratios match the paper's
    /// regime. VGG11 = 507 MB is stated in the paper (§I); the others are
    /// standard parameter counts × 4 bytes (ResNet101 ≈ 44.5 M,
    /// AlexNet ≈ 61 M, WikiText-103 Transformer w/ 200-d tied embedding
    /// ≈ 28 M).
    pub fn paper_model_bytes(self) -> u64 {
        match self {
            ModelKind::ResNetMini => 178_000_000,
            ModelKind::VggMini => 507_000_000,
            ModelKind::AlexNetMini => 233_000_000,
            ModelKind::TransformerMini => 112_000_000,
        }
    }

    /// The paper's evaluation metric for this workload.
    pub fn metric(self) -> &'static str {
        match self {
            ModelKind::ResNetMini => "top-1 accuracy",
            ModelKind::VggMini => "top-1 accuracy",
            ModelKind::AlexNetMini => "top-5 accuracy",
            ModelKind::TransformerMini => "perplexity",
        }
    }

    /// Whether lower metric values are better (perplexity) or higher
    /// (accuracy).
    pub fn lower_is_better(self) -> bool {
        matches!(self, ModelKind::TransformerMini)
    }

    /// Number of classes in the paired dataset substitute. The ratios
    /// mirror the paper's datasets — VGG's task has several times the
    /// labels of ResNet's (CIFAR100 vs CIFAR10), AlexNet's sits between
    /// (ImageNet-1K scaled down), the LM vocab is largest.
    pub fn default_classes(self) -> usize {
        match self {
            ModelKind::ResNetMini => 10,
            ModelKind::VggMini => 20,
            ModelKind::AlexNetMini => 20,
            ModelKind::TransformerMini => 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_table1_rows() {
        assert_eq!(ModelKind::ALL.len(), 4);
        assert_eq!(ModelKind::ResNetMini.paper_name(), "ResNet101");
        assert_eq!(ModelKind::VggMini.paper_model_bytes(), 507_000_000);
    }

    #[test]
    fn metric_direction() {
        assert!(ModelKind::TransformerMini.lower_is_better());
        assert!(!ModelKind::ResNetMini.lower_is_better());
    }
}
