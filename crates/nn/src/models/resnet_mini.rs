//! `ResNetMini` — the skip-connection workload standing in for
//! ResNet101/CIFAR10 (§IV-A of the paper).
//!
//! Architecture over `[n, 3, 8, 8]` inputs:
//! `conv3x3(3→c) → bn → relu → ResBlock(c) → ResBlock(c→2c, stride 2)
//!  → ResBlock(2c) → global-avg-pool → fc(2c → classes)`.
//! The residual (identity shortcut) structure is the property the paper
//! leans on: skip-connection nets generalize better and tolerate long
//! stretches of local-SGD training (§IV-C).

use crate::batch::Input;
use crate::layers::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Relu};
use crate::models::Model;
use crate::module::{Module, Param, ParamVisitor};
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_tensor::{ops, Tensor};

/// One pre-activation-free basic residual block
/// `y = relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))`.
#[derive(Clone)]
struct ResBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    relu_out: Relu,
    /// 1×1 projection when channel count or spatial size changes.
    shortcut: Option<(Conv2d, BatchNorm2d)>,
}

impl ResBlock {
    #[allow(clippy::too_many_arguments)]
    fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        in_h: usize,
        in_w: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Self {
        let conv1 = Conv2d::new(
            &format!("{name}.conv1"),
            in_ch,
            out_ch,
            in_h,
            in_w,
            3,
            stride,
            1,
            rng,
        );
        let (oh, ow) = (conv1.out_h(), conv1.out_w());
        let conv2 = Conv2d::new(
            &format!("{name}.conv2"),
            out_ch,
            out_ch,
            oh,
            ow,
            3,
            1,
            1,
            rng,
        );
        let shortcut = if stride != 1 || in_ch != out_ch {
            Some((
                Conv2d::new(
                    &format!("{name}.down"),
                    in_ch,
                    out_ch,
                    in_h,
                    in_w,
                    1,
                    stride,
                    0,
                    rng,
                ),
                BatchNorm2d::new(&format!("{name}.down_bn"), out_ch),
            ))
        } else {
            None
        };
        ResBlock {
            conv1,
            bn1: BatchNorm2d::new(&format!("{name}.bn1"), out_ch),
            relu1: Relu::new(),
            conv2,
            bn2: BatchNorm2d::new(&format!("{name}.bn2"), out_ch),
            relu_out: Relu::new(),
            shortcut,
        }
    }

    /// Forward pass. Convolution temporaries come from `ws`; the returned
    /// activation is heap-owned (ReLU output) so callers just drop it.
    fn forward(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let c1 = self.conv1.forward_ws(x, train, ws);
        let h = self.bn1.forward(&c1, train);
        ws.give(c1);
        let h = self.relu1.forward(&h, train);
        let c2 = self.conv2.forward_ws(&h, train, ws);
        let mut h = self.bn2.forward(&c2, train);
        ws.give(c2);
        match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward_ws(x, train, ws);
                let sb = bn.forward(&s, train);
                ws.give(s);
                ops::add_assign(&mut h, &sb);
            }
            None => ops::add_assign(&mut h, x),
        }
        self.relu_out.forward(&h, train)
    }

    /// Backward pass. The returned `dx` is workspace-owned — the caller
    /// must `ws.give` it back once consumed.
    fn backward(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let dsum = self.relu_out.backward(dy);
        // main branch
        let g = self.bn2.backward(&dsum);
        let gc = self.conv2.backward_ws(&g, ws);
        let g = self.relu1.backward(&gc);
        ws.give(gc);
        let g = self.bn1.backward(&g);
        let mut dx = self.conv1.backward_ws(&g, ws);
        // skip branch
        match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = bn.backward(&dsum);
                let sc = conv.backward_ws(&s, ws);
                ops::add_assign(&mut dx, &sc);
                ws.give(sc);
            }
            None => ops::add_assign(&mut dx, &dsum),
        }
        dx
    }

    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((c, b)) = &self.shortcut {
            c.visit_params(f);
            b.visit_params(f);
        }
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params_mut(f);
        self.bn1.visit_params_mut(f);
        self.conv2.visit_params_mut(f);
        self.bn2.visit_params_mut(f);
        if let Some((c, b)) = &mut self.shortcut {
            c.visit_params_mut(f);
            b.visit_params_mut(f);
        }
    }

    /// Scalar parameter count across the whole block (both branches).
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |p| n += p.numel());
        n
    }
}

/// The ResNet-style mini model (see module docs).
#[derive(Clone)]
pub struct ResNetMini {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    block1: ResBlock,
    block2: ResBlock,
    block3: ResBlock,
    pool: GlobalAvgPool,
    fc: Linear,
    classes: usize,
    /// Scratch-buffer arena recycled across steps (`Clone` yields a fresh
    /// empty arena, so cloned models never share buffers).
    ws: Workspace,
}

impl ResNetMini {
    /// Default width (base channel count).
    pub const BASE_CHANNELS: usize = 8;
    /// Expected input spatial size.
    pub const IMAGE_SIZE: usize = 8;

    /// Build with `classes` outputs from a seed.
    pub fn new(classes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = Self::BASE_CHANNELS;
        let s = Self::IMAGE_SIZE;
        let conv1 = Conv2d::new("conv1", 3, c, s, s, 3, 1, 1, &mut rng);
        let block1 = ResBlock::new("layer1_0", c, c, s, s, 1, &mut rng);
        let block2 = ResBlock::new("layer2_0", c, 2 * c, s, s, 2, &mut rng);
        let block3 = ResBlock::new("layer2_1", 2 * c, 2 * c, s / 2, s / 2, 1, &mut rng);
        let fc = Linear::new("fc", 2 * c, classes, &mut rng);
        ResNetMini {
            conv1,
            bn1: BatchNorm2d::new("bn1", c),
            relu1: Relu::new(),
            block1,
            block2,
            block3,
            pool: GlobalAvgPool::new(),
            fc,
            classes,
            ws: Workspace::new(),
        }
    }
}

impl ParamVisitor for ResNetMini {
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.block1.visit(f);
        self.block2.visit(f);
        self.block3.visit(f);
        self.fc.visit_params(f);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params_mut(f);
        self.bn1.visit_params_mut(f);
        self.block1.visit_mut(f);
        self.block2.visit_mut(f);
        self.block3.visit_mut(f);
        self.fc.visit_params_mut(f);
    }
}

impl Model for ResNetMini {
    fn forward(&mut self, input: &Input, train: bool) -> Tensor {
        let x = input.dense();
        let c1 = self.conv1.forward_ws(x, train, &mut self.ws);
        let h = self.bn1.forward(&c1, train);
        self.ws.give(c1);
        let h = self.relu1.forward(&h, train);
        let h = self.block1.forward(&h, train, &mut self.ws);
        let h = self.block2.forward(&h, train, &mut self.ws);
        let h = self.block3.forward(&h, train, &mut self.ws);
        let h = self.pool.forward(&h, train);
        // last layer stays on the allocating path: the logits escape to
        // the caller and would otherwise drain the arena every step
        self.fc.forward(&h, train)
    }

    fn backward(&mut self, dlogits: &Tensor) {
        self.backward_hooked(dlogits, &mut |_, _| {});
    }

    fn backward_hooked(
        &mut self,
        dlogits: &Tensor,
        hook: &mut dyn FnMut(usize, &dyn ParamVisitor),
    ) {
        // visit order conv1 bn1 block1 block2 block3 fc; a ResBlock's
        // backward finalizes every param in the block (both branches)
        // before returning, so the watermark steps down block-at-a-time.
        let mut watermark = self.num_params();
        let g = self.fc.backward_ws(dlogits, &mut self.ws);
        watermark -= self.fc.num_params();
        hook(watermark, &*self);
        let gp = self.pool.backward(&g);
        self.ws.give(g);
        let g3 = self.block3.backward(&gp, &mut self.ws);
        watermark -= self.block3.param_count();
        hook(watermark, &*self);
        let g2 = self.block2.backward(&g3, &mut self.ws);
        self.ws.give(g3);
        watermark -= self.block2.param_count();
        hook(watermark, &*self);
        let g1 = self.block1.backward(&g2, &mut self.ws);
        self.ws.give(g2);
        watermark -= self.block1.param_count();
        hook(watermark, &*self);
        let g = self.relu1.backward(&g1);
        self.ws.give(g1);
        let g = self.bn1.backward(&g);
        watermark -= self.bn1.num_params();
        hook(watermark, &*self);
        let gc = self.conv1.backward_ws(&g, &mut self.ws);
        self.ws.give(gc);
        watermark -= self.conv1.num_params();
        debug_assert_eq!(watermark, 0);
        hook(0, &*self);
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn name(&self) -> &'static str {
        "resnet_mini"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::{flat_grads, flat_params, set_flat_params};
    use crate::loss::softmax_cross_entropy;
    use selsync_tensor::init;

    fn input(n: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        init::randn([n, 3, 8, 8], 1.0, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut m = ResNetMini::new(10, 0);
        let y = m.forward(&Input::Dense(input(4, 1)), true);
        assert_eq!(y.shape().dims(), &[4, 10]);
    }

    #[test]
    fn same_seed_builds_identical_models() {
        let a = ResNetMini::new(10, 7);
        let b = ResNetMini::new(10, 7);
        assert_eq!(flat_params(&a), flat_params(&b));
    }

    #[test]
    fn has_downsample_shortcut_params() {
        let m = ResNetMini::new(10, 0);
        let mut names = Vec::new();
        m.visit_params(&mut |p| names.push(p.name.clone()));
        assert!(
            names.iter().any(|n| n.contains("down")),
            "projection shortcut exists"
        );
        assert!(names.iter().any(|n| n == "layer1_0.conv1.weight"));
    }

    #[test]
    fn gradient_check_spot_samples() {
        let mut m = ResNetMini::new(4, 3);
        let x = input(2, 4);
        let targets = vec![1usize, 3];
        let logits = m.forward(&Input::Dense(x.clone()), true);
        let (base, dl) = softmax_cross_entropy(&logits, &targets);
        m.zero_grad();
        m.backward(&dl);
        let grads = flat_grads(&m);
        let params = flat_params(&m);
        let eps = 1e-2;
        // fc weights (last params) have the cleanest signal; check a few
        // spread across the net including conv1.
        let n = params.len();
        for &i in &[0usize, 40, n - 5, n - 1] {
            let mut p2 = params.clone();
            p2[i] += eps;
            let mut m2 = m.clone();
            set_flat_params(&mut m2, &p2);
            let l2 = m2.forward(&Input::Dense(x.clone()), true);
            let (pert, _) = softmax_cross_entropy(&l2, &targets);
            let fd = (pert - base) / eps;
            assert!(
                (grads[i] - fd).abs() < 0.05 * fd.abs().max(0.2),
                "param {i}: analytic {} vs fd {fd}",
                grads[i]
            );
        }
    }

    #[test]
    fn training_step_changes_all_trainable_params() {
        use crate::optim::{Optimizer, Sgd};
        let mut m = ResNetMini::new(4, 5);
        let before = flat_params(&m);
        let x = input(4, 6);
        let logits = m.forward(&Input::Dense(x), true);
        let (_, dl) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        m.zero_grad();
        m.backward(&dl);
        Sgd::new(0.1).step(&mut m);
        let after = flat_params(&m);
        let changed = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(
            changed > before.len() / 2,
            "most parameters should move ({changed}/{})",
            before.len()
        );
    }
}
