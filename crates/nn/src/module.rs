//! The [`Module`] trait and [`Param`] — the contract every layer and
//! model in the workspace satisfies.

use crate::workspace::Workspace;
use selsync_tensor::Tensor;

/// A learnable parameter: its value and the gradient accumulated by the
/// most recent backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Stable, unique, hierarchical name (e.g. `block1.conv1.weight`),
    /// mirroring the layer names the paper plots in Fig. 3/11.
    pub name: String,
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss w.r.t. `value` from the last backward pass.
    pub grad: Tensor,
    /// Whether weight decay applies (disabled for biases and norm params,
    /// matching standard practice).
    pub decay: bool,
}

impl Param {
    /// A fresh parameter with a zeroed gradient of matching shape.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            name: name.into(),
            value,
            grad,
            decay: true,
        }
    }

    /// A parameter exempt from weight decay (bias / normalization).
    pub fn new_no_decay(name: impl Into<String>, value: Tensor) -> Self {
        let mut p = Self::new(name, value);
        p.decay = false;
        p
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// Anything that exposes an ordered collection of parameters.
///
/// Both tensor-level [`Module`]s and batch-level models (see
/// `models::Model`) implement this; the flattening helpers in
/// [`crate::flat`] and the optimizers operate on this trait alone.
pub trait ParamVisitor {
    /// Visit every parameter immutably, in a deterministic order.
    fn visit_params(&self, f: &mut dyn FnMut(&Param));

    /// Visit every parameter mutably, in the same order as
    /// [`ParamVisitor::visit_params`].
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zero every parameter gradient, keeping allocations.
    fn zero_grad(&mut self) {
        self.visit_params_mut(&mut |p| p.grad.fill_zero());
    }

    /// Total number of scalar parameters.
    fn num_params(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }
}

/// A differentiable tensor-to-tensor computation with learnable state.
///
/// The contract: `forward` caches what `backward` needs; `backward`
/// *accumulates* into each `Param::grad` (callers zero grads between
/// steps) and returns the gradient w.r.t. the module input.
pub trait Module: ParamVisitor + Send {
    /// Forward pass. `train` toggles training-time behaviour
    /// (dropout, batch-norm statistics).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backward pass given the gradient w.r.t. the forward output.
    /// Must be called after `forward`; returns the gradient w.r.t. the
    /// forward input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Workspace-aware forward: like [`Module::forward`] but drawing
    /// every temporary (including the returned output) from `ws`, so
    /// steady-state steps allocate nothing. Callers should `ws.give`
    /// the returned tensor back once consumed. The default delegates to
    /// the allocating path; hot layers override it.
    fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let _ = &mut *ws;
        self.forward(x, train)
    }

    /// Workspace-aware backward, mirroring [`Module::forward_ws`].
    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let _ = &mut *ws;
        self.backward(grad_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        w: Param,
    }

    impl ParamVisitor for Dummy {
        fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
            f(&self.w);
        }
        fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.w);
        }
    }

    impl Module for Dummy {
        fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
            x.clone()
        }
        fn backward(&mut self, g: &Tensor) -> Tensor {
            g.clone()
        }
    }

    #[test]
    fn param_constructors() {
        let p = Param::new("w", Tensor::ones([2, 2]));
        assert!(p.decay);
        assert_eq!(p.grad.as_slice(), &[0.0; 4]);
        let b = Param::new_no_decay("b", Tensor::ones([2]));
        assert!(!b.decay);
    }

    #[test]
    fn zero_grad_and_count() {
        let mut d = Dummy {
            w: Param::new("w", Tensor::ones([3])),
        };
        d.w.grad.fill(5.0);
        d.zero_grad();
        assert_eq!(d.w.grad.as_slice(), &[0.0; 3]);
        assert_eq!(d.num_params(), 3);
    }
}
