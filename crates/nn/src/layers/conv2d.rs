//! 2-D convolution via the im2col lowering.

use crate::module::{Module, Param, ParamVisitor};
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use selsync_tensor::conv::{col2im, col2im_into, im2col, im2col_into, ConvGeom};
use selsync_tensor::{init, matmul, ops, reduce, Tensor};

/// A 2-D convolution layer.
///
/// Weights are stored flattened `[out_ch, in_ch*k_h*k_w]` so the forward
/// pass is a single `cols · Wᵀ` product over the im2col expansion.
#[derive(Clone)]
pub struct Conv2d {
    /// Flattened kernel `[out_ch, in_ch*k_h*k_w]`.
    pub w: Param,
    /// Per-output-channel bias `[out_ch]`.
    pub b: Param,
    geom: ConvGeom,
    out_ch: usize,
    cache_cols: Tensor,
    cache_n: usize,
}

impl Conv2d {
    /// Kaiming-initialized convolution over the given input geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut StdRng,
    ) -> Self {
        let geom = ConvGeom {
            in_ch,
            in_h,
            in_w,
            k_h: kernel,
            k_w: kernel,
            stride,
            pad,
        };
        let fan_in = geom.patch_len();
        Conv2d {
            w: Param::new(
                format!("{name}.weight"),
                init::kaiming_normal([out_ch, fan_in], fan_in, rng),
            ),
            b: Param::new_no_decay(format!("{name}.bias"), Tensor::zeros([out_ch])),
            geom,
            out_ch,
            cache_cols: Tensor::zeros([0]),
            cache_n: 0,
        }
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        self.geom.out_h()
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        self.geom.out_w()
    }

    /// Output channel count.
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }

    /// Reorder `[n*oh*ow, oc]` row-major rows into `[n, oc, oh, ow]`.
    fn rows_to_nchw(&self, rows: &Tensor, n: usize) -> Tensor {
        let (oh, ow, oc) = (self.out_h(), self.out_w(), self.out_ch);
        let mut out = Tensor::zeros([n, oc, oh, ow]);
        self.rows_to_nchw_into(rows, n, &mut out);
        out
    }

    /// [`Conv2d::rows_to_nchw`] into a preallocated `[n, oc, oh, ow]`.
    fn rows_to_nchw_into(&self, rows: &Tensor, n: usize, out: &mut Tensor) {
        let (oh, ow, oc) = (self.out_h(), self.out_w(), self.out_ch);
        debug_assert_eq!(out.shape().dims(), &[n, oc, oh, ow]);
        let src = rows.as_slice();
        let dst = out.as_mut_slice();
        for b in 0..n {
            for p in 0..oh * ow {
                let row = &src[(b * oh * ow + p) * oc..(b * oh * ow + p + 1) * oc];
                for (c, &v) in row.iter().enumerate() {
                    dst[((b * oc) + c) * oh * ow + p] = v;
                }
            }
        }
    }

    /// Inverse of [`Conv2d::rows_to_nchw`].
    fn nchw_to_rows(&self, x: &Tensor) -> Tensor {
        let dims = x.shape().dims();
        let (n, oc, oh, ow) = (dims[0], dims[1], dims[2], dims[3]);
        let mut out = Tensor::zeros([n * oh * ow, oc]);
        self.nchw_to_rows_into(x, &mut out);
        out
    }

    /// [`Conv2d::nchw_to_rows`] into a preallocated `[n*oh*ow, oc]`.
    fn nchw_to_rows_into(&self, x: &Tensor, out: &mut Tensor) {
        let dims = x.shape().dims();
        let (n, oc, oh, ow) = (dims[0], dims[1], dims[2], dims[3]);
        debug_assert_eq!(out.shape().dims(), &[n * oh * ow, oc]);
        let src = x.as_slice();
        let dst = out.as_mut_slice();
        for b in 0..n {
            for c in 0..oc {
                let plane = &src[((b * oc) + c) * oh * ow..((b * oc) + c + 1) * oh * ow];
                for (p, &v) in plane.iter().enumerate() {
                    dst[(b * oh * ow + p) * oc + c] = v;
                }
            }
        }
    }
}

impl ParamVisitor for Conv2d {
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        f(&self.b);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

impl Module for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let n = x.shape().dim(0);
        self.cache_n = n;
        self.cache_cols = im2col(x, &self.geom);
        let mut rows = matmul::matmul_nt(&self.cache_cols, &self.w.value);
        ops::add_row_bias(&mut rows, &self.b.value);
        self.rows_to_nchw(&rows, n)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let dy_rows = self.nchw_to_rows(dy);
        // dW += dy_rowsᵀ · cols    ([oc, rows]·[rows, plen])
        let dw = matmul::matmul_tn(&dy_rows, &self.cache_cols);
        ops::add_assign(&mut self.w.grad, &dw);
        ops::add_assign(&mut self.b.grad, &reduce::sum_axis0(&dy_rows));
        // dcols = dy_rows · W, then scatter back to the input image
        let dcols = matmul::matmul(&dy_rows, &self.w.value);
        col2im(&dcols, self.cache_n, &self.geom)
    }

    fn forward_ws(&mut self, x: &Tensor, _train: bool, ws: &mut Workspace) -> Tensor {
        let n = x.shape().dim(0);
        let (oh, ow, oc) = (self.out_h(), self.out_w(), self.out_ch);
        self.cache_n = n;
        self.cache_cols
            .ensure_shape([n * oh * ow, self.geom.patch_len()]);
        im2col_into(x, &self.geom, &mut self.cache_cols);
        let mut rows = ws.take([n * oh * ow, oc]);
        matmul::matmul_nt_into(&self.cache_cols, &self.w.value, &mut rows);
        ops::add_row_bias(&mut rows, &self.b.value);
        let mut out = ws.take([n, oc, oh, ow]);
        self.rows_to_nchw_into(&rows, n, &mut out);
        ws.give(rows);
        out
    }

    fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let (n, oh, ow, oc) = (self.cache_n, self.out_h(), self.out_w(), self.out_ch);
        let mut dy_rows = ws.take([n * oh * ow, oc]);
        self.nchw_to_rows_into(dy, &mut dy_rows);
        // dW += dy_rowsᵀ · cols    ([oc, rows]·[rows, plen])
        let mut dw = ws.take(self.w.value.shape().clone());
        matmul::matmul_tn_into(&dy_rows, &self.cache_cols, &mut dw);
        ops::add_assign(&mut self.w.grad, &dw);
        ws.give(dw);
        reduce::sum_axis0_acc(&dy_rows, self.b.grad.as_mut_slice());
        // dcols = dy_rows · W, then scatter back to the input image
        let mut dcols = ws.take(self.cache_cols.shape().clone());
        matmul::matmul_into(&dy_rows, &self.w.value, &mut dcols);
        ws.give(dy_rows);
        let mut dx = ws.take([n, self.geom.in_ch, self.geom.in_h, self.geom.in_w]);
        col2im_into(&dcols, n, &self.geom, &mut dx);
        ws.give(dcols);
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identity_1x1_kernel_passes_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new("c", 1, 1, 3, 3, 1, 1, 0, &mut rng);
        c.w.value = Tensor::ones([1, 1]);
        c.b.value = Tensor::zeros([1]);
        let x = Tensor::from_vec((0..9).map(|i| i as f32).collect(), [1, 1, 3, 3]);
        let y = c.forward(&x, true);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn averaging_kernel_known_output() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new("c", 1, 1, 2, 2, 2, 1, 0, &mut rng);
        c.w.value = Tensor::full([1, 4], 0.25);
        c.b.value = Tensor::zeros([1]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]);
        let y = c.forward(&x, true);
        assert_eq!(y.shape().dims(), &[1, 1, 1, 1]);
        assert!((y.as_slice()[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn shapes_with_padding_and_stride() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Conv2d::new("c", 3, 8, 8, 8, 3, 2, 1, &mut rng);
        let y = c.forward(&Tensor::zeros([2, 3, 8, 8]), true);
        assert_eq!(y.shape().dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = Conv2d::new("c", 2, 3, 4, 4, 3, 1, 1, &mut rng);
        let x = init::randn([1, 2, 4, 4], 1.0, &mut rng);
        let objective =
            |c: &mut Conv2d, x: &Tensor| -> f32 { c.forward(x, true).as_slice().iter().sum() };
        let base = objective(&mut c, &x);
        c.zero_grad();
        let dy = Tensor::ones([1, 3, 4, 4]);
        let dx = c.backward(&dy);

        let eps = 1e-2;
        for &wi in &[0usize, 5, 17] {
            let mut c2 = c.clone();
            c2.w.value.as_mut_slice()[wi] += eps;
            let fd = (objective(&mut c2, &x) - base) / eps;
            let an = c.w.grad.as_slice()[wi];
            assert!(
                (an - fd).abs() < 0.05 * fd.abs().max(1.0),
                "w[{wi}]: {an} vs {fd}"
            );
        }
        for &xi in &[0usize, 9, 30] {
            let mut xp = x.clone();
            xp.as_mut_slice()[xi] += eps;
            let fd = (objective(&mut c, &xp) - base) / eps;
            let an = dx.as_slice()[xi];
            assert!(
                (an - fd).abs() < 0.05 * fd.abs().max(1.0),
                "x[{xi}]: {an} vs {fd}"
            );
        }
    }

    #[test]
    fn bias_gradient_counts_output_pixels() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Conv2d::new("c", 1, 2, 4, 4, 3, 1, 1, &mut rng);
        let _ = c.forward(&Tensor::zeros([2, 1, 4, 4]), true);
        c.zero_grad();
        let _ = c.backward(&Tensor::ones([2, 2, 4, 4]));
        // each bias sees n*oh*ow = 2*16 = 32 gradient contributions of 1
        assert_eq!(c.b.grad.as_slice(), &[32.0, 32.0]);
    }
}
