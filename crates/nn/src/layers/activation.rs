//! Parameter-free activation layers.

use crate::module::{Module, Param, ParamVisitor};
use selsync_tensor::Tensor;

/// Rectified linear unit `max(0, x)`.
#[derive(Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// A fresh ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ParamVisitor for Relu {
    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

impl Module for Relu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.mask.clear();
        self.mask.reserve(x.numel());
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            self.mask.push(*v > 0.0);
            if *v <= 0.0 {
                *v = 0.0;
            }
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(dy.numel(), self.mask.len(), "backward before forward");
        let mut dx = dy.clone();
        for (v, &keep) in dx.as_mut_slice().iter_mut().zip(&self.mask) {
            if !keep {
                *v = 0.0;
            }
        }
        dx
    }
}

/// Hyperbolic-tangent activation.
#[derive(Clone, Default)]
pub struct Tanh {
    cache_y: Tensor,
}

impl Tanh {
    /// A fresh Tanh layer.
    pub fn new() -> Self {
        Tanh {
            cache_y: Tensor::zeros([0]),
        }
    }
}

impl ParamVisitor for Tanh {
    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

impl Module for Tanh {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            *v = v.tanh();
        }
        self.cache_y = y.clone();
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut dx = dy.clone();
        for (v, y) in dx.as_mut_slice().iter_mut().zip(self.cache_y.as_slice()) {
            *v *= 1.0 - y * y;
        }
        dx
    }
}

/// Gaussian error linear unit (tanh approximation), used by the
/// Transformer feed-forward blocks.
#[derive(Clone, Default)]
pub struct Gelu {
    cache_x: Tensor,
}

impl Gelu {
    /// A fresh GELU layer.
    pub fn new() -> Self {
        Gelu {
            cache_x: Tensor::zeros([0]),
        }
    }

    #[inline]
    fn phi(x: f32) -> f32 {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        0.5 * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
    }
}

impl ParamVisitor for Gelu {
    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

impl Module for Gelu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.cache_x = x.clone();
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            *v *= Self::phi(*v);
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        // numerical derivative of x·Φ(x) via the analytic tanh form
        let mut dx = dy.clone();
        const C: f32 = 0.797_884_6;
        for (v, &x) in dx.as_mut_slice().iter_mut().zip(self.cache_x.as_slice()) {
            let inner = C * (x + 0.044715 * x * x * x);
            let t = inner.tanh();
            let sech2 = 1.0 - t * t;
            let dphi = 0.5 * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x);
            *v *= 0.5 * (1.0 + t) + x * dphi;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), [v.len()])
    }

    #[test]
    fn relu_clamps_and_masks() {
        let mut r = Relu::new();
        let y = r.forward(&t(&[-1.0, 0.0, 2.0]), true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let dx = r.backward(&t(&[1.0, 1.0, 1.0]));
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_gradient_at_zero_is_one() {
        let mut th = Tanh::new();
        let _ = th.forward(&t(&[0.0]), true);
        let dx = th.backward(&t(&[1.0]));
        assert!((dx.as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gelu_matches_finite_differences() {
        let mut g = Gelu::new();
        let xs = [-2.0f32, -0.5, 0.0, 0.7, 3.0];
        let x = t(&xs);
        let _ = g.forward(&x, true);
        let dx = g.backward(&t(&[1.0; 5]));
        let eps = 1e-3;
        for (i, &xv) in xs.iter().enumerate() {
            let f = |v: f32| v * Gelu::phi(v);
            let fd = (f(xv + eps) - f(xv - eps)) / (2.0 * eps);
            assert!((dx.as_slice()[i] - fd).abs() < 1e-2, "at x={xv}");
        }
    }

    #[test]
    fn activations_have_no_params() {
        let r = Relu::new();
        assert_eq!(r.num_params(), 0);
        assert_eq!(Tanh::new().num_params(), 0);
        assert_eq!(Gelu::new().num_params(), 0);
    }
}
