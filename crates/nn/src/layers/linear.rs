//! Fully-connected layer `y = x·Wᵀ + b`.

use crate::module::{Module, Param, ParamVisitor};
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use selsync_tensor::{init, matmul, ops, reduce, Tensor};

/// A dense affine layer. Weight is stored `[out, in]` so both forward
/// (`x·Wᵀ`) and input-gradient (`dy·W`) passes stream rows contiguously.
#[derive(Clone)]
pub struct Linear {
    /// Weight parameter `[out_features, in_features]`.
    pub w: Param,
    /// Bias parameter `[out_features]`, absent if constructed without bias.
    pub b: Option<Param>,
    cache_x: Tensor,
}

impl Linear {
    /// Xavier-initialized layer `in_features → out_features`.
    pub fn new(name: &str, in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let w = init::xavier_uniform([out_features, in_features], in_features, out_features, rng);
        Linear {
            w: Param::new(format!("{name}.weight"), w),
            b: Some(Param::new_no_decay(
                format!("{name}.bias"),
                Tensor::zeros([out_features]),
            )),
            cache_x: Tensor::zeros([0]),
        }
    }

    /// Kaiming-initialized layer for ReLU networks.
    pub fn new_kaiming(
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = init::kaiming_normal([out_features, in_features], in_features, rng);
        Linear {
            w: Param::new(format!("{name}.weight"), w),
            b: Some(Param::new_no_decay(
                format!("{name}.bias"),
                Tensor::zeros([out_features]),
            )),
            cache_x: Tensor::zeros([0]),
        }
    }

    /// Layer without a bias term (projection matrices in attention).
    pub fn new_no_bias(
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mut l = Self::new(name, in_features, out_features, rng);
        l.b = None;
        l
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.w.value.shape().dim(0)
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.w.value.shape().dim(1)
    }
}

impl ParamVisitor for Linear {
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        if let Some(b) = &self.b {
            f(b);
        }
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        if let Some(b) = &mut self.b {
            f(b);
        }
    }
}

impl Module for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.shape().ndim(), 2, "Linear expects [n, in] input");
        self.cache_x = x.clone();
        let mut y = matmul::matmul_nt(x, &self.w.value);
        if let Some(b) = &self.b {
            ops::add_row_bias(&mut y, &b.value);
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        // dW += dyᵀ · x   ([out, n]·[n, in] = [out, in])
        let dw = matmul::matmul_tn(dy, &self.cache_x);
        ops::add_assign(&mut self.w.grad, &dw);
        if let Some(b) = &mut self.b {
            ops::add_assign(&mut b.grad, &reduce::sum_axis0(dy));
        }
        // dx = dy · W     ([n, out]·[out, in] = [n, in])
        matmul::matmul(dy, &self.w.value)
    }

    fn forward_ws(&mut self, x: &Tensor, _train: bool, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.shape().ndim(), 2, "Linear expects [n, in] input");
        self.cache_x.ensure_shape(x.shape().clone());
        self.cache_x.copy_from(x);
        let mut y = ws.take([x.shape().dim(0), self.out_features()]);
        matmul::matmul_nt_into(x, &self.w.value, &mut y);
        if let Some(b) = &self.b {
            ops::add_row_bias(&mut y, &b.value);
        }
        y
    }

    fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        // dW += dyᵀ · x   ([out, n]·[n, in] = [out, in])
        let mut dw = ws.take(self.w.value.shape().clone());
        matmul::matmul_tn_into(dy, &self.cache_x, &mut dw);
        ops::add_assign(&mut self.w.grad, &dw);
        ws.give(dw);
        if let Some(b) = &mut self.b {
            reduce::sum_axis0_acc(dy, b.grad.as_mut_slice());
        }
        // dx = dy · W     ([n, out]·[out, in] = [n, in])
        let mut dx = ws.take([dy.shape().dim(0), self.in_features()]);
        matmul::matmul_into(dy, &self.w.value, &mut dx);
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_known_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new("l", 2, 2, &mut rng);
        l.w.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], [2, 2]);
        l.b.as_mut().unwrap().value = Tensor::from_vec(vec![0.5, -0.5], [2]);
        let y = l.forward(&Tensor::from_vec(vec![3.0, 4.0], [1, 2]), true);
        assert_eq!(y.as_slice(), &[3.5, 7.5]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new("l", 3, 2, &mut rng);
        let x = init::randn([4, 3], 1.0, &mut rng);
        // scalar objective: sum of outputs
        let y = l.forward(&x, true);
        let dy = Tensor::ones(y.shape().clone());
        l.zero_grad();
        let dx = l.backward(&dy);

        let eps = 1e-3;
        // check a weight gradient
        let base: f32 = l.forward(&x, true).as_slice().iter().sum();
        let mut l2 = l.clone();
        l2.w.value.as_mut_slice()[1] += eps;
        let pert: f32 = l2.forward(&x, true).as_slice().iter().sum();
        let fd = (pert - base) / eps;
        assert!(
            (l.w.grad.as_slice()[1] - fd).abs() < 1e-2,
            "{} vs {fd}",
            l.w.grad.as_slice()[1]
        );

        // check an input gradient
        let mut xp = x.clone();
        xp.as_mut_slice()[5] += eps;
        let pert_x: f32 = l.forward(&xp, true).as_slice().iter().sum();
        let fd_x = (pert_x - base) / eps;
        assert!((dx.as_slice()[5] - fd_x).abs() < 1e-2);
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new("l", 2, 2, &mut rng);
        let x = Tensor::ones([3, 2]);
        let _ = l.forward(&x, true);
        l.zero_grad();
        let dy = Tensor::ones([3, 2]);
        let _ = l.backward(&dy);
        assert_eq!(l.b.as_ref().unwrap().grad.as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn no_bias_layer_has_one_param() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = Linear::new_no_bias("l", 4, 4, &mut rng);
        let mut count = 0;
        l.visit_params(&mut |_| count += 1);
        assert_eq!(count, 1);
    }
}
