//! Inverted dropout.

use crate::module::{Module, Param, ParamVisitor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selsync_tensor::Tensor;

/// Inverted dropout: at train time each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so evaluation
/// is the identity.
pub struct Dropout {
    p: f32,
    seed: u64,
    rng: StdRng,
    mask: Vec<f32>,
}

impl Clone for Dropout {
    /// Cloning restarts the dropout RNG stream from the original seed:
    /// worker replicas cloned from a template intentionally share the
    /// same mask sequence only if they also share the seed.
    fn clone(&self) -> Self {
        Dropout {
            p: self.p,
            seed: self.seed,
            rng: StdRng::seed_from_u64(self.seed),
            mask: self.mask.clone(),
        }
    }
}

impl Dropout {
    /// Dropout with drop probability `p` and a dedicated seeded RNG.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        Dropout {
            p,
            seed,
            rng: StdRng::seed_from_u64(seed),
            mask: Vec::new(),
        }
    }

    /// The configured drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl ParamVisitor for Dropout {
    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

impl Module for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask.clear();
            self.mask.resize(x.numel(), 1.0);
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        self.mask.clear();
        self.mask.reserve(x.numel());
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            let m = if self.rng.random::<f32>() < keep {
                scale
            } else {
                0.0
            };
            self.mask.push(m);
            *v *= m;
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(dy.numel(), self.mask.len(), "backward before forward");
        let mut dx = dy.clone();
        for (v, &m) in dx.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        assert_eq!(d.forward(&x, false).as_slice(), x.as_slice());
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, 1);
        let x = Tensor::ones([20000]);
        let y = d.forward(&x, true);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 20000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean} should stay near 1");
    }

    #[test]
    fn survivors_are_scaled() {
        let mut d = Dropout::new(0.5, 2);
        let y = d.forward(&Tensor::ones([100]), true);
        for &v in y.as_slice() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let y = d.forward(&Tensor::ones([64]), true);
        let dx = d.backward(&Tensor::ones([64]));
        assert_eq!(y.as_slice(), dx.as_slice(), "identical masking of ones");
    }

    #[test]
    fn p_zero_never_drops() {
        let mut d = Dropout::new(0.0, 4);
        let y = d.forward(&Tensor::ones([32]), true);
        assert_eq!(y.as_slice(), &[1.0; 32]);
    }
}
