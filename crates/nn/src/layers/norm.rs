//! Normalization layers: BatchNorm (1d / 2d) and LayerNorm.

use crate::module::{Module, Param, ParamVisitor};
use selsync_tensor::Tensor;

const EPS: f32 = 1e-5;
const MOMENTUM: f32 = 0.1;

/// Shared affine-normalization state: scale γ, shift β, and running
/// statistics used at evaluation time.
#[derive(Clone)]
struct NormState {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // backward caches
    xhat: Tensor,
    inv_std: Vec<f32>,
}

impl NormState {
    fn new(name: &str, features: usize) -> Self {
        NormState {
            gamma: Param::new_no_decay(format!("{name}.weight"), Tensor::ones([features])),
            beta: Param::new_no_decay(format!("{name}.bias"), Tensor::zeros([features])),
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
            xhat: Tensor::zeros([0]),
            inv_std: Vec::new(),
        }
    }
}

/// Batch normalization over `[n, features]` input.
#[derive(Clone)]
pub struct BatchNorm1d {
    st: NormState,
    features: usize,
}

impl BatchNorm1d {
    /// A fresh BatchNorm1d over `features` columns.
    pub fn new(name: &str, features: usize) -> Self {
        BatchNorm1d {
            st: NormState::new(name, features),
            features,
        }
    }
}

impl ParamVisitor for BatchNorm1d {
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.st.gamma);
        f(&self.st.beta);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.st.gamma);
        f(&mut self.st.beta);
    }
}

impl Module for BatchNorm1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().dims()[1], self.features, "feature mismatch");
        let n = x.shape().dim(0);
        let c = self.features;
        let mut y = x.clone();
        self.st.inv_std.clear();
        let mut xhat = Tensor::zeros([n, c]);
        for j in 0..c {
            let (mean, var) = if train {
                let mut m = 0.0;
                for i in 0..n {
                    m += x.at(&[i, j]);
                }
                m /= n as f32;
                let mut v = 0.0;
                for i in 0..n {
                    let d = x.at(&[i, j]) - m;
                    v += d * d;
                }
                v /= n as f32;
                self.st.running_mean[j] = (1.0 - MOMENTUM) * self.st.running_mean[j] + MOMENTUM * m;
                self.st.running_var[j] = (1.0 - MOMENTUM) * self.st.running_var[j] + MOMENTUM * v;
                (m, v)
            } else {
                (self.st.running_mean[j], self.st.running_var[j])
            };
            let inv = 1.0 / (var + EPS).sqrt();
            self.st.inv_std.push(inv);
            let g = self.st.gamma.value.as_slice()[j];
            let b = self.st.beta.value.as_slice()[j];
            for i in 0..n {
                let xh = (x.at(&[i, j]) - mean) * inv;
                *xhat.at_mut(&[i, j]) = xh;
                *y.at_mut(&[i, j]) = g * xh + b;
            }
        }
        self.st.xhat = xhat;
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let n = dy.shape().dim(0);
        let c = self.features;
        let mut dx = Tensor::zeros([n, c]);
        for j in 0..c {
            let g = self.st.gamma.value.as_slice()[j];
            let inv = self.st.inv_std[j];
            let mut sum_dy = 0.0;
            let mut sum_dyxh = 0.0;
            for i in 0..n {
                let d = dy.at(&[i, j]);
                sum_dy += d;
                sum_dyxh += d * self.st.xhat.at(&[i, j]);
            }
            self.st.gamma.grad.as_mut_slice()[j] += sum_dyxh;
            self.st.beta.grad.as_mut_slice()[j] += sum_dy;
            let nf = n as f32;
            for i in 0..n {
                let xh = self.st.xhat.at(&[i, j]);
                *dx.at_mut(&[i, j]) = g * inv / nf * (nf * dy.at(&[i, j]) - sum_dy - xh * sum_dyxh);
            }
        }
        dx
    }
}

/// Batch normalization over `[n, c, h, w]` input (per-channel statistics).
#[derive(Clone)]
pub struct BatchNorm2d {
    st: NormState,
    channels: usize,
}

impl BatchNorm2d {
    /// A fresh BatchNorm2d over `channels` feature maps.
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm2d {
            st: NormState::new(name, channels),
            channels,
        }
    }
}

impl ParamVisitor for BatchNorm2d {
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.st.gamma);
        f(&self.st.beta);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.st.gamma);
        f(&mut self.st.beta);
    }
}

impl Module for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let dims = x.shape().dims().to_vec();
        assert_eq!(dims.len(), 4, "BatchNorm2d expects [n,c,h,w]");
        assert_eq!(dims[1], self.channels, "channel mismatch");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut y = x.clone();
        let mut xhat = Tensor::zeros(x.shape().clone());
        self.st.inv_std.clear();
        let src = x.as_slice();
        for j in 0..c {
            let (mean, var) = if train {
                let mut m = 0.0;
                for b in 0..n {
                    let off = (b * c + j) * plane;
                    for p in 0..plane {
                        m += src[off + p];
                    }
                }
                m /= count;
                let mut v = 0.0;
                for b in 0..n {
                    let off = (b * c + j) * plane;
                    for p in 0..plane {
                        let d = src[off + p] - m;
                        v += d * d;
                    }
                }
                v /= count;
                self.st.running_mean[j] = (1.0 - MOMENTUM) * self.st.running_mean[j] + MOMENTUM * m;
                self.st.running_var[j] = (1.0 - MOMENTUM) * self.st.running_var[j] + MOMENTUM * v;
                (m, v)
            } else {
                (self.st.running_mean[j], self.st.running_var[j])
            };
            let inv = 1.0 / (var + EPS).sqrt();
            self.st.inv_std.push(inv);
            let g = self.st.gamma.value.as_slice()[j];
            let bt = self.st.beta.value.as_slice()[j];
            let (ydst, xh) = (y.as_mut_slice(), xhat.as_mut_slice());
            for b in 0..n {
                let off = (b * c + j) * plane;
                for p in 0..plane {
                    let v = (src[off + p] - mean) * inv;
                    xh[off + p] = v;
                    ydst[off + p] = g * v + bt;
                }
            }
        }
        self.st.xhat = xhat;
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let dims = dy.shape().dims().to_vec();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut dx = Tensor::zeros(dy.shape().clone());
        let (dsrc, xh) = (dy.as_slice(), self.st.xhat.as_slice());
        for j in 0..c {
            let g = self.st.gamma.value.as_slice()[j];
            let inv = self.st.inv_std[j];
            let mut sum_dy = 0.0;
            let mut sum_dyxh = 0.0;
            for b in 0..n {
                let off = (b * c + j) * plane;
                for p in 0..plane {
                    sum_dy += dsrc[off + p];
                    sum_dyxh += dsrc[off + p] * xh[off + p];
                }
            }
            self.st.gamma.grad.as_mut_slice()[j] += sum_dyxh;
            self.st.beta.grad.as_mut_slice()[j] += sum_dy;
            let d = dx.as_mut_slice();
            for b in 0..n {
                let off = (b * c + j) * plane;
                for p in 0..plane {
                    d[off + p] =
                        g * inv / count * (count * dsrc[off + p] - sum_dy - xh[off + p] * sum_dyxh);
                }
            }
        }
        dx
    }
}

/// Layer normalization over the last dimension of `[n, features]` input.
#[derive(Clone)]
pub struct LayerNorm {
    st: NormState,
    features: usize,
}

impl LayerNorm {
    /// A fresh LayerNorm over rows of `features` elements.
    pub fn new(name: &str, features: usize) -> Self {
        LayerNorm {
            st: NormState::new(name, features),
            features,
        }
    }
}

impl ParamVisitor for LayerNorm {
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.st.gamma);
        f(&self.st.beta);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.st.gamma);
        f(&mut self.st.beta);
    }
}

impl Module for LayerNorm {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.shape().dims()[1], self.features, "feature mismatch");
        let n = x.shape().dim(0);
        let c = self.features;
        let mut y = x.clone();
        let mut xhat = Tensor::zeros([n, c]);
        self.st.inv_std.clear();
        let gamma = self.st.gamma.value.as_slice();
        let beta = self.st.beta.value.as_slice();
        for i in 0..n {
            let row = x.row(i);
            let mean: f32 = row.iter().sum::<f32>() / c as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / c as f32;
            let inv = 1.0 / (var + EPS).sqrt();
            self.st.inv_std.push(inv);
            let yr = y.row_mut(i);
            for j in 0..c {
                let xh = (row[j] - mean) * inv;
                yr[j] = gamma[j] * xh + beta[j];
            }
            xhat.row_mut(i)
                .copy_from_slice(&row.iter().map(|v| (v - mean) * inv).collect::<Vec<_>>());
        }
        self.st.xhat = xhat;
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let n = dy.shape().dim(0);
        let c = self.features;
        let mut dx = Tensor::zeros([n, c]);
        let gamma = self.st.gamma.value.as_slice();
        for i in 0..n {
            let dyr = dy.row(i);
            let xhr = self.st.xhat.row(i);
            let inv = self.st.inv_std[i];
            // accumulate parameter grads
            for j in 0..c {
                self.st.gamma.grad.as_mut_slice()[j] += dyr[j] * xhr[j];
                self.st.beta.grad.as_mut_slice()[j] += dyr[j];
            }
            let cf = c as f32;
            let mut sum_g = 0.0;
            let mut sum_gxh = 0.0;
            for j in 0..c {
                let gj = dyr[j] * gamma[j];
                sum_g += gj;
                sum_gxh += gj * xhr[j];
            }
            let dxr = dx.row_mut(i);
            for j in 0..c {
                let gj = dyr[j] * gamma[j];
                dxr[j] = inv / cf * (cf * gj - sum_g - xhr[j] * sum_gxh);
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selsync_tensor::init;

    fn assert_unit_stats(data: &[f32]) {
        let n = data.len() as f32;
        let m: f32 = data.iter().sum::<f32>() / n;
        let v: f32 = data.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / n;
        assert!(m.abs() < 1e-4, "mean {m}");
        assert!((v - 1.0).abs() < 1e-2, "var {v}");
    }

    #[test]
    fn bn1d_normalizes_columns_in_train_mode() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bn = BatchNorm1d::new("bn", 3);
        let x = init::randn([64, 3], 3.0, &mut rng);
        let y = bn.forward(&x, true);
        for j in 0..3 {
            let col: Vec<f32> = (0..64).map(|i| y.at(&[i, j])).collect();
            assert_unit_stats(&col);
        }
    }

    #[test]
    fn bn1d_eval_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm1d::new("bn", 2);
        // feed many batches so running stats converge to batch stats
        let x = init::randn([256, 2], 2.0, &mut rng);
        for _ in 0..60 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        for j in 0..2 {
            let col: Vec<f32> = (0..256).map(|i| y.at(&[i, j])).collect();
            let m: f32 = col.iter().sum::<f32>() / 256.0;
            assert!(m.abs() < 0.1, "eval mean {m}");
        }
    }

    #[test]
    fn bn2d_normalizes_channels() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm2d::new("bn", 2);
        let x = init::randn([8, 2, 4, 4], 5.0, &mut rng);
        let y = bn.forward(&x, true);
        for c in 0..2 {
            let mut vals = Vec::new();
            for b in 0..8 {
                for h in 0..4 {
                    for w in 0..4 {
                        vals.push(y.at(&[b, c, h, w]));
                    }
                }
            }
            assert_unit_stats(&vals);
        }
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ln = LayerNorm::new("ln", 16);
        let x = init::randn([4, 16], 4.0, &mut rng);
        let y = ln.forward(&x, true);
        for i in 0..4 {
            assert_unit_stats(y.row(i));
        }
    }

    #[test]
    fn bn1d_backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut bn = BatchNorm1d::new("bn", 2);
        bn.st.gamma.value = Tensor::from_vec(vec![1.5, 0.7], [2]);
        let x = init::randn([5, 2], 1.0, &mut rng);
        // weighted objective to get nonzero dx through normalization
        let wts: Vec<f32> = (0..10).map(|i| (i as f32 * 0.7).sin()).collect();
        let obj = |bn: &mut BatchNorm1d, x: &Tensor| -> f32 {
            bn.forward(x, true)
                .as_slice()
                .iter()
                .zip(&wts)
                .map(|(a, b)| a * b)
                .sum()
        };
        let base = obj(&mut bn, &x);
        bn.zero_grad();
        let dy = Tensor::from_vec(wts.clone(), [5, 2]);
        let dx = bn.backward(&dy);
        let eps = 1e-3;
        for &i in &[0usize, 3, 7] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let fd = (obj(&mut bn, &xp) - base) / eps;
            assert!(
                (dx.as_slice()[i] - fd).abs() < 5e-2,
                "dx[{i}] {} vs {fd}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn layernorm_backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ln = LayerNorm::new("ln", 4);
        ln.st.gamma.value = Tensor::from_vec(vec![1.2, 0.8, 1.0, 0.5], [4]);
        let x = init::randn([2, 4], 1.0, &mut rng);
        let wts: Vec<f32> = (0..8).map(|i| ((i * 3) as f32 * 0.31).cos()).collect();
        let obj = |ln: &mut LayerNorm, x: &Tensor| -> f32 {
            ln.forward(x, true)
                .as_slice()
                .iter()
                .zip(&wts)
                .map(|(a, b)| a * b)
                .sum()
        };
        let base = obj(&mut ln, &x);
        ln.zero_grad();
        let dy = Tensor::from_vec(wts.clone(), [2, 4]);
        let dx = ln.backward(&dy);
        let eps = 1e-3;
        for &i in &[0usize, 2, 5, 7] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let fd = (obj(&mut ln, &xp) - base) / eps;
            assert!(
                (dx.as_slice()[i] - fd).abs() < 5e-2,
                "dx[{i}] {} vs {fd}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn norm_params_are_no_decay() {
        let bn = BatchNorm1d::new("bn", 2);
        bn.visit_params(&mut |p| assert!(!p.decay));
    }
}
