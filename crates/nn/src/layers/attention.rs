//! Multi-head self-attention (scaled dot-product), the core of the
//! Transformer-mini workload.

use crate::layers::linear::Linear;
use crate::module::{Module, Param, ParamVisitor};
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use selsync_tensor::{ops, Tensor};

/// Multi-head self-attention over batch-major `[batch*seq, dim]`
/// activations (row `b*seq + t` is token `t` of sequence `b`).
///
/// Like [`crate::layers::Embedding`], this is not a plain
/// tensor→tensor `Module` because it needs the `(batch, seq)` layout and
/// a causality flag; it exposes `forward_seq` / `backward_seq`.
#[derive(Clone)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
    head_dim: usize,
    // caches
    q: Tensor,
    k: Tensor,
    v: Tensor,
    attn: Vec<Tensor>, // softmax weights per (batch, head), each [seq, seq]
    batch: usize,
    seq: usize,
}

impl MultiHeadSelfAttention {
    /// A fresh attention block with `heads` heads over `dim` channels.
    pub fn new(name: &str, dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert!(
            heads >= 1 && dim.is_multiple_of(heads),
            "dim must divide into heads"
        );
        MultiHeadSelfAttention {
            wq: Linear::new_no_bias(&format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new_no_bias(&format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new_no_bias(&format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new(&format!("{name}.wo"), dim, dim, rng),
            heads,
            dim,
            head_dim: dim / heads,
            q: Tensor::zeros([0]),
            k: Tensor::zeros([0]),
            v: Tensor::zeros([0]),
            attn: Vec::new(),
            batch: 0,
            seq: 0,
        }
    }

    /// Extract head `h` of sequence `b` from `[batch*seq, dim]` → `[seq, head_dim]`.
    fn slice_head(&self, t: &Tensor, b: usize, h: usize) -> Tensor {
        let hd = self.head_dim;
        let mut out = Tensor::zeros([self.seq, hd]);
        for s in 0..self.seq {
            out.row_mut(s)
                .copy_from_slice(&t.row(b * self.seq + s)[h * hd..(h + 1) * hd]);
        }
        out
    }

    /// Scatter `[seq, head_dim]` back into head `h` of sequence `b`.
    fn write_head(&self, dst: &mut Tensor, src: &Tensor, b: usize, h: usize, accumulate: bool) {
        let hd = self.head_dim;
        for s in 0..self.seq {
            let row = &mut dst.row_mut(b * self.seq + s)[h * hd..(h + 1) * hd];
            if accumulate {
                for (d, v) in row.iter_mut().zip(src.row(s)) {
                    *d += v;
                }
            } else {
                row.copy_from_slice(src.row(s));
            }
        }
    }

    /// Forward pass over `[batch*seq, dim]` activations.
    pub fn forward_seq(&mut self, x: &Tensor, batch: usize, seq: usize, causal: bool) -> Tensor {
        assert_eq!(
            x.shape().dims(),
            &[batch * seq, self.dim],
            "layout mismatch"
        );
        self.batch = batch;
        self.seq = seq;
        self.q = self.wq.forward(x, true);
        self.k = self.wk.forward(x, true);
        self.v = self.wv.forward(x, true);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut ctx = Tensor::zeros([batch * seq, self.dim]);
        self.attn.clear();
        for b in 0..batch {
            for h in 0..self.heads {
                let qh = self.slice_head(&self.q, b, h);
                let kh = self.slice_head(&self.k, b, h);
                let vh = self.slice_head(&self.v, b, h);
                // scores = Q·Kᵀ * scale, causal-masked, softmax per row
                let mut scores = selsync_tensor::matmul::matmul_nt(&qh, &kh);
                ops::scale_assign(&mut scores, scale);
                for i in 0..seq {
                    let row = scores.row_mut(i);
                    if causal {
                        for v in row.iter_mut().skip(i + 1) {
                            *v = f32::NEG_INFINITY;
                        }
                    }
                    softmax_in_place(row);
                }
                let out = selsync_tensor::matmul::matmul(&scores, &vh);
                self.write_head(&mut ctx, &out, b, h, false);
                self.attn.push(scores);
            }
        }
        self.wo.forward(&ctx, true)
    }

    /// Backward pass; returns gradient w.r.t. the input activations.
    pub fn backward_seq(&mut self, dy: &Tensor) -> Tensor {
        let (batch, seq) = (self.batch, self.seq);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let dctx = self.wo.backward(dy);
        let mut dq = Tensor::zeros([batch * seq, self.dim]);
        let mut dk = Tensor::zeros([batch * seq, self.dim]);
        let mut dv = Tensor::zeros([batch * seq, self.dim]);
        for b in 0..batch {
            for h in 0..self.heads {
                let a = &self.attn[b * self.heads + h];
                let dctx_h = self.slice_head(&dctx, b, h);
                let vh = self.slice_head(&self.v, b, h);
                let qh = self.slice_head(&self.q, b, h);
                let kh = self.slice_head(&self.k, b, h);
                // dV = Aᵀ · dctx, dA = dctx · Vᵀ
                let dvh = selsync_tensor::matmul::matmul_tn(a, &dctx_h);
                let mut da = selsync_tensor::matmul::matmul_nt(&dctx_h, &vh);
                // softmax backward per row: dS = A ⊙ (dA - sum(dA ⊙ A))
                for i in 0..seq {
                    let arow = a.row(i).to_vec();
                    let darow = da.row_mut(i);
                    let dot: f32 = darow.iter().zip(&arow).map(|(x, y)| x * y).sum();
                    for (dv_, av) in darow.iter_mut().zip(&arow) {
                        *dv_ = av * (*dv_ - dot);
                    }
                }
                ops::scale_assign(&mut da, scale);
                // dQ = dS · K ;  dK = dSᵀ · Q
                let dqh = selsync_tensor::matmul::matmul(&da, &kh);
                let dkh = selsync_tensor::matmul::matmul_tn(&da, &qh);
                self.write_head(&mut dq, &dqh, b, h, false);
                self.write_head(&mut dk, &dkh, b, h, false);
                self.write_head(&mut dv, &dvh, b, h, false);
            }
        }
        let mut dx = self.wq.backward(&dq);
        ops::add_assign(&mut dx, &self.wk.backward(&dk));
        ops::add_assign(&mut dx, &self.wv.backward(&dv));
        dx
    }

    /// [`MultiHeadSelfAttention::forward_seq`] drawing every temporary
    /// from `ws`; the q/k/v and attention-weight caches persist in the
    /// layer and are recycled in place across steps.
    pub fn forward_seq_ws(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        causal: bool,
        ws: &mut Workspace,
    ) -> Tensor {
        assert_eq!(
            x.shape().dims(),
            &[batch * seq, self.dim],
            "layout mismatch"
        );
        self.batch = batch;
        self.seq = seq;
        let q = self.wq.forward_ws(x, true, ws);
        ws.give(std::mem::replace(&mut self.q, q));
        let k = self.wk.forward_ws(x, true, ws);
        ws.give(std::mem::replace(&mut self.k, k));
        let v = self.wv.forward_ws(x, true, ws);
        ws.give(std::mem::replace(&mut self.v, v));
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let hd = self.head_dim;
        let mut ctx = ws.take([batch * seq, self.dim]);
        // Recycle attention-weight buffers when the batch shape changes.
        while self.attn.len() > batch * self.heads {
            let t = self.attn.pop().expect("length checked above");
            ws.give(t);
        }
        while self.attn.len() < batch * self.heads {
            self.attn.push(Tensor::zeros([0]));
        }
        let mut qh = ws.take([seq, hd]);
        let mut kh = ws.take([seq, hd]);
        let mut vh = ws.take([seq, hd]);
        let mut out = ws.take([seq, hd]);
        for b in 0..batch {
            for h in 0..self.heads {
                slice_head_into(&self.q, b, h, seq, hd, &mut qh);
                slice_head_into(&self.k, b, h, seq, hd, &mut kh);
                slice_head_into(&self.v, b, h, seq, hd, &mut vh);
                let scores = &mut self.attn[b * self.heads + h];
                scores.ensure_shape([seq, seq]);
                selsync_tensor::matmul::matmul_nt_into(&qh, &kh, scores);
                ops::scale_assign(scores, scale);
                for i in 0..seq {
                    let row = scores.row_mut(i);
                    if causal {
                        for v in row.iter_mut().skip(i + 1) {
                            *v = f32::NEG_INFINITY;
                        }
                    }
                    softmax_in_place(row);
                }
                selsync_tensor::matmul::matmul_into(scores, &vh, &mut out);
                write_head_into(&mut ctx, &out, b, h, seq, hd);
            }
        }
        ws.give(qh);
        ws.give(kh);
        ws.give(vh);
        ws.give(out);
        let y = self.wo.forward_ws(&ctx, true, ws);
        ws.give(ctx);
        y
    }

    /// [`MultiHeadSelfAttention::backward_seq`] drawing every temporary
    /// from `ws`.
    pub fn backward_seq_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let (batch, seq) = (self.batch, self.seq);
        let (hd, heads) = (self.head_dim, self.heads);
        let scale = 1.0 / (hd as f32).sqrt();
        let dctx = self.wo.backward_ws(dy, ws);
        let mut dq = ws.take([batch * seq, self.dim]);
        let mut dk = ws.take([batch * seq, self.dim]);
        let mut dv = ws.take([batch * seq, self.dim]);
        let mut dctx_h = ws.take([seq, hd]);
        let mut vh = ws.take([seq, hd]);
        let mut qh = ws.take([seq, hd]);
        let mut kh = ws.take([seq, hd]);
        let mut dvh = ws.take([seq, hd]);
        let mut dqh = ws.take([seq, hd]);
        let mut dkh = ws.take([seq, hd]);
        let mut da = ws.take([seq, seq]);
        for b in 0..batch {
            for h in 0..heads {
                let a = &self.attn[b * heads + h];
                slice_head_into(&dctx, b, h, seq, hd, &mut dctx_h);
                slice_head_into(&self.v, b, h, seq, hd, &mut vh);
                slice_head_into(&self.q, b, h, seq, hd, &mut qh);
                slice_head_into(&self.k, b, h, seq, hd, &mut kh);
                // dV = Aᵀ · dctx, dA = dctx · Vᵀ
                selsync_tensor::matmul::matmul_tn_into(a, &dctx_h, &mut dvh);
                selsync_tensor::matmul::matmul_nt_into(&dctx_h, &vh, &mut da);
                // softmax backward per row: dS = A ⊙ (dA - sum(dA ⊙ A))
                for i in 0..seq {
                    let arow = a.row(i);
                    let darow = da.row_mut(i);
                    let dot: f32 = darow.iter().zip(arow).map(|(x, y)| x * y).sum();
                    for (dv_, av) in darow.iter_mut().zip(arow) {
                        *dv_ = av * (*dv_ - dot);
                    }
                }
                ops::scale_assign(&mut da, scale);
                // dQ = dS · K ;  dK = dSᵀ · Q
                selsync_tensor::matmul::matmul_into(&da, &kh, &mut dqh);
                selsync_tensor::matmul::matmul_tn_into(&da, &qh, &mut dkh);
                write_head_into(&mut dq, &dqh, b, h, seq, hd);
                write_head_into(&mut dk, &dkh, b, h, seq, hd);
                write_head_into(&mut dv, &dvh, b, h, seq, hd);
            }
        }
        ws.give(dctx_h);
        ws.give(vh);
        ws.give(qh);
        ws.give(kh);
        ws.give(dvh);
        ws.give(dqh);
        ws.give(dkh);
        ws.give(da);
        ws.give(dctx);
        let mut dx = self.wq.backward_ws(&dq, ws);
        let dxk = self.wk.backward_ws(&dk, ws);
        ops::add_assign(&mut dx, &dxk);
        ws.give(dxk);
        let dxv = self.wv.backward_ws(&dv, ws);
        ops::add_assign(&mut dx, &dxv);
        ws.give(dxv);
        ws.give(dq);
        ws.give(dk);
        ws.give(dv);
        dx
    }
}

/// Extract head `h` of sequence `b` from `[batch*seq, dim]` into a
/// preallocated `[seq, head_dim]` tensor.
fn slice_head_into(t: &Tensor, b: usize, h: usize, seq: usize, hd: usize, out: &mut Tensor) {
    for s in 0..seq {
        out.row_mut(s)
            .copy_from_slice(&t.row(b * seq + s)[h * hd..(h + 1) * hd]);
    }
}

/// Scatter `[seq, head_dim]` into head `h` of sequence `b` (overwrite).
fn write_head_into(dst: &mut Tensor, src: &Tensor, b: usize, h: usize, seq: usize, hd: usize) {
    for s in 0..seq {
        dst.row_mut(b * seq + s)[h * hd..(h + 1) * hd].copy_from_slice(src.row(s));
    }
}

impl ParamVisitor for MultiHeadSelfAttention {
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params_mut(f);
        self.wk.visit_params_mut(f);
        self.wv.visit_params_mut(f);
        self.wo.visit_params_mut(f);
    }
}

/// Numerically-stable in-place softmax of a row.
pub fn softmax_in_place(row: &mut [f32]) {
    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut z = 0.0;
    for v in row.iter_mut() {
        *v = (*v - m).exp();
        z += *v;
    }
    for v in row.iter_mut() {
        *v /= z;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use selsync_tensor::init;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut row = vec![1.0, 2.0, 3.0];
        softmax_in_place(&mut row);
        let s: f32 = row.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(row[2] > row[1] && row[1] > row[0]);
    }

    #[test]
    fn causal_mask_blocks_future_tokens() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut a = MultiHeadSelfAttention::new("a", 8, 2, &mut rng);
        let x = init::randn([4, 8], 1.0, &mut rng); // batch 1, seq 4
        let _ = a.forward_seq(&x, 1, 4, true);
        for attn in &a.attn {
            for i in 0..4 {
                for j in i + 1..4 {
                    assert_eq!(attn.at(&[i, j]), 0.0, "future attention must be zero");
                }
            }
        }
    }

    #[test]
    fn attention_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = MultiHeadSelfAttention::new("a", 8, 2, &mut rng);
        let x = init::randn([6, 8], 1.0, &mut rng); // batch 2, seq 3
        let _ = a.forward_seq(&x, 2, 3, false);
        for attn in &a.attn {
            for i in 0..3 {
                let s: f32 = attn.row(i).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = MultiHeadSelfAttention::new("a", 16, 4, &mut rng);
        let x = init::randn([8, 16], 1.0, &mut rng);
        let y = a.forward_seq(&x, 2, 4, true);
        assert_eq!(y.shape().dims(), &[8, 16]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = MultiHeadSelfAttention::new("a", 4, 2, &mut rng);
        let x = init::randn([4, 4], 0.5, &mut rng); // batch 2, seq 2
        let wts: Vec<f32> = (0..16).map(|i| ((i * 7) as f32 * 0.13).sin()).collect();
        let obj = |a: &mut MultiHeadSelfAttention, x: &Tensor| -> f32 {
            a.forward_seq(x, 2, 2, true)
                .as_slice()
                .iter()
                .zip(&wts)
                .map(|(p, q)| p * q)
                .sum()
        };
        let base = obj(&mut a, &x);
        a.zero_grad();
        let dy = Tensor::from_vec(wts.clone(), [4, 4]);
        let dx = a.backward_seq(&dy);
        let eps = 1e-2;
        for &i in &[0usize, 5, 11, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let fd = (obj(&mut a, &xp) - base) / eps;
            assert!(
                (dx.as_slice()[i] - fd).abs() < 0.05 * fd.abs().max(1.0),
                "dx[{i}] = {} vs fd {fd}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn param_count_is_four_projections() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = MultiHeadSelfAttention::new("a", 8, 2, &mut rng);
        // wq/wk/wv: 64 each (no bias), wo: 64 + 8 bias
        assert_eq!(a.num_params(), 64 * 4 + 8);
    }
}
