//! Spatial pooling layers.

use crate::module::{Module, Param, ParamVisitor};
use selsync_tensor::Tensor;

/// 2-D max pooling with a square window and matching stride.
#[derive(Clone)]
pub struct MaxPool2d {
    k: usize,
    in_dims: Vec<usize>,
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Max pooling with window and stride `k`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        MaxPool2d {
            k,
            in_dims: Vec::new(),
            argmax: Vec::new(),
        }
    }
}

impl ParamVisitor for MaxPool2d {
    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

impl Module for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let dims = x.shape().dims().to_vec();
        assert_eq!(dims.len(), 4, "MaxPool2d expects [n,c,h,w]");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let k = self.k;
        assert!(
            h % k == 0 && w % k == 0,
            "input {h}x{w} not divisible by window {k}"
        );
        let (oh, ow) = (h / k, w / k);
        self.in_dims = dims;
        let mut out = Tensor::zeros([n, c, oh, ow]);
        self.argmax.clear();
        self.argmax.reserve(n * c * oh * ow);
        let src = x.as_slice();
        let dst = out.as_mut_slice();
        let mut oi = 0;
        for b in 0..n {
            for ch in 0..c {
                let plane = &src[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..k {
                            for kx in 0..k {
                                let idx = (oy * k + ky) * w + (ox * k + kx);
                                if plane[idx] > best {
                                    best = plane[idx];
                                    best_idx = (b * c + ch) * h * w + idx;
                                }
                            }
                        }
                        dst[oi] = best;
                        self.argmax.push(best_idx);
                        oi += 1;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(dy.numel(), self.argmax.len(), "backward before forward");
        let mut dx = Tensor::zeros(self.in_dims.as_slice());
        let d = dx.as_mut_slice();
        for (g, &idx) in dy.as_slice().iter().zip(&self.argmax) {
            d[idx] += g;
        }
        dx
    }
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
#[derive(Clone, Default)]
pub struct GlobalAvgPool {
    in_dims: Vec<usize>,
}

impl GlobalAvgPool {
    /// A fresh global average pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ParamVisitor for GlobalAvgPool {
    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

impl Module for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let dims = x.shape().dims().to_vec();
        assert_eq!(dims.len(), 4, "GlobalAvgPool expects [n,c,h,w]");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        self.in_dims = dims;
        let plane = (h * w) as f32;
        let mut out = Tensor::zeros([n, c]);
        let src = x.as_slice();
        let dst = out.as_mut_slice();
        for b in 0..n {
            for ch in 0..c {
                let p = &src[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                dst[b * c + ch] = p.iter().sum::<f32>() / plane;
            }
        }
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (n, c, h, w) = (
            self.in_dims[0],
            self.in_dims[1],
            self.in_dims[2],
            self.in_dims[3],
        );
        let plane = (h * w) as f32;
        let mut dx = Tensor::zeros(self.in_dims.as_slice());
        let d = dx.as_mut_slice();
        let g = dy.as_slice();
        for b in 0..n {
            for ch in 0..c {
                let v = g[b * c + ch] / plane;
                for p in 0..h * w {
                    d[(b * c + ch) * h * w + p] = v;
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_selects_window_maxima() {
        let mut mp = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            [1, 1, 4, 4],
        );
        let y = mp.forward(&x, true);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let mut mp = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]);
        let _ = mp.forward(&x, true);
        let dx = mp.backward(&Tensor::from_vec(vec![7.0], [1, 1, 1, 1]));
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn avgpool_means_planes() {
        let mut gp = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 0.0, 0.0, 0.0, 4.0], [1, 2, 2, 2]);
        let y = gp.forward(&x, true);
        assert_eq!(y.shape().dims(), &[1, 2]);
        assert_eq!(y.as_slice(), &[4.0, 1.0]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let mut gp = GlobalAvgPool::new();
        let _ = gp.forward(&Tensor::zeros([1, 1, 2, 2]), true);
        let dx = gp.backward(&Tensor::from_vec(vec![8.0], [1, 1]));
        assert_eq!(dx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn maxpool_rejects_indivisible_input() {
        MaxPool2d::new(2).forward(&Tensor::zeros([1, 1, 3, 3]), true);
    }
}
