//! Token embedding table (and sinusoidal positional encoding).
//!
//! `Embedding` is not a tensor→tensor [`crate::module::Module`] — its
//! input is token ids — so it exposes explicit `forward_tokens` /
//! `backward_tokens` methods and participates in parameter visits through
//! [`ParamVisitor`].

use crate::module::{Param, ParamVisitor};
use rand::rngs::StdRng;
use selsync_tensor::{init, Tensor};

/// A learned lookup table `[vocab, dim]` mapping token ids to vectors.
#[derive(Clone)]
pub struct Embedding {
    /// Embedding matrix parameter `[vocab, dim]`.
    pub w: Param,
    vocab: usize,
    dim: usize,
    cache_ids: Vec<usize>,
}

impl Embedding {
    /// A fresh embedding table with N(0, 0.02) init.
    pub fn new(name: &str, vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        Embedding {
            w: Param::new(
                format!("{name}.weight"),
                init::randn([vocab, dim], 0.02, rng),
            ),
            vocab,
            dim,
            cache_ids: Vec::new(),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Look up a flat list of token ids → `[ids.len(), dim]`.
    pub fn forward_tokens(&mut self, ids: &[usize]) -> Tensor {
        self.cache_ids = ids.to_vec();
        let mut out = Tensor::zeros([ids.len(), self.dim]);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.vocab, "token id {id} out of vocab {}", self.vocab);
            out.row_mut(r).copy_from_slice(self.w.value.row(id));
        }
        out
    }

    /// Accumulate gradients for the rows used by the last forward.
    pub fn backward_tokens(&mut self, dy: &Tensor) {
        assert_eq!(
            dy.shape().dim(0),
            self.cache_ids.len(),
            "backward before forward"
        );
        for (r, &id) in self.cache_ids.iter().enumerate() {
            let g = dy.row(r).to_vec();
            let grow = self.w.grad.row_mut(id);
            for (gv, dv) in grow.iter_mut().zip(&g) {
                *gv += dv;
            }
        }
    }
}

impl ParamVisitor for Embedding {
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
    }
}

/// Fixed sinusoidal positional encoding added to token embeddings
/// (Vaswani et al., 2017). No learnable state.
#[derive(Clone)]
pub struct PositionalEncoding {
    table: Tensor,
    max_len: usize,
    dim: usize,
}

impl PositionalEncoding {
    /// Precompute encodings for positions `0..max_len`.
    pub fn new(max_len: usize, dim: usize) -> Self {
        let mut table = Tensor::zeros([max_len, dim]);
        for pos in 0..max_len {
            let row = table.row_mut(pos);
            for (i, v) in row.iter_mut().enumerate() {
                let angle = pos as f32 / (10000.0f32).powf((2 * (i / 2)) as f32 / dim as f32);
                *v = if i % 2 == 0 { angle.sin() } else { angle.cos() };
            }
        }
        PositionalEncoding {
            table,
            max_len,
            dim,
        }
    }

    /// Add position encodings in place to `[batch*seq, dim]` activations
    /// laid out batch-major (rows `b*seq + t`).
    pub fn add_to(&self, x: &mut Tensor, seq_len: usize) {
        assert!(seq_len <= self.max_len, "sequence longer than table");
        assert_eq!(x.shape().dim(1), self.dim, "dim mismatch");
        let rows = x.shape().dim(0);
        assert!(
            rows.is_multiple_of(seq_len),
            "rows must be a multiple of seq_len"
        );
        for r in 0..rows {
            let pos = r % seq_len;
            let enc = self.table.row(pos).to_vec();
            for (xv, ev) in x.row_mut(r).iter_mut().zip(enc) {
                *xv += ev;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lookup_returns_table_rows() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut e = Embedding::new("e", 10, 4, &mut rng);
        let y = e.forward_tokens(&[3, 3, 7]);
        assert_eq!(y.row(0), e.w.value.row(3));
        assert_eq!(y.row(1), e.w.value.row(3));
        assert_eq!(y.row(2), e.w.value.row(7));
    }

    #[test]
    fn backward_accumulates_repeated_ids() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = Embedding::new("e", 5, 2, &mut rng);
        let _ = e.forward_tokens(&[2, 2]);
        e.zero_grad();
        e.backward_tokens(&Tensor::ones([2, 2]));
        assert_eq!(e.w.grad.row(2), &[2.0, 2.0], "two uses accumulate");
        assert_eq!(e.w.grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_vocab_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        Embedding::new("e", 4, 2, &mut rng).forward_tokens(&[4]);
    }

    #[test]
    fn positional_encoding_is_bounded_and_position_dependent() {
        let pe = PositionalEncoding::new(16, 8);
        let mut x = Tensor::zeros([16, 8]);
        pe.add_to(&mut x, 16);
        assert!(x.as_slice().iter().all(|v| v.abs() <= 1.0));
        assert_ne!(x.row(0), x.row(1), "distinct positions get distinct codes");
    }

    #[test]
    fn positional_encoding_repeats_across_batch() {
        let pe = PositionalEncoding::new(4, 6);
        let mut x = Tensor::zeros([8, 6]); // batch 2, seq 4
        pe.add_to(&mut x, 4);
        assert_eq!(x.row(0), x.row(4), "same position in each sequence");
    }
}
