//! Neural-network layers with explicit forward/backward passes.

pub mod activation;
pub mod attention;
pub mod conv2d;
pub mod dropout;
pub mod embedding;
pub mod linear;
pub mod norm;
pub mod pool;

pub use activation::{Gelu, Relu, Tanh};
pub use attention::MultiHeadSelfAttention;
pub use conv2d::Conv2d;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use linear::Linear;
pub use norm::{BatchNorm1d, BatchNorm2d, LayerNorm};
pub use pool::{GlobalAvgPool, MaxPool2d};
