//! Optimizers: SGD with momentum/weight-decay and Adam.
//!
//! Optimizer state is held in flat vectors aligned with the module's
//! deterministic parameter visit order, so a cloned model replica can be
//! stepped by a cloned optimizer bit-identically on every worker.

use crate::module::ParamVisitor;

/// Common optimizer interface over any [`ParamVisitor`].
pub trait Optimizer: Send {
    /// Apply one update step using the gradients currently stored in the
    /// parameters.
    fn step(&mut self, model: &mut dyn ParamVisitor);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Override the learning rate (used by LR schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and decoupled
/// L2 weight decay, matching the paper's training recipes (§IV-A).
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    /// Momentum coefficient (0 disables the velocity buffer).
    pub momentum: f32,
    /// L2 weight-decay coefficient (applied to `decay` params only).
    pub weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum and weight decay.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Snapshot the momentum buffers (one flat vector per parameter, in
    /// visit order). Empty when momentum is disabled or before the first
    /// step — both resume correctly through [`Sgd::import_slots`].
    pub fn export_slots(&self) -> Vec<Vec<f32>> {
        self.velocity.clone()
    }

    /// Restore momentum buffers captured by [`Sgd::export_slots`].
    pub fn import_slots(&mut self, slots: Vec<Vec<f32>>) {
        self.velocity = slots;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn ParamVisitor) {
        let use_momentum = self.momentum != 0.0;
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        let mut idx = 0;
        model.visit_params_mut(&mut |p| {
            if use_momentum && velocity.len() <= idx {
                velocity.push(vec![0.0; p.numel()]);
            }
            let decay = if p.decay { wd } else { 0.0 };
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_slice();
            if use_momentum {
                let v = &mut velocity[idx];
                debug_assert_eq!(v.len(), grad.len());
                for ((vi, &gi), wi) in v.iter_mut().zip(grad).zip(value.iter_mut()) {
                    let g = gi + decay * *wi;
                    *vi = mu * *vi + g;
                    *wi -= lr * *vi;
                }
            } else {
                for (&gi, wi) in grad.iter().zip(value.iter_mut()) {
                    *wi -= lr * (gi + decay * *wi);
                }
            }
            idx += 1;
        });
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2014), used by the AlexNet workload in the paper.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the standard (0.9, 0.999) betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Bias-correction step counter (number of [`Optimizer::step`] calls
    /// applied so far).
    pub fn t(&self) -> u64 {
        self.t
    }

    /// Snapshot the moment buffers: all first moments in visit order,
    /// then all second moments (`2 × n_params` flat vectors).
    pub fn export_slots(&self) -> Vec<Vec<f32>> {
        self.m.iter().chain(&self.v).cloned().collect()
    }

    /// Restore state captured by [`Adam::export_slots`] plus the step
    /// counter. A malformed (odd-length) slot list is ignored rather
    /// than corrupting the moments.
    pub fn import_slots(&mut self, t: u64, slots: Vec<Vec<f32>>) {
        if !slots.len().is_multiple_of(2) {
            return;
        }
        let half = slots.len() / 2;
        self.t = t;
        self.v = slots[half..].to_vec();
        let mut m = slots;
        m.truncate(half);
        self.m = m;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn ParamVisitor) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        model.visit_params_mut(&mut |p| {
            if ms.len() <= idx {
                ms.push(vec![0.0; p.numel()]);
                vs.push(vec![0.0; p.numel()]);
            }
            let decay = if p.decay { wd } else { 0.0 };
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_slice();
            let (m, v) = (&mut ms[idx], &mut vs[idx]);
            for i in 0..grad.len() {
                let g = grad[i] + decay * value[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                value[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Param, ParamVisitor};
    use selsync_tensor::Tensor;

    struct One {
        p: Param,
    }

    impl ParamVisitor for One {
        fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
            f(&self.p);
        }
        fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    fn model(v: f32, g: f32) -> One {
        let mut p = Param::new("p", Tensor::full([2], v));
        p.grad = Tensor::full([2], g);
        One { p }
    }

    #[test]
    fn sgd_plain_step() {
        let mut m = model(1.0, 0.5);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut m);
        assert_eq!(m.p.value.as_slice(), &[0.95, 0.95]);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut m = model(0.0, 1.0);
        let mut opt = Sgd::with_momentum(1.0, 0.9, 0.0);
        opt.step(&mut m); // v=1, w=-1
        assert_eq!(m.p.value.as_slice(), &[-1.0, -1.0]);
        m.p.grad = Tensor::full([2], 1.0);
        opt.step(&mut m); // v=1.9, w=-2.9
        assert!((m.p.value.as_slice()[0] + 2.9).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut m = model(10.0, 0.0);
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.1);
        opt.step(&mut m);
        // w -= lr * wd * w = 10 - 0.1*0.1*10 = 9.9
        assert!((m.p.value.as_slice()[0] - 9.9).abs() < 1e-5);
    }

    #[test]
    fn weight_decay_skips_no_decay_params() {
        let mut p = Param::new_no_decay("b", Tensor::full([1], 10.0));
        p.grad = Tensor::zeros([1]);
        let mut m = One { p };
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.1);
        opt.step(&mut m);
        assert_eq!(m.p.value.as_slice(), &[10.0]);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, Adam's first update is lr * sign(g).
        let mut m = model(0.0, 0.3);
        let mut opt = Adam::new(0.01);
        opt.step(&mut m);
        assert!((m.p.value.as_slice()[0] + 0.01).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize f(w) = w² from w = 1
        let mut m = model(1.0, 0.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            let w = m.p.value.as_slice()[0];
            m.p.grad = Tensor::full([2], 2.0 * w);
            opt.step(&mut m);
        }
        assert!(m.p.value.as_slice()[0].abs() < 1e-2);
    }

    #[test]
    fn set_lr_roundtrip() {
        let mut opt = Sgd::new(0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }
}
