//! Learning-rate schedules matching the paper's recipes (§IV-A):
//! step decay at fixed epochs (ResNet/VGG), a constant rate (AlexNet),
//! and periodic exponential decay (Transformer).

use serde::{Deserialize, Serialize};

/// A learning-rate schedule evaluated per step.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Multiply by `factor` at each listed step boundary
    /// (e.g. ×0.1 after epochs 110 and 150 for ResNet101).
    StepDecay {
        /// Initial rate.
        base_lr: f32,
        /// Steps at which decay fires.
        boundaries: Vec<u64>,
        /// Multiplicative factor per boundary.
        factor: f32,
    },
    /// Multiply by `factor` every `every` steps
    /// (×0.8 every 2000 iterations for the Transformer).
    Exponential {
        /// Initial rate.
        base_lr: f32,
        /// Decay period in steps.
        every: u64,
        /// Multiplicative factor per period.
        factor: f32,
    },
}

impl LrSchedule {
    /// Learning rate at (0-based) step `step`.
    pub fn at(&self, step: u64) -> f32 {
        match self {
            LrSchedule::Constant { lr } => *lr,
            LrSchedule::StepDecay {
                base_lr,
                boundaries,
                factor,
            } => {
                let crossed = boundaries.iter().filter(|&&b| step >= b).count() as i32;
                base_lr * factor.powi(crossed)
            }
            LrSchedule::Exponential {
                base_lr,
                every,
                factor,
            } => base_lr * factor.powi((step / (*every).max(1)) as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(1_000_000), 0.1);
    }

    #[test]
    fn step_decay_fires_at_boundaries() {
        let s = LrSchedule::StepDecay {
            base_lr: 1.0,
            boundaries: vec![100, 200],
            factor: 0.1,
        };
        assert_eq!(s.at(99), 1.0);
        assert!((s.at(100) - 0.1).abs() < 1e-7);
        assert!((s.at(199) - 0.1).abs() < 1e-7);
        assert!((s.at(200) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn exponential_decays_periodically() {
        let s = LrSchedule::Exponential {
            base_lr: 2.0,
            every: 10,
            factor: 0.5,
        };
        assert_eq!(s.at(0), 2.0);
        assert_eq!(s.at(9), 2.0);
        assert_eq!(s.at(10), 1.0);
        assert_eq!(s.at(25), 0.5);
    }

    #[test]
    fn schedule_is_monotone_nonincreasing() {
        let s = LrSchedule::StepDecay {
            base_lr: 0.1,
            boundaries: vec![5, 15, 40],
            factor: 0.1,
        };
        let mut prev = f32::INFINITY;
        for step in 0..60 {
            let lr = s.at(step);
            assert!(lr <= prev);
            prev = lr;
        }
    }
}
