//! Reusable scratch-buffer arena for the training hot path.
//!
//! Every layer forward/backward used to allocate its activations and
//! intermediates fresh each step. A [`Workspace`] recycles those
//! buffers: a layer *takes* a tensor of the shape it needs (served from
//! a free list when a large-enough buffer exists) and *gives* buffers
//! back once they are no longer needed. After a warmup step the free
//! list holds every shape the step uses, and the steady-state step
//! performs zero heap allocations in the kernel path.
//!
//! Ownership rules (documented in DESIGN.md § Kernel design):
//! * Each model owns exactly one `Workspace`, threaded `&mut` through
//!   its layers; layers never stash workspace buffers across steps —
//!   persistent caches (e.g. a layer's saved input) live in the layer
//!   and are resized in place with [`Tensor::ensure_shape`].
//! * `take` returns a tensor with unspecified contents; callers must
//!   overwrite every element or use [`Workspace::take_zeroed`].
//! * `give` is optional (dropping a tensor is merely a missed reuse),
//!   but the zero-allocation guarantee only holds if every step's
//!   takes are balanced by gives.
//!
//! The arena counts how many times it had to fall back to the global
//! allocator; tests assert the count stays flat across steady-state
//! steps.

use selsync_tensor::{Shape, Tensor};

/// A free-list arena of `f32` buffers, reused across training steps.
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Vec<f32>>,
    allocations: u64,
}

/// Cloning a workspace yields a fresh empty arena: scratch buffers are
/// per-replica state, and models derive `Clone` for worker spawning.
impl Clone for Workspace {
    fn clone(&self) -> Self {
        Workspace::new()
    }
}

impl Workspace {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a tensor of `shape` with **unspecified contents**, reusing
    /// a free buffer when one with sufficient capacity exists.
    pub fn take(&mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        // Best fit: the smallest free buffer with enough capacity, so a
        // large activation buffer is not burned on a bias-sized request.
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in self.free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= n && best.is_none_or(|(_, bcap)| cap < bcap) {
                best = Some((i, cap));
            }
        }
        let mut data = match best {
            Some((i, _)) => self.free.swap_remove(i),
            None => {
                self.allocations += 1;
                Vec::with_capacity(n)
            }
        };
        data.resize(n, 0.0);
        Tensor::from_vec(data, shape)
    }

    /// Take a zero-filled tensor of `shape`.
    pub fn take_zeroed(&mut self, shape: impl Into<Shape>) -> Tensor {
        let mut t = self.take(shape);
        t.fill_zero();
        t
    }

    /// Return a tensor's storage to the free list.
    pub fn give(&mut self, t: Tensor) {
        let data = t.into_vec();
        if data.capacity() > 0 {
            self.free.push(data);
        }
    }

    /// How many times `take` fell back to the global allocator. Flat
    /// across steps ⇒ the step is allocation-free in the arena path.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Number of buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_roundtrip_reuses_buffer() {
        let mut ws = Workspace::new();
        let t = ws.take([4, 8]);
        assert_eq!(ws.allocations(), 1);
        ws.give(t);
        let t2 = ws.take([8, 4]);
        assert_eq!(ws.allocations(), 1, "same-size retake must not allocate");
        assert_eq!(t2.numel(), 32);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let big = ws.take([100]);
        let small = ws.take([10]);
        ws.give(big);
        ws.give(small);
        let t = ws.take([10]);
        assert_eq!(ws.allocations(), 2);
        // The 100-element buffer must still be available untouched.
        let t2 = ws.take([100]);
        assert_eq!(ws.allocations(), 2);
        assert_eq!(t.numel() + t2.numel(), 110);
    }

    #[test]
    fn take_zeroed_clears_recycled_contents() {
        let mut ws = Workspace::new();
        let mut t = ws.take([3]);
        t.fill(7.0);
        ws.give(t);
        let z = ws.take_zeroed([3]);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn undersized_free_buffer_triggers_allocation() {
        let mut ws = Workspace::new();
        let t = ws.take([4]);
        ws.give(t);
        let _big = ws.take([1000]);
        assert_eq!(ws.allocations(), 2);
    }

    #[test]
    fn clone_is_fresh_and_empty() {
        let mut ws = Workspace::new();
        let t = ws.take([16]);
        ws.give(t);
        let c = ws.clone();
        assert_eq!(c.allocations(), 0);
        assert_eq!(c.free_buffers(), 0);
    }
}
