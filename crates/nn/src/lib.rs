//! # selsync-nn
//!
//! Neural-network substrate for the SelSync reproduction: layers with
//! explicit forward/backward passes, losses, optimizers, learning-rate
//! schedules, and the *mini* model zoo that stands in for the paper's
//! ResNet101 / VGG11 / AlexNet / Transformer workloads (see DESIGN.md §1
//! substitution 3).
//!
//! Layers cache whatever the backward pass needs during `forward`, so a
//! `forward` → `backward` pair on the same module is a complete
//! backpropagation step. Parameters are reached through the visitor in
//! [`module::ParamVisitor::visit_params_mut`], which gives the distributed layer a flat,
//! deterministic parameter order for push/pull aggregation.

// The unsafe-outside-kernels invariant (selsync-lint), compiler-enforced:
// SIMD and socket code live in crates/tensor and crates/net only.
#![deny(unsafe_code)]

pub mod batch;
pub mod flat;
pub mod layers;
pub mod loss;
pub mod models;
pub mod module;
pub mod optim;
pub mod schedule;
pub mod workspace;

pub use batch::{Batch, Input};
pub use flat::{
    add_flat_to_params, clip_grad_norm, flat_grads, flat_grads_into, flat_params, flat_params_into,
    set_flat_params,
};
pub use module::{Module, Param};
pub use optim::{Adam, Optimizer, Sgd};
pub use schedule::LrSchedule;
pub use workspace::Workspace;
