//! Mini-batch container shared between the data and training layers.

use selsync_tensor::Tensor;

/// Model input: either dense features/images or token-id sequences.
#[derive(Debug, Clone, PartialEq)]
pub enum Input {
    /// Dense input `[n, ...]` — images `[n, c, h, w]` or features `[n, d]`.
    Dense(Tensor),
    /// Token ids, one sequence per sample (`[batch][seq_len]`); used by
    /// the Transformer language-model workload.
    Tokens(Vec<Vec<usize>>),
}

impl Input {
    /// Number of samples in this input.
    pub fn batch_size(&self) -> usize {
        match self {
            Input::Dense(t) => t.shape().dim(0),
            Input::Tokens(seqs) => seqs.len(),
        }
    }

    /// Borrow the dense tensor; panics for token input.
    pub fn dense(&self) -> &Tensor {
        match self {
            Input::Dense(t) => t,
            Input::Tokens(_) => panic!("expected dense input, found tokens"),
        }
    }

    /// Borrow the token sequences; panics for dense input.
    pub fn tokens(&self) -> &[Vec<usize>] {
        match self {
            Input::Tokens(s) => s,
            Input::Dense(_) => panic!("expected token input, found dense"),
        }
    }
}

/// One training mini-batch: inputs plus one target class per *output
/// position* (per sample for classification, per token for the LM).
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The input samples.
    pub input: Input,
    /// Target class indices, aligned with the rows of the model logits.
    pub targets: Vec<usize>,
}

impl Batch {
    /// A dense classification batch.
    pub fn dense(x: Tensor, targets: Vec<usize>) -> Self {
        assert_eq!(x.shape().dim(0), targets.len(), "one target per sample");
        Batch {
            input: Input::Dense(x),
            targets,
        }
    }

    /// A language-model batch: one target per token position.
    pub fn tokens(seqs: Vec<Vec<usize>>, targets: Vec<usize>) -> Self {
        let positions: usize = seqs.iter().map(Vec::len).sum();
        assert_eq!(positions, targets.len(), "one target per token position");
        Batch {
            input: Input::Tokens(seqs),
            targets,
        }
    }

    /// Number of samples (sequences count as one sample each).
    pub fn len(&self) -> usize {
        self.input.batch_size()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Concatenate two dense batches (used by data injection, §III-E).
    pub fn concat_dense(&self, other: &Batch) -> Batch {
        let a = self.input.dense();
        let b = other.input.dense();
        assert_eq!(
            a.shape().dims()[1..],
            b.shape().dims()[1..],
            "feature shapes must match"
        );
        let mut data = a.as_slice().to_vec();
        data.extend_from_slice(b.as_slice());
        let mut dims = a.shape().dims().to_vec();
        dims[0] += b.shape().dim(0);
        let mut targets = self.targets.clone();
        targets.extend_from_slice(&other.targets);
        Batch::dense(Tensor::from_vec(data, dims.as_slice()), targets)
    }

    /// Take the first `n` samples of a dense batch.
    pub fn truncate_dense(&self, n: usize) -> Batch {
        let x = self.input.dense();
        let n = n.min(x.shape().dim(0));
        let feat: usize = x.shape().dims()[1..].iter().product();
        let mut dims = x.shape().dims().to_vec();
        dims[0] = n;
        Batch::dense(
            Tensor::from_vec(x.as_slice()[..n * feat].to_vec(), dims.as_slice()),
            self.targets[..n].to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_batch_sizes() {
        let b = Batch::dense(Tensor::zeros([4, 3]), vec![0, 1, 2, 0]);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic]
    fn dense_batch_rejects_target_mismatch() {
        Batch::dense(Tensor::zeros([4, 3]), vec![0, 1]);
    }

    #[test]
    fn token_batch_counts_positions() {
        let b = Batch::tokens(vec![vec![1, 2, 3], vec![4, 5, 6]], vec![0; 6]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.input.tokens()[1], vec![4, 5, 6]);
    }

    #[test]
    fn concat_appends_samples_and_targets() {
        let a = Batch::dense(Tensor::ones([2, 3]), vec![1, 1]);
        let b = Batch::dense(Tensor::zeros([1, 3]), vec![0]);
        let c = a.concat_dense(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.targets, vec![1, 1, 0]);
        assert_eq!(c.input.dense().row(2), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let b = Batch::dense(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]),
            vec![7, 8],
        );
        let t = b.truncate_dense(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.targets, vec![7]);
        assert_eq!(t.input.dense().as_slice(), &[1.0, 2.0]);
    }
}
