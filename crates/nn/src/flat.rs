//! Flat-vector views of a module's parameters and gradients.
//!
//! The distributed layer communicates whole models as contiguous `f32`
//! vectors (pushToPS / pullFromPS in Alg. 1 of the paper). These helpers
//! define the canonical flattening: parameters concatenated in
//! `visit_params` order.

use crate::module::ParamVisitor;

/// Concatenate all parameter values into one vector.
pub fn flat_params(m: &dyn ParamVisitor) -> Vec<f32> {
    let mut out = Vec::with_capacity(m.num_params());
    m.visit_params(&mut |p| out.extend_from_slice(p.value.as_slice()));
    out
}

/// Concatenate all parameter gradients into one vector.
pub fn flat_grads(m: &dyn ParamVisitor) -> Vec<f32> {
    let mut out = Vec::with_capacity(m.num_params());
    m.visit_params(&mut |p| out.extend_from_slice(p.grad.as_slice()));
    out
}

/// [`flat_params`] into a caller-owned buffer (cleared first). After the
/// first call on a loop-persistent buffer, subsequent calls are
/// allocation-free — the step-loop hot path.
pub fn flat_params_into(m: &dyn ParamVisitor, out: &mut Vec<f32>) {
    out.clear();
    out.reserve(m.num_params());
    m.visit_params(&mut |p| out.extend_from_slice(p.value.as_slice()));
}

/// [`flat_grads`] into a caller-owned buffer (cleared first).
pub fn flat_grads_into(m: &dyn ParamVisitor, out: &mut Vec<f32>) {
    out.clear();
    out.reserve(m.num_params());
    m.visit_params(&mut |p| out.extend_from_slice(p.grad.as_slice()));
}

/// Overwrite all parameters from a flat vector (inverse of
/// [`flat_params`]).
///
/// # Panics
/// Panics if `flat.len()` does not equal the parameter count.
pub fn set_flat_params(m: &mut dyn ParamVisitor, flat: &[f32]) {
    let mut off = 0;
    m.visit_params_mut(&mut |p| {
        let n = p.numel();
        p.value.copy_from_slice(&flat[off..off + n]);
        off += n;
    });
    assert_eq!(off, flat.len(), "flat parameter vector length mismatch");
}

/// `params += alpha * flat`, e.g. applying an aggregated update in one
/// fused pass (used by gradient aggregation).
pub fn add_flat_to_params(m: &mut dyn ParamVisitor, flat: &[f32], alpha: f32) {
    let mut off = 0;
    m.visit_params_mut(&mut |p| {
        let n = p.numel();
        selsync_tensor::ops::axpy_slice(alpha, &flat[off..off + n], p.value.as_mut_slice());
        off += n;
    });
    assert_eq!(off, flat.len(), "flat gradient vector length mismatch");
}

/// Clip the global gradient L2 norm to `max_norm` (in place across all
/// parameters). Returns the pre-clip norm. Standard stabilization for
/// the Transformer recipes the paper's §II-E mentions among the
/// hyperparameters that shape gradient trajectories.
pub fn clip_grad_norm(m: &mut dyn ParamVisitor, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq = 0.0f32;
    m.visit_params(&mut |p| sq += selsync_tensor::reduce::sqnorm_slice(p.grad.as_slice()));
    let norm = sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        m.visit_params_mut(&mut |p| {
            for g in p.grad.as_mut_slice() {
                *g *= scale;
            }
        });
    }
    norm
}

/// Overwrite all *gradients* from a flat vector (used when a worker
/// receives aggregated gradients back from the server).
pub fn set_flat_grads(m: &mut dyn ParamVisitor, flat: &[f32]) {
    let mut off = 0;
    m.visit_params_mut(&mut |p| {
        let n = p.numel();
        p.grad.copy_from_slice(&flat[off..off + n]);
        off += n;
    });
    assert_eq!(off, flat.len(), "flat gradient vector length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Param;
    use selsync_tensor::Tensor;

    struct TwoParams {
        a: Param,
        b: Param,
    }

    impl ParamVisitor for TwoParams {
        fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
            f(&self.a);
            f(&self.b);
        }
        fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    fn module() -> TwoParams {
        TwoParams {
            a: Param::new("a", Tensor::from_vec(vec![1.0, 2.0], [2])),
            b: Param::new("b", Tensor::from_vec(vec![3.0], [1])),
        }
    }

    #[test]
    fn flatten_roundtrip() {
        let mut m = module();
        assert_eq!(flat_params(&m), vec![1.0, 2.0, 3.0]);
        set_flat_params(&mut m, &[9.0, 8.0, 7.0]);
        assert_eq!(flat_params(&m), vec![9.0, 8.0, 7.0]);
    }

    #[test]
    fn into_variants_match_and_reuse_capacity() {
        let mut m = module();
        m.a.grad.fill(0.5);
        m.b.grad.fill(-1.0);
        let mut buf = Vec::new();
        flat_params_into(&m, &mut buf);
        assert_eq!(buf, flat_params(&m));
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        flat_grads_into(&m, &mut buf);
        assert_eq!(buf, flat_grads(&m));
        assert_eq!(buf.capacity(), cap, "refill must not reallocate");
        assert_eq!(buf.as_ptr(), ptr, "refill must reuse the same storage");
    }

    #[test]
    fn grads_flatten_in_same_order() {
        let mut m = module();
        m.a.grad.fill(0.5);
        m.b.grad.fill(-1.0);
        assert_eq!(flat_grads(&m), vec![0.5, 0.5, -1.0]);
        set_flat_grads(&mut m, &[1.0, 2.0, 3.0]);
        assert_eq!(flat_grads(&m), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn add_flat_applies_scaled_update() {
        let mut m = module();
        add_flat_to_params(&mut m, &[1.0, 1.0, 1.0], -0.5);
        assert_eq!(flat_params(&m), vec![0.5, 1.5, 2.5]);
    }

    #[test]
    fn clip_scales_only_when_needed() {
        let mut m = module();
        m.a.grad = Tensor::from_vec(vec![3.0, 0.0], [2]);
        m.b.grad = Tensor::from_vec(vec![4.0], [1]);
        // global norm = 5; clip to 2.5 → all grads halve
        let pre = clip_grad_norm(&mut m, 2.5);
        assert!((pre - 5.0).abs() < 1e-6);
        assert_eq!(flat_grads(&m), vec![1.5, 0.0, 2.0]);
        // already within bound → untouched
        let pre2 = clip_grad_norm(&mut m, 10.0);
        assert!((pre2 - 2.5).abs() < 1e-6);
        assert_eq!(flat_grads(&m), vec![1.5, 0.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut m = module();
        set_flat_params(&mut m, &[1.0, 2.0]);
    }
}
