//! Loss functions and evaluation metrics.

use crate::layers::attention::softmax_in_place;
use selsync_tensor::{reduce, Tensor};

/// Softmax cross-entropy over logits `[n, classes]` with integer targets.
///
/// Returns `(mean_loss, dlogits)` where `dlogits` is already scaled by
/// `1/n`, so a plain SGD step on the returned gradient implements Eqn. (1)
/// of the paper.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().ndim(), 2, "logits must be [n, classes]");
    let n = logits.shape().dim(0);
    let classes = logits.shape().dim(1);
    assert_eq!(n, targets.len(), "one target per row");
    let mut probs = logits.clone();
    let mut loss = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < classes, "target {t} out of range {classes}");
        let row = probs.row_mut(i);
        softmax_in_place(row);
        loss -= (row[t].max(1e-12) as f64).ln();
    }
    let inv_n = 1.0 / n as f32;
    for (i, &t) in targets.iter().enumerate() {
        let row = probs.row_mut(i);
        row[t] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_n;
        }
    }
    ((loss / n as f64) as f32, probs)
}

/// Mean squared error `mean((pred - target)²)`; returns `(loss, dpred)`.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert!(pred.shape().same(target.shape()), "mse shape mismatch");
    let n = pred.numel() as f32;
    let mut loss = 0.0;
    let mut grad = pred.clone();
    for (g, t) in grad.as_mut_slice().iter_mut().zip(target.as_slice()) {
        let d = *g - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Top-1 accuracy of logits `[n, classes]` against targets.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    let preds = reduce::argmax_rows(logits);
    let hits = preds.iter().zip(targets).filter(|(p, t)| p == t).count();
    hits as f32 / targets.len().max(1) as f32
}

/// Top-k accuracy (the paper reports top-5 for AlexNet/ImageNet).
pub fn topk_accuracy(logits: &Tensor, targets: &[usize], k: usize) -> f32 {
    let tops = reduce::topk_rows(logits, k);
    let hits = tops
        .iter()
        .zip(targets)
        .filter(|(top, t)| top.contains(t))
        .count();
    hits as f32 / targets.len().max(1) as f32
}

/// Perplexity = exp(cross-entropy loss); the paper's Transformer metric.
pub fn perplexity(ce_loss: f32) -> f32 {
    ce_loss.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Tensor::zeros([4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor::zeros([1, 3]);
        logits.as_mut_slice()[1] = 20.0;
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn ce_gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.2, -0.3, 0.5, 1.0, 0.0, -1.0], [2, 3]);
        let targets = [2usize, 0];
        let (base, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let (pert, _) = softmax_cross_entropy(&lp, &targets);
            let fd = (pert - base) / eps;
            assert!((grad.as_slice()[i] - fd).abs() < 1e-2, "grad[{i}]");
        }
    }

    #[test]
    fn ce_gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[0]);
        let s: f32 = grad.as_slice().iter().sum();
        assert!(s.abs() < 1e-6, "softmax CE gradient sums to zero per row");
    }

    #[test]
    fn mse_known_value() {
        let p = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let t = Tensor::from_vec(vec![0.0, 0.0], [2]);
        let (loss, grad) = mse(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn accuracy_counts_hits() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], [2, 2]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }

    #[test]
    fn topk_is_monotone_in_k() {
        let logits = Tensor::from_vec(vec![0.5, 0.4, 0.3, 0.2, 0.1], [1, 5]);
        assert_eq!(topk_accuracy(&logits, &[4], 1), 0.0);
        assert_eq!(topk_accuracy(&logits, &[4], 5), 1.0);
        assert_eq!(topk_accuracy(&logits, &[1], 2), 1.0);
    }

    #[test]
    fn perplexity_of_zero_loss_is_one() {
        assert_eq!(perplexity(0.0), 1.0);
        assert!((perplexity((10.0f32).ln()) - 10.0).abs() < 1e-4);
    }
}
