//! Property-based tests of the neural-network substrate: gradient
//! checks on randomized layer configurations, flat-parameter roundtrips,
//! optimizer invariants, and loss identities.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_nn::flat::{flat_grads, flat_params, set_flat_params};
use selsync_nn::layers::Linear;
use selsync_nn::loss::softmax_cross_entropy;
use selsync_nn::models::{Mlp, Model};
use selsync_nn::module::{Module, ParamVisitor};
use selsync_nn::optim::{Adam, Optimizer, Sgd};
use selsync_nn::Input;
use selsync_tensor::{init, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_gradcheck_random_shapes(
        n in 1usize..6,
        din in 1usize..6,
        dout in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut l = Linear::new("l", din, dout, &mut rng);
        let x = init::randn([n, din], 1.0, &mut rng);
        let base: f32 = l.forward(&x, true).as_slice().iter().sum();
        l.zero_grad();
        let _ = l.backward(&Tensor::ones([n, dout]));
        // check one weight coordinate by finite differences
        let wi = (seed as usize) % (din * dout);
        let eps = 1e-2;
        let mut l2 = l.clone();
        l2.w.value.as_mut_slice()[wi] += eps;
        let pert: f32 = l2.forward(&x, true).as_slice().iter().sum();
        let fd = (pert - base) / eps;
        let an = l.w.grad.as_slice()[wi];
        prop_assert!((an - fd).abs() < 0.05 * fd.abs().max(1.0), "{an} vs {fd}");
    }

    #[test]
    fn flat_params_roundtrip_any_mlp(
        hidden in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut m = Mlp::new(&[5, hidden, 3], seed);
        let params = flat_params(&m);
        // write scaled values back and read them again
        let scaled: Vec<f32> = params.iter().map(|p| p * 2.0 + 1.0).collect();
        set_flat_params(&mut m, &scaled);
        prop_assert_eq!(flat_params(&m), scaled);
    }

    #[test]
    fn sgd_step_moves_against_gradient(seed in 0u64..1000, lr in 0.001f32..0.5) {
        let mut m = Mlp::new(&[3, 4, 2], seed);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let x = init::randn([6, 3], 1.0, &mut rng);
        let targets = vec![0usize, 1, 0, 1, 0, 1];
        let logits = m.forward(&Input::Dense(x.clone()), true);
        let (before, dl) = softmax_cross_entropy(&logits, &targets);
        m.zero_grad();
        m.backward(&dl);
        let grads = flat_grads(&m);
        let gnorm: f32 = grads.iter().map(|g| g * g).sum();
        prop_assume!(gnorm > 1e-8);
        let mut opt = Sgd::new(lr);
        opt.step(&mut m);
        // first-order: loss decreases for a small enough step; we only
        // assert the parameters moved exactly by -lr*grad
        let after = flat_params(&m);
        let logits2 = m.forward(&Input::Dense(x), true);
        let (after_loss, _) = softmax_cross_entropy(&logits2, &targets);
        if lr < 0.05 {
            prop_assert!(after_loss <= before + 1e-4, "{after_loss} vs {before}");
        }
        let _ = after;
    }

    #[test]
    fn adam_updates_are_lr_bounded(seed in 0u64..1000, lr in 0.001f32..0.1) {
        // |Δw| ≤ lr (plus eps slack) per coordinate on the first step
        let mut m = Mlp::new(&[3, 3, 2], seed);
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let x = init::randn([4, 3], 1.0, &mut rng);
        let logits = m.forward(&Input::Dense(x), true);
        let (_, dl) = softmax_cross_entropy(&logits, &[0, 1, 0, 1]);
        m.zero_grad();
        m.backward(&dl);
        let before = flat_params(&m);
        let mut opt = Adam::new(lr);
        opt.step(&mut m);
        let after = flat_params(&m);
        for (b, a) in before.iter().zip(&after) {
            prop_assert!((b - a).abs() <= lr * 1.2 + 1e-6);
        }
    }

    #[test]
    fn softmax_ce_rows_grads_sum_to_zero(
        n in 1usize..6,
        classes in 2usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = init::randn([n, classes], 2.0, &mut rng);
        let targets: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let (loss, grad) = softmax_cross_entropy(&logits, &targets);
        prop_assert!(loss >= 0.0);
        for r in 0..n {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn ce_loss_shrinks_when_target_logit_grows(
        classes in 2usize..8,
        seed in 0u64..1000,
        boost in 0.5f32..5.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = init::randn([1, classes], 1.0, &mut rng);
        let target = (seed as usize) % classes;
        let (l1, _) = softmax_cross_entropy(&logits, &[target]);
        let mut boosted = logits.clone();
        boosted.row_mut(0)[target] += boost;
        let (l2, _) = softmax_cross_entropy(&boosted, &[target]);
        prop_assert!(l2 < l1);
    }

    #[test]
    fn identical_seeds_build_identical_models_prop(seed in 0u64..10_000) {
        let a = Mlp::new(&[4, 8, 3], seed);
        let b = Mlp::new(&[4, 8, 3], seed);
        prop_assert_eq!(flat_params(&a), flat_params(&b));
    }
}
