//! Steady-state allocation discipline for the workspace-aware layer
//! paths: after a warmup step has sized the arena and the layer caches,
//! repeated `forward_ws` + `backward_ws` must draw every temporary from
//! the workspace — the arena's allocation counter stays flat.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_nn::layers::{Conv2d, Linear};
use selsync_nn::models::{Mlp, Model};
use selsync_nn::module::ParamVisitor;
use selsync_nn::{Module, Workspace};
use selsync_tensor::{init, Tensor};

/// Run `steps` forward+backward pairs, returning the arena's allocation
/// count after warmup and at the end.
fn drive(
    layer: &mut dyn Module,
    x: &Tensor,
    dy: &Tensor,
    ws: &mut Workspace,
    warmup: usize,
    steps: usize,
) -> (u64, u64) {
    let mut after_warmup = 0;
    for step in 0..warmup + steps {
        if step == warmup {
            after_warmup = ws.allocations();
        }
        let y = layer.forward_ws(x, true, ws);
        ws.give(y);
        layer.zero_grad();
        let dx = layer.backward_ws(dy, ws);
        ws.give(dx);
    }
    (after_warmup, ws.allocations())
}

#[test]
fn linear_steady_state_is_allocation_free() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut l = Linear::new("l", 64, 32, &mut rng);
    let x = init::randn([8, 64], 1.0, &mut rng);
    let dy = Tensor::ones([8, 32]);
    let mut ws = Workspace::new();
    let (start, end) = drive(&mut l, &x, &dy, &mut ws, 2, 8);
    assert!(start > 0, "warmup must have populated the arena");
    assert_eq!(end, start, "steady-state Linear steps must not allocate");
}

#[test]
fn conv2d_steady_state_is_allocation_free() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut c = Conv2d::new("c", 3, 8, 8, 8, 3, 1, 1, &mut rng);
    let x = init::randn([4, 3, 8, 8], 1.0, &mut rng);
    let dy = Tensor::ones([4, 8, 8, 8]);
    let mut ws = Workspace::new();
    let (start, end) = drive(&mut c, &x, &dy, &mut ws, 2, 8);
    assert!(start > 0, "warmup must have populated the arena");
    assert_eq!(end, start, "steady-state Conv2d steps must not allocate");
}

#[test]
fn mlp_predict_steady_state_is_allocation_free() {
    // The serving hot path: after one warmup batch at the largest row
    // count, repeated predict_ws calls (including smaller batches, as a
    // dynamic batcher produces) must draw every temporary from the
    // arena. Mirrors the layer-level assertions above at model level.
    let mut rng = StdRng::seed_from_u64(3);
    let mut m = Mlp::new(&[16, 32, 8], 9);
    let big = init::randn([8, 16], 1.0, &mut rng);
    let small = init::randn([3, 16], 1.0, &mut rng);
    let mut ws = Workspace::new();
    let y = m.predict_ws(&big, &mut ws);
    ws.give(y);
    let after_warmup = ws.allocations();
    assert!(after_warmup > 0, "warmup must have populated the arena");
    for step in 0..16 {
        let x = if step % 3 == 0 { &small } else { &big };
        let y = m.predict_ws(x, &mut ws);
        ws.give(y);
    }
    assert_eq!(
        ws.allocations(),
        after_warmup,
        "steady-state predict must not allocate"
    );
}

#[test]
fn shared_arena_across_layers_stays_flat() {
    // A Linear and a Conv2d sharing one arena (as models do) must also
    // reach a fixed point: best-fit take never steals a buffer it can't
    // return in equivalent capacity.
    let mut rng = StdRng::seed_from_u64(2);
    let mut c = Conv2d::new("c", 3, 4, 8, 8, 3, 1, 1, &mut rng);
    let mut l = Linear::new("l", 4 * 8 * 8, 16, &mut rng);
    let xc = init::randn([2, 3, 8, 8], 1.0, &mut rng);
    let dyc = Tensor::ones([2, 4, 8, 8]);
    let xl = init::randn([2, 4 * 8 * 8], 1.0, &mut rng);
    let dyl = Tensor::ones([2, 16]);
    let mut ws = Workspace::new();
    let mut after_warmup = 0;
    for step in 0..10 {
        if step == 2 {
            after_warmup = ws.allocations();
        }
        let y = c.forward_ws(&xc, true, &mut ws);
        ws.give(y);
        c.zero_grad();
        let dx = c.backward_ws(&dyc, &mut ws);
        ws.give(dx);
        let y = l.forward_ws(&xl, true, &mut ws);
        ws.give(y);
        l.zero_grad();
        let dx = l.backward_ws(&dyl, &mut ws);
        ws.give(dx);
    }
    assert!(after_warmup > 0);
    assert_eq!(ws.allocations(), after_warmup);
}
