//! Seeded random tensor initializers.
//!
//! Every constructor takes an explicit `StdRng` so a model built from a
//! seed is bit-identical on every worker — the precondition under which
//! gradient aggregation and parameter aggregation coincide in BSP (§III-C
//! of the paper).

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::RngExt;
use rand_distr::{Distribution, Normal, Uniform};

/// Standard-normal entries scaled by `std`.
pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut StdRng) -> Tensor {
    let shape = shape.into();
    let normal = Normal::new(0.0f32, std).expect("std must be finite and positive");
    let data = (0..shape.numel()).map(|_| normal.sample(rng)).collect();
    Tensor::from_vec(data, shape)
}

/// Uniform entries in `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let shape = shape.into();
    let dist = Uniform::new(lo, hi).expect("invalid uniform bounds");
    let data = (0..shape.numel()).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform initialization for a weight with `fan_in` inputs
/// and `fan_out` outputs.
pub fn xavier_uniform(
    shape: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut StdRng,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

/// Kaiming/He normal initialization for ReLU networks with `fan_in` inputs.
pub fn kaiming_normal(shape: impl Into<Shape>, fan_in: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    randn(shape, std, rng)
}

/// A random permutation of `0..n` (Fisher–Yates).
pub fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        p.swap(i, j);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn seeded_init_is_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        assert_eq!(
            randn([4, 4], 1.0, &mut r1).as_slice(),
            randn([4, 4], 1.0, &mut r2).as_slice()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        assert_ne!(
            randn([8], 1.0, &mut r1).as_slice(),
            randn([8], 1.0, &mut r2).as_slice()
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = uniform([1000], -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = xavier_uniform([1000], 5000, 5000, &mut rng);
        let bound = (6.0f32 / 10000.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn randn_sample_stats_are_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = randn([20000], 2.0, &mut rng);
        let m = crate::reduce::mean(&t);
        let v = crate::reduce::variance(&t);
        assert!(m.abs() < 0.1, "mean {m} too far from 0");
        assert!((v - 4.0).abs() < 0.3, "variance {v} too far from 4");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = permutation(100, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
