//! The dense `f32` tensor type.

use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// This is the single array type used throughout the workspace: model
/// parameters, gradients, activations, and mini-batches are all `Tensor`s.
/// The distributed layer flattens tensors into `&[f32]` slices for
/// communication, so contiguity is an invariant, not an optimization.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Create a tensor from raw data and a shape.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor { data, shape }
    }

    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// A tensor of ones with the given shape.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// A rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::new(&[]),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying contiguous storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying contiguous storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Resize this tensor to `shape`, reusing the existing storage when
    /// its capacity suffices. Contents are unspecified afterwards — the
    /// caller is expected to overwrite every element. Returns `true` if
    /// the underlying buffer had to grow (i.e. a heap allocation
    /// happened), which the nn workspace uses for its allocation audit.
    pub fn ensure_shape(&mut self, shape: impl Into<Shape>) -> bool {
        let shape = shape.into();
        let n = shape.numel();
        let grew = n > self.data.capacity();
        self.data.resize(n, 0.0);
        self.shape = shape;
        grew
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.shape.offset(idx);
        &mut self.data[off]
    }

    /// Reinterpret the tensor with a new shape of equal element count.
    ///
    /// This is free: the storage is shared (moved), no copy happens.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            self.data.len(),
            shape.numel(),
            "cannot reshape {} elements into {}",
            self.data.len(),
            shape
        );
        Tensor {
            data: self.data,
            shape,
        }
    }

    /// Borrowing variant of [`Tensor::reshape`]: copies the data.
    pub fn reshaped(&self, shape: impl Into<Shape>) -> Self {
        self.clone().reshape(shape)
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Set every element to `v`, keeping the allocation.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Copy data from `src` without reallocating (shapes must match).
    pub fn copy_from(&mut self, src: &Tensor) {
        assert!(
            self.shape.same(&src.shape),
            "copy_from shape mismatch: {} vs {}",
            self.shape,
            src.shape
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Copy data from a flat slice (length must equal `numel()`).
    pub fn copy_from_slice(&mut self, src: &[f32]) {
        assert_eq!(
            self.data.len(),
            src.len(),
            "copy_from_slice length mismatch"
        );
        self.data.copy_from_slice(src);
    }

    /// Row `r` of a rank-2 tensor as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.ndim(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable row `r` of a rank-2 tensor.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.shape.ndim(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor — a placeholder for layer caches.
    fn default() -> Self {
        Tensor::zeros([0])
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(
                f,
                "data=[{}, {}, ... ; {}])",
                self.data[0],
                self.data[1],
                self.data.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.at(&[0, 1]), 2.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert_eq!(t.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1.0; 3], [2, 2]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]);
        let r = t.reshape([3, 2]);
        assert_eq!(r.at(&[2, 1]), 5.0);
    }

    #[test]
    #[should_panic]
    fn reshape_rejects_count_mismatch() {
        Tensor::zeros([2, 3]).reshape([4, 2]);
    }

    #[test]
    fn rows_are_contiguous() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]);
        assert_eq!(t.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn fill_and_copy_keep_allocation() {
        let mut t = Tensor::ones([4]);
        let ptr = t.as_slice().as_ptr();
        t.fill_zero();
        assert_eq!(t.as_slice(), &[0.0; 4]);
        t.copy_from(&Tensor::full([4], 2.0));
        assert_eq!(t.as_slice(), &[2.0; 4]);
        assert_eq!(ptr, t.as_slice().as_ptr(), "no reallocation");
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros([3]);
        assert!(!t.has_non_finite());
        t.as_mut_slice()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
