//! Reductions: sums, means, norms, extrema, and axis reductions.

use crate::tensor::Tensor;

/// Sum of all elements.
pub fn sum(t: &Tensor) -> f32 {
    t.as_slice().iter().sum()
}

/// Arithmetic mean of all elements (0 for an empty tensor).
pub fn mean(t: &Tensor) -> f32 {
    if t.numel() == 0 {
        0.0
    } else {
        sum(t) / t.numel() as f32
    }
}

/// Squared L2 norm `‖t‖²` — the quantity Eqn. (2) of the paper tracks.
pub fn sqnorm(t: &Tensor) -> f32 {
    sqnorm_slice(t.as_slice())
}

/// Squared L2 norm of a raw slice.
#[inline]
pub fn sqnorm_slice(x: &[f32]) -> f32 {
    crate::ops::dot_slice(x, x)
}

/// L2 norm.
pub fn norm(t: &Tensor) -> f32 {
    sqnorm(t).sqrt()
}

/// Population variance of the elements.
pub fn variance(t: &Tensor) -> f32 {
    let n = t.numel();
    if n == 0 {
        return 0.0;
    }
    let m = mean(t);
    t.as_slice().iter().map(|x| (x - m) * (x - m)).sum::<f32>() / n as f32
}

/// Maximum element (`-inf` for an empty tensor).
pub fn max(t: &Tensor) -> f32 {
    t.as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max)
}

/// Minimum element (`+inf` for an empty tensor).
pub fn min(t: &Tensor) -> f32 {
    t.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
}

/// Index of the maximum element of a flat slice (first on ties).
pub fn argmax_slice(x: &[f32]) -> usize {
    let mut best = 0;
    let mut bestv = f32::NEG_INFINITY;
    for (i, &v) in x.iter().enumerate() {
        if v > bestv {
            bestv = v;
            best = i;
        }
    }
    best
}

/// Per-row argmax of a rank-2 tensor — predicted class per sample.
pub fn argmax_rows(t: &Tensor) -> Vec<usize> {
    assert_eq!(t.shape().ndim(), 2, "argmax_rows needs rank-2 input");
    let rows = t.shape().dim(0);
    (0..rows).map(|r| argmax_slice(t.row(r))).collect()
}

/// Indices of the top-`k` rows by value per row; used by top-5 accuracy.
pub fn topk_rows(t: &Tensor, k: usize) -> Vec<Vec<usize>> {
    assert_eq!(t.shape().ndim(), 2, "topk_rows needs rank-2 input");
    let rows = t.shape().dim(0);
    (0..rows)
        .map(|r| {
            let row = t.row(r);
            let mut idx: Vec<usize> = (0..row.len()).collect();
            idx.sort_by(|&a, &b| {
                row[b]
                    .partial_cmp(&row[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            idx.truncate(k);
            idx
        })
        .collect()
}

/// Column sums of a rank-2 tensor `[rows, cols]` → length-`cols` tensor.
/// This is the bias-gradient reduction.
pub fn sum_axis0(t: &Tensor) -> Tensor {
    assert_eq!(t.shape().ndim(), 2, "sum_axis0 needs rank-2 input");
    let cols = t.shape().dim(1);
    let mut out = Tensor::zeros([cols]);
    let o = out.as_mut_slice();
    for row in t.as_slice().chunks_exact(cols) {
        for (ov, rv) in o.iter_mut().zip(row) {
            *ov += rv;
        }
    }
    out
}

/// Column sums of a rank-2 tensor accumulated into an existing
/// length-`cols` slice (the allocation-free bias-gradient path:
/// `acc[j] += Σ_i t[i, j]`).
pub fn sum_axis0_acc(t: &Tensor, acc: &mut [f32]) {
    assert_eq!(t.shape().ndim(), 2, "sum_axis0_acc needs rank-2 input");
    let cols = t.shape().dim(1);
    assert_eq!(acc.len(), cols, "sum_axis0_acc accumulator length mismatch");
    for row in t.as_slice().chunks_exact(cols) {
        for (ov, rv) in acc.iter_mut().zip(row) {
            *ov += rv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), [v.len()])
    }

    #[test]
    fn sums_and_means() {
        let x = t(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sum(&x), 10.0);
        assert_eq!(mean(&x), 2.5);
    }

    #[test]
    fn norms() {
        let x = t(&[3.0, 4.0]);
        assert_eq!(sqnorm(&x), 25.0);
        assert_eq!(norm(&x), 5.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&Tensor::full([5], 3.0)), 0.0);
    }

    #[test]
    fn variance_known_value() {
        // var([1, 3]) = 1 (population)
        assert!((variance(&t(&[1.0, 3.0])) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn extrema() {
        let x = t(&[-1.0, 7.0, 3.0]);
        assert_eq!(max(&x), 7.0);
        assert_eq!(min(&x), -1.0);
    }

    #[test]
    fn argmax_per_row() {
        let x = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.8, 0.1, 0.1], [2, 3]);
        assert_eq!(argmax_rows(&x), vec![1, 0]);
    }

    #[test]
    fn topk_contains_argmax_first() {
        let x = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.3], [1, 4]);
        let tk = topk_rows(&x, 3);
        assert_eq!(tk[0], vec![1, 2, 3]);
    }

    #[test]
    fn axis0_sum() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], [2, 2]);
        assert_eq!(sum_axis0(&x).as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn axis0_sum_accumulates() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], [2, 2]);
        let mut acc = [100.0, 200.0];
        sum_axis0_acc(&x, &mut acc);
        assert_eq!(acc, [111.0, 222.0]);
    }
}
