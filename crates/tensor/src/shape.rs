//! Tensor shapes and row-major index arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a tensor: an ordered list of dimension extents.
///
/// Shapes are row-major; the last dimension is contiguous in memory.
/// Rank 0 (scalar) through rank 4 (`[batch, channel, height, width]`)
/// are the ranks used by the rest of the workspace.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Create a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions (rank) of the shape.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements described by the shape.
    ///
    /// A rank-0 shape describes exactly one (scalar) element.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `i`. Panics if `i >= ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear (row-major) offset of a multi-dimensional index.
    ///
    /// Panics in debug builds if `idx` has wrong rank or is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.ndim(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.0.len()).rev() {
            debug_assert!(idx[i] < self.0[i], "index out of bounds");
            off += idx[i] * stride;
            stride *= self.0[i];
        }
        off
    }

    /// Whether two shapes are elementwise-compatible (identical).
    pub fn same(&self, other: &Shape) -> bool {
        self.0 == other.0
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(d: &[usize]) -> Self {
        Shape::new(d)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(d: [usize; N]) -> Self {
        Shape(d.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_counts_elements() {
        assert_eq!(Shape::new(&[2, 3, 4]).numel(), 24);
        assert_eq!(Shape::new(&[7]).numel(), 7);
        assert_eq!(Shape::new(&[]).numel(), 1, "scalar shape has one element");
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), [12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), [1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[1, 0, 1]), 13);
    }

    #[test]
    fn offset_covers_every_element_exactly_once() {
        let s = Shape::new(&[3, 4]);
        let mut seen = [false; 12];
        for i in 0..3 {
            for j in 0..4 {
                let off = s.offset(&[i, j]);
                assert!(!seen[off]);
                seen[off] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn offset_panics_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }
}
