//! Blocked, optionally rayon-parallel matrix multiplication.
//!
//! Three kernels cover everything backpropagation needs without ever
//! materializing a transposed copy:
//!
//! * [`matmul`]     — `C = A·B`      (forward pass)
//! * [`matmul_tn`]  — `C = Aᵀ·B`     (weight gradients)
//! * [`matmul_nt`]  — `C = A·Bᵀ`     (input gradients)

use crate::ops::dot_slice;
use crate::tensor::Tensor;
use crate::PAR_FLOP_THRESHOLD;
use rayon::prelude::*;

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = dims_nn(a, b);
    let mut c = Tensor::zeros([m, n]);
    matmul_into(a, b, &mut c);
    let _ = k;
    c
}

/// `C = A·B` writing into a preallocated `C[m,n]`.
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k, n) = dims_nn(a, b);
    assert_eq!(c.shape().dims(), &[m, n], "output shape mismatch");
    let (a, b) = (a.as_slice(), b.as_slice());
    let kernel = |row_i: usize, c_row: &mut [f32]| {
        c_row.fill(0.0);
        let a_row = &a[row_i * k..(row_i + 1) * k];
        // ikj loop order: the inner loop streams B and C rows contiguously.
        for (p, &aval) in a_row.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aval * bv;
            }
        }
    };
    if m * n * k >= PAR_FLOP_THRESHOLD && m > 1 {
        c.as_mut_slice()
            .par_chunks_exact_mut(n)
            .enumerate()
            .for_each(|(i, row)| kernel(i, row));
    } else {
        for (i, row) in c.as_mut_slice().chunks_exact_mut(n).enumerate() {
            kernel(i, row);
        }
    }
}

/// `C[k,n] = Aᵀ[k,m] · B[m,n]` where `A` is `[m,k]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a);
    let (m2, n) = dims2(b);
    assert_eq!(m, m2, "matmul_tn inner dimension mismatch ({m} vs {m2})");
    let mut c = Tensor::zeros([k, n]);
    {
        let (a, b) = (a.as_slice(), b.as_slice());
        let kernel = |row_p: usize, c_row: &mut [f32]| {
            c_row.fill(0.0);
            // C[p, :] = sum_i A[i, p] * B[i, :]
            for i in 0..m {
                let aval = a[i * k + row_p];
                if aval == 0.0 {
                    continue;
                }
                let b_row = &b[i * n..(i + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aval * bv;
                }
            }
        };
        if m * n * k >= PAR_FLOP_THRESHOLD && k > 1 {
            c.as_mut_slice()
                .par_chunks_exact_mut(n)
                .enumerate()
                .for_each(|(p, row)| kernel(p, row));
        } else {
            for (p, row) in c.as_mut_slice().chunks_exact_mut(n).enumerate() {
                kernel(p, row);
            }
        }
    }
    c
}

/// `C[m,k] = A[m,n] · Bᵀ[n,k]` where `B` is `[k,n]`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, n) = dims2(a);
    let (k, n2) = dims2(b);
    assert_eq!(n, n2, "matmul_nt inner dimension mismatch ({n} vs {n2})");
    let mut c = Tensor::zeros([m, k]);
    {
        let (a, b) = (a.as_slice(), b.as_slice());
        let kernel = |row_i: usize, c_row: &mut [f32]| {
            let a_row = &a[row_i * n..(row_i + 1) * n];
            // C[i, j] = A[i, :] · B[j, :] — both operands stream contiguously.
            for (j, cv) in c_row.iter_mut().enumerate() {
                *cv = dot_slice(a_row, &b[j * n..(j + 1) * n]);
            }
        };
        if m * n * k >= PAR_FLOP_THRESHOLD && m > 1 {
            c.as_mut_slice()
                .par_chunks_exact_mut(k)
                .enumerate()
                .for_each(|(i, row)| kernel(i, row));
        } else {
            for (i, row) in c.as_mut_slice().chunks_exact_mut(k).enumerate() {
                kernel(i, row);
            }
        }
    }
    c
}

/// Transpose of a rank-2 tensor (materialized copy).
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = dims2(a);
    let mut out = Tensor::zeros([n, m]);
    let src = a.as_slice();
    let dst = out.as_mut_slice();
    for i in 0..m {
        for j in 0..n {
            dst[j * m + i] = src[i * n + j];
        }
    }
    out
}

fn dims2(t: &Tensor) -> (usize, usize) {
    assert_eq!(t.shape().ndim(), 2, "matmul operands must be rank-2");
    (t.shape().dim(0), t.shape().dim(1))
}

fn dims_nn(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    let (m, k) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2, "matmul inner dimension mismatch ({k} vs {k2})");
    (m, k, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), [rows, cols])
    }

    #[test]
    fn matmul_2x2_known() {
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t2(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(matmul(&a, &b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t2(2, 3, &[1.0, 0.0, 2.0, 0.0, 1.0, 1.0]);
        let b = t2(3, 1, &[1.0, 2.0, 3.0]);
        assert_eq!(matmul(&a, &b).as_slice(), &[7.0, 5.0]);
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = t2(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let via_kernel = matmul_tn(&a, &b);
        let via_transpose = matmul(&transpose(&a), &b);
        assert_eq!(via_kernel.as_slice(), via_transpose.as_slice());
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(
            4,
            3,
            &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0],
        );
        let via_kernel = matmul_nt(&a, &b);
        let via_transpose = matmul(&a, &transpose(&b));
        assert_eq!(via_kernel.as_slice(), via_transpose.as_slice());
    }

    #[test]
    fn transpose_involution() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(transpose(&transpose(&a)).as_slice(), a.as_slice());
    }

    #[test]
    fn identity_is_neutral() {
        let a = t2(3, 3, &[2.0, 0.0, 1.0, 0.0, 3.0, 0.0, 1.0, 0.0, 4.0]);
        let id = {
            let mut i = Tensor::zeros([3, 3]);
            for d in 0..3 {
                *i.at_mut(&[d, d]) = 1.0;
            }
            i
        };
        assert_eq!(matmul(&a, &id).as_slice(), a.as_slice());
        assert_eq!(matmul(&id, &a).as_slice(), a.as_slice());
    }

    #[test]
    fn large_matmul_parallel_path_matches_serial() {
        // Exceed PAR_FLOP_THRESHOLD so the rayon path executes, and compare
        // against the naive triple loop.
        let m = 70;
        let k = 70;
        let n = 70;
        let a = Tensor::from_vec(
            (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect(),
            [m, k],
        );
        let b = Tensor::from_vec((0..k * n).map(|i| ((i % 7) as f32) - 3.0).collect(), [k, n]);
        let c = matmul(&a, &b);
        for i in (0..m).step_by(17) {
            for j in (0..n).step_by(23) {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(&[i, p]) * b.at(&[p, j]);
                }
                assert!((c.at(&[i, j]) - s).abs() < 1e-3);
            }
        }
    }

    #[test]
    #[should_panic]
    fn inner_dim_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
