//! Packed, tiled, optionally rayon-parallel matrix multiplication.
//!
//! Three kernels cover everything backpropagation needs without ever
//! materializing a transposed copy:
//!
//! * [`matmul`]     — `C = A·B`      (forward pass)
//! * [`matmul_tn`]  — `C = Aᵀ·B`     (weight gradients)
//! * [`matmul_nt`]  — `C = A·Bᵀ`     (input gradients)
//!
//! All three route through one packed gemm core: operands are described
//! by a strided [`MatRef`] view (so a transpose is just swapped strides,
//! never a copy), then blocked MC×KC×NC and packed into contiguous
//! panels so the MR×NR register microkernel always streams unit-stride
//! memory regardless of the caller's layout. `matmul_tn` in particular
//! used to stride column-wise through `A` on every output row; packing
//! turns that into one strided sweep per KC block.
//!
//! Parallelism fans the MC row-blocks of `C` out over threads. Each
//! block runs byte-for-byte the same code serially or in parallel, so
//! results are bit-identical for any thread count — a requirement for
//! the distributed bit-exactness tests (same-seed single-process vs TCP
//! multi-process runs must agree exactly).
//!
//! The pre-rewrite scalar kernels survive in [`reference`] as the test
//! oracle and the `kernel_bench --reference` baseline; flipping
//! [`set_reference_mode`] routes the public entry points through them.

use crate::tensor::Tensor;
use crate::{MATMUL_NN_PAR_MACS, MATMUL_NT_PAR_MACS, MATMUL_TN_PAR_MACS};
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Register-block rows: each microkernel invocation produces an MR×NR
/// tile of `C` held entirely in accumulator registers. 6×16 f32 = 12
/// ymm accumulators on AVX2, leaving registers for the B loads and the
/// A broadcast.
const MR: usize = 6;
/// Register-block columns; 16 f32 = two AVX2 lanes / four NEON lanes,
/// wide enough for the compiler to autovectorize the inner update.
const NR: usize = 16;
/// K-dimension block: one packed A panel (KC×MR floats = 4 KiB, kept on
/// the stack) and one B panel row-run fit comfortably in L1/L2.
const KC: usize = 256;
/// Row block fanned out as the unit of parallelism; MC×KC of packed A
/// is 64 KiB, well inside L2.
const MC: usize = 64;
/// Column block bounding the packed B buffer at KC×NC = 512 KiB.
const NC: usize = 512;

/// Explicit parallelism control for the `*_into_with` kernel variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Par {
    /// Parallelize when the kernel's MAC count crosses its threshold.
    Auto,
    /// Force the serial path.
    Never,
    /// Force the row-block fan-out (used by determinism tests).
    Always,
}

static REFERENCE_MODE: AtomicBool = AtomicBool::new(false);

/// Route every tensor kernel (matmul family and im2col/col2im) through
/// the naive [`reference`] implementations. Used by `kernel_bench
/// --reference` to measure the pre-optimization baseline; not intended
/// for concurrent toggling mid-computation.
pub fn set_reference_mode(on: bool) {
    REFERENCE_MODE.store(on, Ordering::SeqCst);
}

/// Whether [`set_reference_mode`] routing is active.
pub fn reference_mode() -> bool {
    REFERENCE_MODE.load(Ordering::SeqCst)
}

/// Strided read-only view of a rank-2 operand. A transpose is expressed
/// by swapping `rs`/`cs`, so one gemm core serves NN, TN and NT.
#[derive(Clone, Copy)]
struct MatRef<'a> {
    data: &'a [f32],
    /// Element distance between consecutive rows.
    rs: usize,
    /// Element distance between consecutive columns.
    cs: usize,
}

impl MatRef<'_> {
    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }
}

thread_local! {
    /// Packed-B scratch, reused across gemm calls on the same thread so
    /// steady-state training steps do not reallocate it.
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _k, n) = dims_nn(a, b);
    let mut c = Tensor::zeros([m, n]);
    matmul_into(a, b, &mut c);
    c
}

/// `C = A·B` writing into a preallocated `C[m,n]` (contents overwritten).
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    matmul_into_with(a, b, c, Par::Auto);
}

/// [`matmul_into`] with explicit parallelism control.
pub fn matmul_into_with(a: &Tensor, b: &Tensor, c: &mut Tensor, par: Par) {
    let (m, k, n) = dims_nn(a, b);
    assert_eq!(c.shape().dims(), &[m, n], "output shape mismatch");
    if reference_mode() {
        reference::matmul_into(a, b, c);
        return;
    }
    let av = MatRef {
        data: a.as_slice(),
        rs: k,
        cs: 1,
    };
    let bv = MatRef {
        data: b.as_slice(),
        rs: n,
        cs: 1,
    };
    gemm(m, n, k, av, bv, c.as_mut_slice(), par, MATMUL_NN_PAR_MACS);
}

/// `C[k,n] = Aᵀ[k,m] · B[m,n]` where `A` is `[m,k]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (_m, k) = dims2(a);
    let (_m2, n) = dims2(b);
    let mut c = Tensor::zeros([k, n]);
    matmul_tn_into(a, b, &mut c);
    c
}

/// `C = Aᵀ·B` writing into a preallocated `C[k,n]` (contents overwritten).
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    matmul_tn_into_with(a, b, c, Par::Auto);
}

/// [`matmul_tn_into`] with explicit parallelism control.
pub fn matmul_tn_into_with(a: &Tensor, b: &Tensor, c: &mut Tensor, par: Par) {
    let (m, k) = dims2(a);
    let (m2, n) = dims2(b);
    assert_eq!(m, m2, "matmul_tn inner dimension mismatch ({m} vs {m2})");
    assert_eq!(c.shape().dims(), &[k, n], "output shape mismatch");
    if reference_mode() {
        reference::matmul_tn_into(a, b, c);
        return;
    }
    // Effective operand Aᵀ is [k, m]: element (i, p) lives at A[p, i],
    // i.e. row stride 1, column stride k.
    let av = MatRef {
        data: a.as_slice(),
        rs: 1,
        cs: k,
    };
    let bv = MatRef {
        data: b.as_slice(),
        rs: n,
        cs: 1,
    };
    gemm(k, n, m, av, bv, c.as_mut_slice(), par, MATMUL_TN_PAR_MACS);
}

/// `C[m,k] = A[m,n] · Bᵀ[n,k]` where `B` is `[k,n]`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _n) = dims2(a);
    let (k, _n2) = dims2(b);
    let mut c = Tensor::zeros([m, k]);
    matmul_nt_into(a, b, &mut c);
    c
}

/// `C = A·Bᵀ` writing into a preallocated `C[m,k]` (contents overwritten).
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    matmul_nt_into_with(a, b, c, Par::Auto);
}

/// [`matmul_nt_into`] with explicit parallelism control.
pub fn matmul_nt_into_with(a: &Tensor, b: &Tensor, c: &mut Tensor, par: Par) {
    let (m, n) = dims2(a);
    let (k, n2) = dims2(b);
    assert_eq!(n, n2, "matmul_nt inner dimension mismatch ({n} vs {n2})");
    assert_eq!(c.shape().dims(), &[m, k], "output shape mismatch");
    if reference_mode() {
        reference::matmul_nt_into(a, b, c);
        return;
    }
    let av = MatRef {
        data: a.as_slice(),
        rs: n,
        cs: 1,
    };
    // Effective operand Bᵀ is [n, k]: element (p, j) lives at B[j, p].
    let bv = MatRef {
        data: b.as_slice(),
        rs: 1,
        cs: n,
    };
    gemm(m, k, n, av, bv, c.as_mut_slice(), par, MATMUL_NT_PAR_MACS);
}

/// Packed gemm core: `C[m,n] = A_eff[m,k] · B_eff[k,n]` with both
/// operands given as strided views. `C` is fully overwritten.
#[allow(clippy::too_many_arguments)]
fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    c: &mut [f32],
    par: Par,
    threshold: usize,
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    // Parallelize only when there are at least two row blocks to fan
    // out AND the work amortizes the per-call OS-thread spawn of the
    // vendored rayon (no persistent pool). The decision depends only on
    // the shape, so every rank in a distributed run takes the same path.
    let parallel = match par {
        Par::Auto => m * n * k >= threshold && m > MC,
        Par::Never => false,
        Par::Always => true,
    };
    PACK_B.with(|pb| {
        let mut pb = pb.borrow_mut();
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let first = pc == 0;
            for jc in (0..n).step_by(NC) {
                let nc = NC.min(n - jc);
                let need = nc.div_ceil(NR) * NR * kc;
                if pb.len() < need {
                    pb.resize(need, 0.0);
                }
                pack_b(&mut pb[..need], b, pc, kc, jc, nc);
                let bp = &pb[..need];
                if parallel {
                    c.par_chunks_mut(MC * n)
                        .enumerate()
                        .for_each(|(blk, rows)| {
                            gemm_block(
                                blk * MC,
                                rows.len() / n,
                                n,
                                kc,
                                pc,
                                jc,
                                nc,
                                a,
                                bp,
                                rows,
                                first,
                            );
                        });
                } else {
                    for (blk, rows) in c.chunks_mut(MC * n).enumerate() {
                        gemm_block(
                            blk * MC,
                            rows.len() / n,
                            n,
                            kc,
                            pc,
                            jc,
                            nc,
                            a,
                            bp,
                            rows,
                            first,
                        );
                    }
                }
            }
        }
    });
}

/// Compute one MC row-block of `C` against the packed B panels.
/// `c_rows` is the block's `mc` full rows of `C`; `first` selects store
/// vs accumulate (KC blocks after the first add into `C`).
#[allow(clippy::too_many_arguments)]
fn gemm_block(
    ic: usize,
    mc: usize,
    n: usize,
    kc: usize,
    pc: usize,
    jc: usize,
    nc: usize,
    a: MatRef<'_>,
    bp: &[f32],
    c_rows: &mut [f32],
    first: bool,
) {
    // One packed A panel ([kc × MR], zero-padded) lives on the stack.
    let mut ap = [0.0f32; KC * MR];
    for ir in (0..mc).step_by(MR) {
        let mr = MR.min(mc - ir);
        pack_a(&mut ap, a, ic + ir, mr, pc, kc);
        for (jp, bpanel) in bp.chunks_exact(kc * NR).enumerate() {
            let j0 = jc + jp * NR;
            let nr = NR.min(jc + nc - j0);
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(&ap, bpanel, kc, &mut acc);
            for (i, acc_row) in acc.iter().enumerate().take(mr) {
                let base = (ir + i) * n + j0;
                let row = &mut c_rows[base..base + nr];
                if first {
                    row.copy_from_slice(&acc_row[..nr]);
                } else {
                    for (cv, av) in row.iter_mut().zip(acc_row) {
                        *cv += av;
                    }
                }
            }
        }
    }
}

/// Pack `mr` rows (zero-padding to MR) of the A view's KC block into
/// `ap` in panel-major order: `ap[p*MR + i] = A_eff[row0+i, pc+p]`.
fn pack_a(ap: &mut [f32; KC * MR], a: MatRef<'_>, row0: usize, mr: usize, pc: usize, kc: usize) {
    for p in 0..kc {
        let dst = &mut ap[p * MR..(p + 1) * MR];
        for (i, d) in dst.iter_mut().enumerate().take(mr) {
            *d = a.at(row0 + i, pc + p);
        }
        for d in dst.iter_mut().take(MR).skip(mr) {
            *d = 0.0;
        }
    }
}

/// Pack the B view's KC×NC block into NR-wide panels (zero-padded):
/// panel `jp` holds `bp[jp*kc*NR + p*NR + j] = B_eff[pc+p, jc+jp*NR+j]`.
fn pack_b(bp: &mut [f32], b: MatRef<'_>, pc: usize, kc: usize, jc: usize, nc: usize) {
    for (jp, panel) in bp.chunks_exact_mut(kc * NR).enumerate() {
        let j0 = jc + jp * NR;
        let nr = NR.min(jc + nc - j0);
        for p in 0..kc {
            let dst = &mut panel[p * NR..(p + 1) * NR];
            if b.cs == 1 {
                let src = (pc + p) * b.rs + j0;
                dst[..nr].copy_from_slice(&b.data[src..src + nr]);
            } else {
                for (j, d) in dst.iter_mut().enumerate().take(nr) {
                    *d = b.at(pc + p, j0 + j);
                }
            }
            for d in dst.iter_mut().take(NR).skip(nr) {
                *d = 0.0;
            }
        }
    }
}

/// Whether the AVX2+FMA microkernel can run on this host. Detected
/// once; the result is stable for the process lifetime, so kernel
/// dispatch is deterministic.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

/// MR×NR register microkernel: `acc = Apanel[kc×MR]ᵀ · Bpanel[kc×NR]`.
/// Both panels are contiguous and zero-padded, so the loop body is
/// branch-free. Dispatches to the AVX2+FMA variant when the host
/// supports it (rustc's baseline x86-64 target only autovectorizes the
/// portable loop to SSE2 width, which caps it near the old scalar
/// kernels' throughput).
#[inline(always)]
fn microkernel(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: avx2_available() verified the avx2 and fma features.
        unsafe { microkernel_avx2(ap, bp, kc, acc) };
        return;
    }
    microkernel_portable(ap, bp, kc, acc);
}

/// Portable fallback microkernel (autovectorizes at the target's
/// baseline SIMD width).
#[inline(always)]
fn microkernel_portable(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    for p in 0..kc {
        let arow: &[f32; MR] = ap[p * MR..(p + 1) * MR].try_into().unwrap();
        let brow: &[f32; NR] = bp[p * NR..(p + 1) * NR].try_into().unwrap();
        for (i, acc_row) in acc.iter_mut().enumerate() {
            let ai = arow[i];
            for (av, bv) in acc_row.iter_mut().zip(brow) {
                *av += ai * bv;
            }
        }
    }
}

/// AVX2+FMA microkernel: the 6×16 accumulator tile is 12 ymm registers,
/// leaving two for the B panel row and one for the A broadcast.
///
/// # Safety
/// Caller must ensure the CPU supports `avx2` and `fma`.
// SAFETY: unsafe only because of #[target_feature] — the sole caller is
// gated on avx2_available(). All pointer arithmetic stays in bounds: the
// debug_assert'd panel lengths bound `p * NR + 8 + 8 <= bp.len()` and
// `p * MR + i < ap.len()`, and each acc row is NR = 16 floats, covering
// the two 8-lane stores.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_avx2(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut c = [[_mm256_setzero_ps(); 2]; MR];
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(bp.as_ptr().add(p * NR));
        let b1 = _mm256_loadu_ps(bp.as_ptr().add(p * NR + 8));
        for (i, ci) in c.iter_mut().enumerate() {
            let a = _mm256_broadcast_ss(&ap[p * MR + i]);
            ci[0] = _mm256_fmadd_ps(a, b0, ci[0]);
            ci[1] = _mm256_fmadd_ps(a, b1, ci[1]);
        }
    }
    for (row, ci) in acc.iter_mut().zip(&c) {
        _mm256_storeu_ps(row.as_mut_ptr(), ci[0]);
        _mm256_storeu_ps(row.as_mut_ptr().add(8), ci[1]);
    }
}

/// Transpose of a rank-2 tensor (materialized copy), 16×16 blocked so
/// both the read and the write stream touch whole cache lines per tile.
pub fn transpose(a: &Tensor) -> Tensor {
    const TB: usize = 16;
    let (m, n) = dims2(a);
    let mut out = Tensor::zeros([n, m]);
    let src = a.as_slice();
    let dst = out.as_mut_slice();
    for ib in (0..m).step_by(TB) {
        let im = (ib + TB).min(m);
        for jb in (0..n).step_by(TB) {
            let jm = (jb + TB).min(n);
            for i in ib..im {
                for j in jb..jm {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
    }
    out
}

pub(crate) fn dims2(t: &Tensor) -> (usize, usize) {
    assert_eq!(t.shape().ndim(), 2, "matmul operands must be rank-2");
    (t.shape().dim(0), t.shape().dim(1))
}

pub(crate) fn dims_nn(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    let (m, k) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2, "matmul inner dimension mismatch ({k} vs {k2})");
    (m, k, n)
}

/// Pre-rewrite scalar kernels, kept verbatim as the proptest oracle and
/// the `kernel_bench --reference` baseline. They retain the original
/// single `PAR_FLOP_THRESHOLD` row-parallel dispatch so baseline
/// numbers reflect what the repo actually shipped before the packed
/// rewrite.
pub mod reference {
    use super::{dims2, dims_nn};
    use crate::ops::dot_slice;
    use crate::tensor::Tensor;
    use rayon::prelude::*;

    /// The old single global dispatch threshold (MACs).
    pub const PAR_FLOP_THRESHOLD: usize = 1 << 18;

    /// Naive `C = A·B` (ikj scalar loop).
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, _k, n) = dims_nn(a, b);
        let mut c = Tensor::zeros([m, n]);
        matmul_into(a, b, &mut c);
        c
    }

    /// Naive `C = A·B` into a preallocated output.
    pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
        let (m, k, n) = dims_nn(a, b);
        assert_eq!(c.shape().dims(), &[m, n], "output shape mismatch");
        let (a, b) = (a.as_slice(), b.as_slice());
        let kernel = |row_i: usize, c_row: &mut [f32]| {
            c_row.fill(0.0);
            let a_row = &a[row_i * k..(row_i + 1) * k];
            for (p, &aval) in a_row.iter().enumerate() {
                if aval == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aval * bv;
                }
            }
        };
        if m * n * k >= PAR_FLOP_THRESHOLD && m > 1 {
            c.as_mut_slice()
                .par_chunks_exact_mut(n)
                .enumerate()
                .for_each(|(i, row)| kernel(i, row));
        } else {
            for (i, row) in c.as_mut_slice().chunks_exact_mut(n).enumerate() {
                kernel(i, row);
            }
        }
    }

    /// Naive `C = Aᵀ·B` (column-strided reads of A).
    pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
        let (_m, k) = dims2(a);
        let (_m2, n) = dims2(b);
        let mut c = Tensor::zeros([k, n]);
        matmul_tn_into(a, b, &mut c);
        c
    }

    /// Naive `C = Aᵀ·B` into a preallocated output.
    pub fn matmul_tn_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
        let (m, k) = dims2(a);
        let (m2, n) = dims2(b);
        assert_eq!(m, m2, "matmul_tn inner dimension mismatch ({m} vs {m2})");
        assert_eq!(c.shape().dims(), &[k, n], "output shape mismatch");
        let (a, b) = (a.as_slice(), b.as_slice());
        let kernel = |row_p: usize, c_row: &mut [f32]| {
            c_row.fill(0.0);
            for i in 0..m {
                let aval = a[i * k + row_p];
                if aval == 0.0 {
                    continue;
                }
                let b_row = &b[i * n..(i + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aval * bv;
                }
            }
        };
        if m * n * k >= PAR_FLOP_THRESHOLD && k > 1 {
            c.as_mut_slice()
                .par_chunks_exact_mut(n)
                .enumerate()
                .for_each(|(p, row)| kernel(p, row));
        } else {
            for (p, row) in c.as_mut_slice().chunks_exact_mut(n).enumerate() {
                kernel(p, row);
            }
        }
    }

    /// Naive `C = A·Bᵀ` (row-dot-row).
    pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, _n) = dims2(a);
        let (k, _n2) = dims2(b);
        let mut c = Tensor::zeros([m, k]);
        matmul_nt_into(a, b, &mut c);
        c
    }

    /// Naive `C = A·Bᵀ` into a preallocated output.
    pub fn matmul_nt_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
        let (m, n) = dims2(a);
        let (k, n2) = dims2(b);
        assert_eq!(n, n2, "matmul_nt inner dimension mismatch ({n} vs {n2})");
        assert_eq!(c.shape().dims(), &[m, k], "output shape mismatch");
        let (a, b) = (a.as_slice(), b.as_slice());
        let kernel = |row_i: usize, c_row: &mut [f32]| {
            let a_row = &a[row_i * n..(row_i + 1) * n];
            for (j, cv) in c_row.iter_mut().enumerate() {
                *cv = dot_slice(a_row, &b[j * n..(j + 1) * n]);
            }
        };
        if m * n * k >= PAR_FLOP_THRESHOLD && m > 1 {
            c.as_mut_slice()
                .par_chunks_exact_mut(k)
                .enumerate()
                .for_each(|(i, row)| kernel(i, row));
        } else {
            for (i, row) in c.as_mut_slice().chunks_exact_mut(k).enumerate() {
                kernel(i, row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), [rows, cols])
    }

    #[test]
    fn matmul_2x2_known() {
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t2(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(matmul(&a, &b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t2(2, 3, &[1.0, 0.0, 2.0, 0.0, 1.0, 1.0]);
        let b = t2(3, 1, &[1.0, 2.0, 3.0]);
        assert_eq!(matmul(&a, &b).as_slice(), &[7.0, 5.0]);
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = t2(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let via_kernel = matmul_tn(&a, &b);
        let via_transpose = matmul(&transpose(&a), &b);
        assert_eq!(via_kernel.as_slice(), via_transpose.as_slice());
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(
            4,
            3,
            &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0],
        );
        let via_kernel = matmul_nt(&a, &b);
        let via_transpose = matmul(&a, &transpose(&b));
        assert_eq!(via_kernel.as_slice(), via_transpose.as_slice());
    }

    #[test]
    fn transpose_involution() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(transpose(&transpose(&a)).as_slice(), a.as_slice());
    }

    #[test]
    fn blocked_transpose_matches_naive_on_odd_shape() {
        // 33×17 straddles the 16×16 tile in both dimensions.
        let (m, n) = (33, 17);
        let a = Tensor::from_vec((0..m * n).map(|i| i as f32).collect(), [m, n]);
        let t = transpose(&a);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(t.at(&[j, i]), a.at(&[i, j]));
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = t2(3, 3, &[2.0, 0.0, 1.0, 0.0, 3.0, 0.0, 1.0, 0.0, 4.0]);
        let id = {
            let mut i = Tensor::zeros([3, 3]);
            for d in 0..3 {
                *i.at_mut(&[d, d]) = 1.0;
            }
            i
        };
        assert_eq!(matmul(&a, &id).as_slice(), a.as_slice());
        assert_eq!(matmul(&id, &a).as_slice(), a.as_slice());
    }

    #[test]
    fn large_matmul_parallel_path_matches_serial() {
        // Force both dispatch paths and compare against the naive
        // triple loop; the packed kernel must agree exactly with itself
        // across thread counts and closely with the scalar reference.
        let m = 70;
        let k = 70;
        let n = 70;
        let a = Tensor::from_vec(
            (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect(),
            [m, k],
        );
        let b = Tensor::from_vec((0..k * n).map(|i| ((i % 7) as f32) - 3.0).collect(), [k, n]);
        let c = matmul(&a, &b);
        let mut c_par = Tensor::zeros([m, n]);
        matmul_into_with(&a, &b, &mut c_par, Par::Always);
        assert_eq!(c.as_slice(), c_par.as_slice(), "serial vs parallel");
        for i in (0..m).step_by(17) {
            for j in (0..n).step_by(23) {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(&[i, p]) * b.at(&[p, j]);
                }
                assert!((c.at(&[i, j]) - s).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn packed_matches_reference_on_tile_straddling_shapes() {
        // 70 = MR·17 + 2 and NR·4 + 6: every edge path (partial MR row
        // panel, partial NR column panel) is exercised.
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 33),
            (5, 70, 3),
            (70, 70, 70),
            (65, 257, 17),
        ] {
            let a = Tensor::from_vec(
                (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect(),
                [m, k],
            );
            let b = Tensor::from_vec((0..k * n).map(|i| ((i % 7) as f32) - 3.0).collect(), [k, n]);
            let c = matmul(&a, &b);
            let r = reference::matmul(&a, &b);
            assert_eq!(c.as_slice(), r.as_slice(), "nn {m}x{k}x{n}");
            // TN contracts over rows: B here must be [m, n].
            let b2 = Tensor::from_vec((0..m * n).map(|i| ((i % 5) as f32) - 2.0).collect(), [m, n]);
            let ct = matmul_tn(&a, &b2);
            let rt = reference::matmul_tn(&a, &b2);
            for (x, y) in ct.as_slice().iter().zip(rt.as_slice()) {
                assert!((x - y).abs() <= 1e-3 * y.abs().max(1.0), "tn {m}x{k}x{n}");
            }
            // NT contracts over columns: B here must be [n2, k].
            let b3 = Tensor::from_vec((0..n * k).map(|i| ((i % 9) as f32) - 4.0).collect(), [n, k]);
            let cn = matmul_nt(&a, &b3);
            let rn = reference::matmul_nt(&a, &b3);
            for (x, y) in cn.as_slice().iter().zip(rn.as_slice()) {
                assert!((x - y).abs() <= 1e-3 * y.abs().max(1.0), "nt {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn reference_mode_routes_to_naive_kernels() {
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t2(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        set_reference_mode(true);
        let c = matmul(&a, &b);
        set_reference_mode(false);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn zero_inner_dimension_yields_zero_matrix() {
        let a = Tensor::zeros([3, 0]);
        let b = Tensor::zeros([0, 4]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape().dims(), &[3, 4]);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic]
    fn inner_dim_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
