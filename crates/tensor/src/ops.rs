//! Elementwise arithmetic and BLAS-1 style vector operations.
//!
//! Every operation that appears in a training hot loop has an in-place
//! (`*_assign`) or destination-passing (`*_into`) form so per-iteration
//! allocation can be avoided with workhorse buffers.

use crate::tensor::Tensor;

/// `out = a + b` (same shapes).
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = a.clone();
    add_assign(&mut out, b);
    out
}

/// `a += b` (same shapes).
pub fn add_assign(a: &mut Tensor, b: &Tensor) {
    assert!(a.shape().same(b.shape()), "add shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// `out = a - b` (same shapes).
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = a.clone();
    sub_assign(&mut out, b);
    out
}

/// `a -= b` (same shapes).
pub fn sub_assign(a: &mut Tensor, b: &Tensor) {
    assert!(a.shape().same(b.shape()), "sub shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x -= y;
    }
}

/// Hadamard product `out = a ⊙ b` (same shapes).
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = a.clone();
    mul_assign(&mut out, b);
    out
}

/// `a ⊙= b` (same shapes).
pub fn mul_assign(a: &mut Tensor, b: &Tensor) {
    assert!(a.shape().same(b.shape()), "mul shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
}

/// `a *= s` for a scalar `s`.
pub fn scale_assign(a: &mut Tensor, s: f32) {
    for x in a.as_mut_slice() {
        *x *= s;
    }
}

/// `out = a * s` for a scalar `s`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    let mut out = a.clone();
    scale_assign(&mut out, s);
    out
}

/// `y += alpha * x` over flat storage (shapes must match).
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) {
    assert!(x.shape().same(y.shape()), "axpy shape mismatch");
    axpy_slice(alpha, x.as_slice(), y.as_mut_slice());
}

/// `y += alpha * x` over raw slices (lengths must match).
///
/// This is the single kernel the optimizers and aggregation paths reduce
/// to, so it is written to auto-vectorize.
#[inline]
pub fn axpy_slice(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product over flat storage.
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.numel(), b.numel(), "dot length mismatch");
    dot_slice(a.as_slice(), b.as_slice())
}

/// Dot product over raw slices.
#[inline]
pub fn dot_slice(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four-way unrolled accumulation: keeps independent dependency chains
    // so the compiler can vectorize without -ffast-math.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Apply `f` elementwise, returning a new tensor.
pub fn map(a: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let mut out = a.clone();
    map_assign(&mut out, f);
    out
}

/// Apply `f` elementwise in place.
pub fn map_assign(a: &mut Tensor, f: impl Fn(f32) -> f32) {
    for x in a.as_mut_slice() {
        *x = f(*x);
    }
}

/// Broadcast-add a length-`cols` bias vector to every row of a rank-2
/// tensor `[rows, cols]`.
pub fn add_row_bias(a: &mut Tensor, bias: &Tensor) {
    assert_eq!(a.shape().ndim(), 2, "add_row_bias needs rank-2 input");
    let cols = a.shape().dim(1);
    assert_eq!(bias.numel(), cols, "bias length must equal columns");
    let b = bias.as_slice();
    for row in a.as_mut_slice().chunks_exact_mut(cols) {
        for (x, y) in row.iter_mut().zip(b) {
            *x += y;
        }
    }
}

/// Clamp every element into `[lo, hi]`.
pub fn clamp_assign(a: &mut Tensor, lo: f32, hi: f32) {
    for x in a.as_mut_slice() {
        *x = x.clamp(lo, hi);
    }
}

/// Linear interpolation `a = (1-t)*a + t*b`, used by EWMA-style smoothing
/// of parameter vectors.
pub fn lerp_assign(a: &mut Tensor, b: &Tensor, t: f32) {
    assert!(a.shape().same(b.shape()), "lerp shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x = (1.0 - t) * *x + t * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), [v.len()])
    }

    #[test]
    fn add_sub_mul_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[0.5, 0.5, 0.5]);
        assert_eq!(add(&a, &b).as_slice(), &[1.5, 2.5, 3.5]);
        assert_eq!(sub(&a, &b).as_slice(), &[0.5, 1.5, 2.5]);
        assert_eq!(mul(&a, &b).as_slice(), &[0.5, 1.0, 1.5]);
    }

    #[test]
    fn axpy_matches_manual() {
        let x = t(&[1.0, -1.0, 2.0]);
        let mut y = t(&[0.0, 1.0, 1.0]);
        axpy(0.5, &x, &mut y);
        assert_eq!(y.as_slice(), &[0.5, 0.5, 2.0]);
    }

    #[test]
    fn dot_handles_remainders() {
        // length 7 exercises both the unrolled body and the tail loop
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let b = t(&[1.0; 7]);
        assert_eq!(dot(&a, &b), 28.0);
    }

    #[test]
    fn row_bias_broadcasts() {
        let mut a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], [2, 2]);
        add_row_bias(&mut a, &t(&[10.0, 20.0]));
        assert_eq!(a.as_slice(), &[10.0, 20.0, 11.0, 21.0]);
    }

    #[test]
    fn lerp_endpoints() {
        let b = t(&[2.0, 4.0]);
        let mut a = t(&[0.0, 0.0]);
        lerp_assign(&mut a, &b, 1.0);
        assert_eq!(a.as_slice(), b.as_slice());
        let mut a2 = t(&[1.0, 1.0]);
        lerp_assign(&mut a2, &b, 0.0);
        assert_eq!(a2.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn clamp_bounds() {
        let mut a = t(&[-2.0, 0.5, 9.0]);
        clamp_assign(&mut a, -1.0, 1.0);
        assert_eq!(a.as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let mut a = Tensor::zeros([2]);
        add_assign(&mut a, &Tensor::zeros([3]));
    }
}
