//! im2col / col2im lowering for 2-D convolution.
//!
//! Convolutions in `selsync-nn` are computed as matrix products over the
//! im2col expansion, the same lowering the reference frameworks use on
//! CPU. The column matrix has one row per output pixel and one column per
//! receptive-field element.
//!
//! Both directions have `*_into` variants writing into caller-provided
//! buffers (the workspace path allocates nothing in steady state) and
//! fan the batch dimension out over threads once the expansion is large
//! enough to amortize the spawn cost. Images are independent, so the
//! parallel and serial paths are bit-identical by construction.

use crate::matmul::reference_mode;
use crate::tensor::Tensor;
use crate::{COL2IM_PAR_ELEMS, IM2COL_PAR_ELEMS};
use rayon::prelude::*;

/// Geometry of a conv / pooling window sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub in_ch: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output height after the sweep.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k_h) / self.stride + 1
    }

    /// Output width after the sweep.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k_w) / self.stride + 1
    }

    /// Number of columns in the im2col matrix (receptive-field size).
    pub fn patch_len(&self) -> usize {
        self.in_ch * self.k_h * self.k_w
    }
}

/// Expand input `[n, c, h, w]` into columns `[n*out_h*out_w, c*k_h*k_w]`.
pub fn im2col(input: &Tensor, g: &ConvGeom) -> Tensor {
    let n = input.shape().dim(0);
    let mut cols = Tensor::zeros([n * g.out_h() * g.out_w(), g.patch_len()]);
    im2col_into(input, g, &mut cols);
    cols
}

/// [`im2col`] writing into a preallocated `[n*out_h*out_w, c*k_h*k_w]`
/// output (contents overwritten).
pub fn im2col_into(input: &Tensor, g: &ConvGeom, cols: &mut Tensor) {
    let dims = input.shape().dims();
    assert_eq!(dims.len(), 4, "im2col expects [n,c,h,w]");
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, g.in_ch, "channel mismatch");
    assert_eq!(h, g.in_h, "height mismatch");
    assert_eq!(w, g.in_w, "width mismatch");
    let (oh, ow, plen) = (g.out_h(), g.out_w(), g.patch_len());
    assert_eq!(
        cols.shape().dims(),
        &[n * oh * ow, plen],
        "im2col output shape mismatch"
    );
    let src = input.as_slice();
    let dst = cols.as_mut_slice();
    let img_len = c * h * w;
    let rows_len = oh * ow * plen;
    if n == 0 || rows_len == 0 {
        return;
    }
    if !reference_mode() && n > 1 && n * rows_len >= IM2COL_PAR_ELEMS {
        dst.par_chunks_exact_mut(rows_len)
            .enumerate()
            .for_each(|(b, rows)| {
                im2col_image(&src[b * img_len..(b + 1) * img_len], rows, g);
            });
    } else {
        for (b, rows) in dst.chunks_exact_mut(rows_len).enumerate() {
            im2col_image(&src[b * img_len..(b + 1) * img_len], rows, g);
        }
    }
}

/// Expand one `[c, h, w]` image into its `out_h*out_w` patch rows.
fn im2col_image(img: &[f32], rows: &mut [f32], g: &ConvGeom) {
    let (c, h, w) = (g.in_ch, g.in_h, g.in_w);
    let (oh, ow, plen) = (g.out_h(), g.out_w(), g.patch_len());
    let mut row = 0usize;
    for oy in 0..oh {
        for ox in 0..ow {
            let out_row = &mut rows[row * plen..(row + 1) * plen];
            let mut col = 0usize;
            for ch in 0..c {
                let plane = &img[ch * h * w..(ch + 1) * h * w];
                for ky in 0..g.k_h {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for kx in 0..g.k_w {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        out_row[col] =
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                plane[iy as usize * w + ix as usize]
                            } else {
                                0.0
                            };
                        col += 1;
                    }
                }
            }
            row += 1;
        }
    }
}

/// Scatter column gradients `[n*out_h*out_w, c*k_h*k_w]` back onto the
/// input gradient `[n, c, h, w]` (the adjoint of [`im2col`]).
pub fn col2im(cols: &Tensor, n: usize, g: &ConvGeom) -> Tensor {
    let mut out = Tensor::zeros([n, g.in_ch, g.in_h, g.in_w]);
    col2im_into(cols, n, g, &mut out);
    out
}

/// [`col2im`] writing into a preallocated `[n, c, h, w]` output
/// (contents overwritten, not accumulated into).
pub fn col2im_into(cols: &Tensor, n: usize, g: &ConvGeom, out: &mut Tensor) {
    let (oh, ow, plen) = (g.out_h(), g.out_w(), g.patch_len());
    assert_eq!(
        cols.shape().dims(),
        &[n * oh * ow, plen],
        "col2im input shape mismatch"
    );
    let (c, h, w) = (g.in_ch, g.in_h, g.in_w);
    assert_eq!(
        out.shape().dims(),
        &[n, c, h, w],
        "col2im output shape mismatch"
    );
    let src = cols.as_slice();
    let dst = out.as_mut_slice();
    let img_len = c * h * w;
    let rows_len = oh * ow * plen;
    if n == 0 || img_len == 0 {
        return;
    }
    if !reference_mode() && n > 1 && n * rows_len >= COL2IM_PAR_ELEMS {
        dst.par_chunks_exact_mut(img_len)
            .enumerate()
            .for_each(|(b, img)| {
                col2im_image(&src[b * rows_len..(b + 1) * rows_len], img, g);
            });
    } else {
        for (b, img) in dst.chunks_exact_mut(img_len).enumerate() {
            col2im_image(&src[b * rows_len..(b + 1) * rows_len], img, g);
        }
    }
}

/// Scatter one image's patch-row gradients onto its `[c, h, w]` plane.
fn col2im_image(rows: &[f32], img: &mut [f32], g: &ConvGeom) {
    let (_c, h, w) = (g.in_ch, g.in_h, g.in_w);
    let (oh, ow, plen) = (g.out_h(), g.out_w(), g.patch_len());
    img.fill(0.0);
    let mut row = 0usize;
    for oy in 0..oh {
        for ox in 0..ow {
            let in_row = &rows[row * plen..(row + 1) * plen];
            let mut col = 0usize;
            for ch in 0..g.in_ch {
                let plane_off = ch * h * w;
                for ky in 0..g.k_h {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for kx in 0..g.k_w {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            img[plane_off + iy as usize * w + ix as usize] += in_row[col];
                        }
                        col += 1;
                    }
                }
            }
            row += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c: usize, h: usize, w: usize, k: usize, stride: usize, pad: usize) -> ConvGeom {
        ConvGeom {
            in_ch: c,
            in_h: h,
            in_w: w,
            k_h: k,
            k_w: k,
            stride,
            pad,
        }
    }

    #[test]
    fn output_geometry() {
        let g = geom(3, 8, 8, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (8, 8), "same-padding conv");
        let g2 = geom(3, 8, 8, 2, 2, 0);
        assert_eq!((g2.out_h(), g2.out_w()), (4, 4), "stride-2 downsample");
    }

    #[test]
    fn im2col_identity_kernel() {
        // With a 1x1 kernel, stride 1, no padding, im2col is a pure
        // layout change: row (b, y, x) holds the c channel values.
        let g = geom(2, 2, 2, 1, 1, 0);
        let input = Tensor::from_vec((0..8).map(|i| i as f32).collect(), [1, 2, 2, 2]);
        let cols = im2col(&input, &g);
        assert_eq!(cols.shape().dims(), &[4, 2]);
        // pixel (0,0): channel0=0, channel1=4
        assert_eq!(cols.row(0), &[0.0, 4.0]);
        // pixel (1,1): channel0=3, channel1=7
        assert_eq!(cols.row(3), &[3.0, 7.0]);
    }

    #[test]
    fn im2col_zero_pads_border() {
        let g = geom(1, 2, 2, 3, 1, 1);
        let input = Tensor::ones([1, 1, 2, 2]);
        let cols = im2col(&input, &g);
        // top-left output pixel: only the bottom-right 2x2 of the kernel
        // overlaps the image → exactly 4 ones.
        let first: f32 = cols.row(0).iter().sum();
        assert_eq!(first, 4.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for the scatter/gather pair.
        use crate::ops::dot;
        let g = geom(2, 4, 4, 3, 1, 1);
        let x = Tensor::from_vec(
            (0..32).map(|i| (i as f32 * 0.37).sin()).collect(),
            [1, 2, 4, 4],
        );
        let cols = im2col(&x, &g);
        let y = Tensor::from_vec(
            (0..cols.numel()).map(|i| (i as f32 * 0.11).cos()).collect(),
            cols.shape().clone(),
        );
        let lhs = dot(&cols, &y);
        let back = col2im(&y, 1, &g);
        let rhs = dot(&x, &back);
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // Overlapping 2x2 windows with stride 1 on a 3x3 image: the center
        // pixel is visited by all four windows.
        let g = geom(1, 3, 3, 2, 1, 0);
        let cols = Tensor::ones([4, 4]);
        let img = col2im(&cols, 1, &g);
        assert_eq!(img.at(&[0, 0, 1, 1]), 4.0);
        assert_eq!(img.at(&[0, 0, 0, 0]), 1.0);
    }

    #[test]
    fn batched_matches_per_image() {
        // A 2-image batch must expand to exactly the two single-image
        // expansions stacked — the invariant the parallel split relies on.
        let g = geom(2, 5, 5, 3, 1, 1);
        let batch = Tensor::from_vec(
            (0..2 * 2 * 5 * 5)
                .map(|i| (i as f32 * 0.13).sin())
                .collect(),
            [2, 2, 5, 5],
        );
        let both = im2col(&batch, &g);
        for b in 0..2 {
            let one = Tensor::from_vec(
                batch.as_slice()[b * 50..(b + 1) * 50].to_vec(),
                [1, 2, 5, 5],
            );
            let solo = im2col(&one, &g);
            let rows = g.out_h() * g.out_w();
            for r in 0..rows {
                assert_eq!(both.row(b * rows + r), solo.row(r), "image {b} row {r}");
            }
        }
    }

    #[test]
    fn col2im_into_overwrites_stale_contents() {
        let g = geom(1, 3, 3, 2, 1, 0);
        let cols = Tensor::ones([4, 4]);
        let mut out = Tensor::full([1, 1, 3, 3], 99.0);
        col2im_into(&cols, 1, &g, &mut out);
        assert_eq!(out.at(&[0, 0, 1, 1]), 4.0);
        assert_eq!(out.at(&[0, 0, 0, 0]), 1.0);
    }
}
