//! # selsync-tensor
//!
//! A small, dependency-light dense tensor library purpose-built for the
//! SelSync reproduction. It provides the numerical substrate the neural
//! network crate (`selsync-nn`) is built on: contiguous row-major `f32`
//! tensors, elementwise arithmetic, reductions, blocked (and optionally
//! rayon-parallel) matrix multiplication, and im2col-based convolution
//! helpers.
//!
//! Design notes (per the hpc-parallel guides):
//! * Hot loops never allocate: every op has an in-place or `*_into` variant
//!   writing into a caller-provided workhorse buffer.
//! * Parallelism lives only at the tensor-op level (rayon), so the
//!   distributed-training worker threads above remain plain `std::thread`s.
//! * All randomness is seeded (`StdRng`) so experiments are reproducible.

pub mod conv;
pub mod init;
pub mod matmul;
pub mod ops;
pub mod reduce;
pub mod shape;
pub mod tensor;

pub use matmul::{reference_mode, set_reference_mode, Par};
pub use shape::Shape;
pub use tensor::Tensor;

// Per-kernel parallel dispatch thresholds. The vendored rayon has no
// persistent pool — every parallel region spawns scoped OS threads
// (tens of microseconds) — so each kernel crosses over only once the
// serial work clearly dominates the spawn cost. The packed matmul
// kernels sustain several GFLOP/s per core, pushing their crossover far
// above the old scalar kernels' single `PAR_FLOP_THRESHOLD = 1 << 18`.

/// `C = A·B` multiply-accumulate count before row-blocks go parallel.
pub const MATMUL_NN_PAR_MACS: usize = 1 << 21;
/// `C = Aᵀ·B` crossover. Lower than NN: the strided pack of Aᵀ makes
/// the serial path relatively more expensive per MAC, so threads pay
/// off earlier.
pub const MATMUL_TN_PAR_MACS: usize = 1 << 20;
/// `C = A·Bᵀ` crossover. Bᵀ packs with unit-stride reads, same cost
/// profile as NN.
pub const MATMUL_NT_PAR_MACS: usize = 1 << 21;
/// Total patch elements before `im2col` fans images out over threads.
/// Pure data movement (~bytes, not MACs), so the crossover is lower.
pub const IM2COL_PAR_ELEMS: usize = 1 << 20;
/// Total patch elements before `col2im` fans images out over threads.
pub const COL2IM_PAR_ELEMS: usize = 1 << 20;
