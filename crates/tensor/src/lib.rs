//! # selsync-tensor
//!
//! A small, dependency-light dense tensor library purpose-built for the
//! SelSync reproduction. It provides the numerical substrate the neural
//! network crate (`selsync-nn`) is built on: contiguous row-major `f32`
//! tensors, elementwise arithmetic, reductions, blocked (and optionally
//! rayon-parallel) matrix multiplication, and im2col-based convolution
//! helpers.
//!
//! Design notes (per the hpc-parallel guides):
//! * Hot loops never allocate: every op has an in-place or `*_into` variant
//!   writing into a caller-provided workhorse buffer.
//! * Parallelism lives only at the tensor-op level (rayon), so the
//!   distributed-training worker threads above remain plain `std::thread`s.
//! * All randomness is seeded (`StdRng`) so experiments are reproducible.

pub mod conv;
pub mod init;
pub mod matmul;
pub mod ops;
pub mod reduce;
pub mod shape;
pub mod tensor;

pub use shape::Shape;
pub use tensor::Tensor;

/// Minimum number of multiply-accumulate operations before a matmul is
/// dispatched onto the rayon pool. Below this the sequential kernel is
/// faster and avoids contending with the cluster's worker threads.
pub const PAR_FLOP_THRESHOLD: usize = 1 << 18;
