//! Property-based equivalence of the packed/tiled GEMM kernels against
//! the naive reference kernels, over irregular shapes — degenerate 1×N
//! strips, sizes straddling the MR/NR/KC tile boundaries, and anything
//! in between — plus the determinism property the distributed protocol
//! relies on: the serial and parallel code paths are bit-identical.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_tensor::matmul::{
    self, matmul_into_with, matmul_nt_into_with, matmul_tn_into_with, reference,
};
use selsync_tensor::{init, Par, Tensor};

fn randt(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    init::randn(dims, 1.0, &mut rng)
}

/// Relative closeness: the packed kernels reassociate the k-sum
/// (KC blocking + FMA), so equality holds only up to rounding.
fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape().same(b.shape())
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * y.abs().max(1.0))
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_nn_matches_reference(m in 1usize..=97, k in 1usize..=97, n in 1usize..=97, seed in 0u64..1000) {
        let a = randt(&[m, k], seed);
        let b = randt(&[k, n], seed + 1);
        let packed = matmul::matmul(&a, &b);
        let naive = reference::matmul(&a, &b);
        prop_assert!(close(&packed, &naive, 1e-3));
    }

    #[test]
    fn packed_tn_matches_reference(m in 1usize..=97, k in 1usize..=97, n in 1usize..=97, seed in 0u64..1000) {
        let a = randt(&[m, k], seed);
        let b = randt(&[m, n], seed + 2);
        let packed = matmul::matmul_tn(&a, &b);
        let naive = reference::matmul_tn(&a, &b);
        prop_assert!(close(&packed, &naive, 1e-3));
    }

    #[test]
    fn packed_nt_matches_reference(m in 1usize..=97, k in 1usize..=97, n in 1usize..=97, seed in 0u64..1000) {
        let a = randt(&[m, n], seed);
        let b = randt(&[k, n], seed + 3);
        let packed = matmul::matmul_nt(&a, &b);
        let naive = reference::matmul_nt(&a, &b);
        prop_assert!(close(&packed, &naive, 1e-3));
    }

    /// Serial and parallel paths must be BIT-identical, not just close:
    /// the distributed determinism guarantees (same-seed single-process
    /// vs multi-process runs) depend on matmul results never varying
    /// with the parallelism decision.
    #[test]
    fn serial_and_parallel_are_bit_identical(m in 1usize..=97, k in 1usize..=97, n in 1usize..=97, seed in 0u64..1000) {
        let a = randt(&[m, k], seed);
        let b_nn = randt(&[k, n], seed + 4);
        let mut serial = Tensor::zeros([m, n]);
        let mut par = Tensor::zeros([m, n]);
        matmul_into_with(&a, &b_nn, &mut serial, Par::Never);
        matmul_into_with(&a, &b_nn, &mut par, Par::Always);
        prop_assert_eq!(bits(&serial), bits(&par));

        let b_tn = randt(&[m, n], seed + 5);
        let mut serial = Tensor::zeros([k, n]);
        let mut par = Tensor::zeros([k, n]);
        matmul_tn_into_with(&a, &b_tn, &mut serial, Par::Never);
        matmul_tn_into_with(&a, &b_tn, &mut par, Par::Always);
        prop_assert_eq!(bits(&serial), bits(&par));

        let a_nt = randt(&[m, n], seed + 6);
        let b_nt = randt(&[k, n], seed + 7);
        let mut serial = Tensor::zeros([m, k]);
        let mut par = Tensor::zeros([m, k]);
        matmul_nt_into_with(&a_nt, &b_nt, &mut serial, Par::Never);
        matmul_nt_into_with(&a_nt, &b_nt, &mut par, Par::Always);
        prop_assert_eq!(bits(&serial), bits(&par));
    }
}

/// Deterministic sweep of the degenerate and tile-edge shapes the
/// random generator might miss: 1×N strips, exact tile multiples, and
/// one-off-the-tile sizes for MR=6 / NR=16 / KC=256.
#[test]
fn tile_boundary_shapes_match_reference() {
    let cases = [
        (1, 1, 1),
        (1, 7, 33),
        (6, 16, 16),   // exactly one microtile
        (7, 17, 17),   // one past the microtile
        (12, 256, 32), // exactly one KC block
        (13, 257, 31), // one past the KC block
        (5, 3, 97),
        (97, 1, 1),
    ];
    for (m, k, n) in cases {
        let a = randt(&[m, k], (m * 1000 + k * 10 + n) as u64);
        let b = randt(&[k, n], (m * 1000 + k * 10 + n) as u64 + 1);
        let packed = matmul::matmul(&a, &b);
        let naive = reference::matmul(&a, &b);
        assert!(
            close(&packed, &naive, 1e-3),
            "packed vs reference diverged at {m}x{k}x{n}"
        );
    }
}
