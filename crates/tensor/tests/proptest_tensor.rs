//! Property-based tests of the tensor algebra: the three matmul kernels
//! agree with explicit transposition, conv lowering is a linear adjoint
//! pair, and reductions obey their algebraic identities.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_tensor::conv::{col2im, im2col, ConvGeom};
use selsync_tensor::{init, matmul, ops, reduce, Tensor};

fn randt(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    init::randn(dims, 1.0, &mut rng)
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape().same(b.shape())
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * y.abs().max(1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_tn_agrees_with_transpose(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000) {
        let a = randt(&[m, k], seed);
        let b = randt(&[m, n], seed + 1);
        let kernel = matmul::matmul_tn(&a, &b);
        let explicit = matmul::matmul(&matmul::transpose(&a), &b);
        prop_assert!(close(&kernel, &explicit, 1e-4));
    }

    #[test]
    fn matmul_nt_agrees_with_transpose(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000) {
        let a = randt(&[m, n], seed);
        let b = randt(&[k, n], seed + 2);
        let kernel = matmul::matmul_nt(&a, &b);
        let explicit = matmul::matmul(&a, &matmul::transpose(&b));
        prop_assert!(close(&kernel, &explicit, 1e-4));
    }

    #[test]
    fn matmul_is_associative_enough(n in 1usize..6, seed in 0u64..500) {
        let a = randt(&[n, n], seed);
        let b = randt(&[n, n], seed + 3);
        let c = randt(&[n, n], seed + 4);
        let lhs = matmul::matmul(&matmul::matmul(&a, &b), &c);
        let rhs = matmul::matmul(&a, &matmul::matmul(&b, &c));
        prop_assert!(close(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn axpy_matches_scale_add(seed in 0u64..1000, alpha in -4.0f32..4.0, len in 1usize..50) {
        let x = randt(&[len], seed);
        let y = randt(&[len], seed + 5);
        let mut via_axpy = y.clone();
        ops::axpy(alpha, &x, &mut via_axpy);
        let via_ops = ops::add(&y, &ops::scale(&x, alpha));
        prop_assert!(close(&via_axpy, &via_ops, 1e-5));
    }

    #[test]
    fn conv_adjoint_identity(
        c in 1usize..3,
        hw in 3usize..7,
        k in 1usize..4,
        pad in 0usize..2,
        seed in 0u64..500,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let g = ConvGeom { in_ch: c, in_h: hw, in_w: hw, k_h: k, k_w: k, stride: 1, pad };
        let x = randt(&[1, c, hw, hw], seed);
        let cols = im2col(&x, &g);
        let y = randt(&[cols.shape().dim(0), cols.shape().dim(1)], seed + 6);
        // <im2col(x), y> == <x, col2im(y)>
        let lhs = ops::dot(&cols, &y);
        let rhs = ops::dot(&x, &col2im(&y, 1, &g));
        prop_assert!((lhs - rhs).abs() <= 1e-2 * lhs.abs().max(1.0));
    }

    #[test]
    fn sum_axis0_matches_total_sum(rows in 1usize..10, cols in 1usize..10, seed in 0u64..1000) {
        let t = randt(&[rows, cols], seed);
        let col_sums = reduce::sum_axis0(&t);
        prop_assert!((reduce::sum(&col_sums) - reduce::sum(&t)).abs() < 1e-3);
    }

    #[test]
    fn norm_triangle_inequality(len in 1usize..40, seed in 0u64..1000) {
        let a = randt(&[len], seed);
        let b = randt(&[len], seed + 7);
        let sum = ops::add(&a, &b);
        prop_assert!(reduce::norm(&sum) <= reduce::norm(&a) + reduce::norm(&b) + 1e-4);
    }

    #[test]
    fn argmax_rows_points_at_row_maximum(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let t = randt(&[rows, cols], seed);
        for (r, &am) in reduce::argmax_rows(&t).iter().enumerate() {
            let row = t.row(r);
            prop_assert!(row.iter().all(|&v| v <= row[am]));
        }
    }

    #[test]
    fn reshape_preserves_sum(rows in 1usize..12, cols in 1usize..12, seed in 0u64..1000) {
        let t = randt(&[rows, cols], seed);
        let s1 = reduce::sum(&t);
        let flat = t.reshape([rows * cols]);
        prop_assert_eq!(s1, reduce::sum(&flat));
    }
}
