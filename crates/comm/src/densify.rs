//! Server-side densification of compressed wire payloads.
//!
//! Workers may ship a gradient as [`Payload::SparseGrad`] (Top-k
//! index+value pairs), [`Payload::SignGrad`] (1-bit signs plus one
//! scale) or [`Payload::LowRank`] (PowerSGD factor pair) instead of a
//! dense [`Payload::Grads`] vector — fewer wire bytes for the same
//! round (DESIGN.md §12). The parameter server densifies each
//! contribution *at arrival* so the rest of the round pipeline
//! (sort-by-rank, classify, average) never sees a compressed payload
//! and therefore stays bit-identical to the dense path by
//! construction.
//!
//! The decode conventions mirror `selsync-core`'s compression module
//! exactly (the comm crate cannot depend on core, so they are restated
//! here and pinned by tests):
//! * sparse: unique flat indices, `out[i] = v`, zeros elsewhere;
//! * sign: little-endian bits within bytes, set bit ⇒ `+scale`,
//!   clear ⇒ `-scale`;
//! * low-rank: `M = P·Qᵀ` with `P: [rows, rank]`, `Q: [cols, rank]`,
//!   both row-major.
//!
//! Every structural lie a hostile peer could tell (index past `len`,
//! bit-buffer length mismatch, factor shape mismatch) is a
//! [`TransportError::Protocol`], never a panic or a silent
//! mis-reconstruction.

use crate::error::TransportError;
use crate::fabric::Payload;

/// Densify a Top-k sparse gradient: `out[indices[j]] = values[j]`,
/// zeros elsewhere.
///
/// # Errors
/// [`TransportError::Protocol`] if the index/value sections differ in
/// length or any index is out of range.
pub fn densify_sparse(
    len: u32,
    indices: &[u32],
    values: &[f32],
) -> Result<Vec<f32>, TransportError> {
    if indices.len() != values.len() {
        return Err(TransportError::Protocol(format!(
            "sparse grad has {} indices but {} values",
            indices.len(),
            values.len()
        )));
    }
    let mut out = vec![0.0f32; len as usize];
    for (&i, &v) in indices.iter().zip(values) {
        let slot = out
            .get_mut(i as usize)
            .ok_or_else(|| TransportError::Protocol(format!("sparse index {i} >= len {len}")))?;
        *slot = v;
    }
    Ok(out)
}

/// Densify a sign-quantized gradient: bit `i` of the little-endian
/// bitmap selects `+scale` (set) or `-scale` (clear).
///
/// # Errors
/// [`TransportError::Protocol`] if the bitmap length is not exactly
/// `ceil(len / 8)` bytes.
pub fn densify_sign(len: u32, scale: f32, bits: &[u8]) -> Result<Vec<f32>, TransportError> {
    let want = (len as usize).div_ceil(8);
    if bits.len() != want {
        return Err(TransportError::Protocol(format!(
            "sign grad of len {len} needs {want} bitmap bytes, got {}",
            bits.len()
        )));
    }
    Ok((0..len as usize)
        .map(|i| {
            if bits[i / 8] & (1 << (i % 8)) != 0 {
                scale
            } else {
                -scale
            }
        })
        .collect())
}

/// Densify a PowerSGD factor pair: `out[r*cols + c] = Σ_k P[r,k]·Q[c,k]`.
///
/// The naive triple loop is deliberate — the comm crate has no tensor
/// dependency, and server-side reconstruction is off the per-step hot
/// path (it runs once per compressed contribution per round).
///
/// # Errors
/// [`TransportError::Protocol`] if either factor's length disagrees
/// with the claimed `rows`/`cols`/`rank`.
pub fn densify_low_rank(
    rows: u32,
    cols: u32,
    rank: u32,
    p: &[f32],
    q: &[f32],
) -> Result<Vec<f32>, TransportError> {
    let (rows, cols, rank) = (rows as usize, cols as usize, rank as usize);
    if p.len() != rows * rank || q.len() != cols * rank {
        return Err(TransportError::Protocol(format!(
            "low-rank factors P:{} Q:{} do not match {rows}x{cols} rank {rank}",
            p.len(),
            q.len()
        )));
    }
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let mut acc = 0.0f32;
            for k in 0..rank {
                acc += p[r * rank + k] * q[c * rank + k];
            }
            out[r * cols + c] = acc;
        }
    }
    Ok(out)
}

/// Map a compressed payload to dense [`Payload::Grads`]; any other
/// payload passes through unchanged.
///
/// # Errors
/// Propagates the structural errors of the `densify_*` helpers.
pub fn densify_payload(payload: Payload) -> Result<Payload, TransportError> {
    Ok(match payload {
        Payload::SparseGrad {
            len,
            indices,
            values,
        } => Payload::Grads(densify_sparse(len, &indices, &values)?),
        Payload::SignGrad { len, scale, bits } => Payload::Grads(densify_sign(len, scale, &bits)?),
        Payload::LowRank {
            rows,
            cols,
            rank,
            p,
            q,
        } => Payload::Grads(densify_low_rank(rows, cols, rank, &p, &q)?),
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_densify_places_values_and_zeros() {
        let d = densify_sparse(5, &[1, 3], &[-5.0, 4.0]).unwrap();
        assert_eq!(d, vec![0.0, -5.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn sparse_densify_rejects_structural_lies() {
        assert!(densify_sparse(5, &[5], &[1.0]).is_err(), "index == len");
        assert!(densify_sparse(5, &[0, 1], &[1.0]).is_err(), "count skew");
        assert!(densify_sparse(0, &[0], &[1.0]).is_err(), "empty target");
    }

    #[test]
    fn sign_densify_matches_core_bit_convention() {
        // core's sign_compress: bit set (little-endian in byte) = positive
        let d = densify_sign(4, 1.5, &[0b0000_0101]).unwrap();
        assert_eq!(d, vec![1.5, -1.5, 1.5, -1.5]);
    }

    #[test]
    fn sign_densify_rejects_wrong_bitmap_length() {
        assert!(densify_sign(9, 1.0, &[0xFF]).is_err(), "needs 2 bytes");
        assert!(densify_sign(8, 1.0, &[0xFF, 0x00]).is_err(), "needs 1");
    }

    #[test]
    fn low_rank_densify_is_p_q_transpose() {
        // rank-1: P = [1, 2]ᵀ, Q = [3, 4, 5]ᵀ → M[r][c] = P[r]·Q[c]
        let d = densify_low_rank(2, 3, 1, &[1.0, 2.0], &[3.0, 4.0, 5.0]).unwrap();
        assert_eq!(d, vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn low_rank_densify_rejects_shape_mismatch() {
        assert!(densify_low_rank(2, 3, 1, &[1.0], &[3.0, 4.0, 5.0]).is_err());
        assert!(densify_low_rank(2, 3, 2, &[1.0, 2.0], &[3.0, 4.0, 5.0]).is_err());
    }

    #[test]
    fn densify_payload_passes_dense_through() {
        let p = densify_payload(Payload::Grads(vec![1.0])).unwrap();
        assert!(matches!(p, Payload::Grads(v) if v == vec![1.0]));
        let p = densify_payload(Payload::Control(7)).unwrap();
        assert!(matches!(p, Payload::Control(7)));
    }
}
