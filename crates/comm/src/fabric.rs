//! The message-passing fabric: a fully-connected set of endpoints over
//! crossbeam channels, with tagged receive and byte accounting.

use crate::error::TransportError;
use crate::stats::CommStats;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message payload. Sizes are accounted as fp32/byte counts so the
/// [`CommStats`] totals mirror what a wire transport would move.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A flat parameter vector (pushToPS / pullFromPS of Alg. 1).
    Params(Vec<f32>),
    /// A flat parameter vector broadcast to several receivers from one
    /// shared allocation: cloning the payload bumps the `Arc`, so an
    /// N-worker fan-out costs O(1) model copies instead of O(N).
    /// Wire-identical to [`Payload::Params`] — the codec emits the same
    /// frame kind and the byte accounting matches exactly.
    SharedParams(Arc<Vec<f32>>),
    /// A flat gradient vector (gradient-aggregation mode).
    Grads(Vec<f32>),
    /// Synchronization-status bits, one per worker (Alg. 1 line 12).
    Flags(Vec<u8>),
    /// Raw training samples for data injection (§III-E).
    Samples {
        /// Flattened sample features.
        data: Vec<f32>,
        /// Class targets, one per sample.
        targets: Vec<usize>,
        /// Per-sample feature dimensions (e.g. `[3, 8, 8]`).
        dims: Vec<usize>,
    },
    /// Small control message (requests, acks, shutdown).
    Control(u64),
    /// Inference request: one or more samples flattened back-to-back,
    /// each of shape `dims` (serving tier, `selsync-serve`). The number
    /// of rows is `data.len() / dims.iter().product()`.
    Predict {
        /// Flattened sample features, row-major, rows back-to-back.
        data: Vec<f32>,
        /// Per-sample feature dimensions (e.g. `[16]` or `[3, 8, 8]`).
        dims: Vec<usize>,
    },
    /// Inference reply: logits rows back-to-back, `classes` per row.
    Logits {
        /// Flattened logits, `rows × classes` values.
        rows: Vec<f32>,
        /// Logits per row (the model's class count).
        classes: usize,
    },
    /// The range-partition map of the flat parameter vector across a
    /// sharded PS group (`crates/shard`). Carried on the wire so every
    /// rank can prove it agrees with its peers before any sub-frame
    /// traffic flows — a silent partition mismatch would scatter
    /// parameters across the wrong servers.
    ShardMap(ShardSpec),
    /// A worker's parameter push restricted to one shard's range. Body
    /// layout is identical to [`Payload::Params`] (count + values):
    /// the shard index is implied by the destination rank and the
    /// range by the agreed [`Payload::ShardMap`], so at `K = 1` the
    /// sharded path moves exactly as many bytes as the monolithic one.
    ShardPush(Vec<f32>),
    /// A shard server's reply carrying its updated range. Body layout
    /// is identical to [`Payload::Params`], mirroring [`Payload::ShardPush`].
    ShardPull(Vec<f32>),
    /// One fixed-size chunk of a flat `f32` vector, shipped the moment
    /// its values are final so communication overlaps the rest of the
    /// step (DDP-style gradient bucketing). `bucket` is the chunk index
    /// — bucket `i` covers flat range `[i·B, i·B + values.len())` for
    /// the sender's bucket size `B` — and `n_buckets` the total chunk
    /// count of the vector being shipped. Receivers reassemble strictly
    /// by index ([`BucketAssembler`](crate::BucketAssembler)), so
    /// arrival order can never change the reduction order.
    Bucket {
        /// Chunk index within the flat vector (0-based).
        bucket: u32,
        /// Total chunks the sender will ship for this vector.
        n_buckets: u32,
        /// The chunk's values.
        values: Vec<f32>,
    },
    /// Top-k sparse gradient: `len` is the dense vector length, and
    /// `indices`/`values` are parallel sections of the surviving
    /// coordinates (indices ascending). Wire twin of
    /// `core::compression::SparseGrad`.
    SparseGrad {
        /// Dense length of the gradient this sparsifies.
        len: u32,
        /// Flat indices of the kept coordinates, ascending.
        indices: Vec<u32>,
        /// Values at those indices.
        values: Vec<f32>,
    },
    /// 1-bit sign-compressed gradient: bit `i` of the little-endian
    /// bitmap gives the sign of coordinate `i` (1 ⇒ `+scale`, 0 ⇒
    /// `-scale`). Wire twin of `core::compression::SignGrad`.
    SignGrad {
        /// Dense length of the gradient (bits beyond `len` are padding).
        len: u32,
        /// Magnitude applied to every coordinate.
        scale: f32,
        /// Sign bitmap, `ceil(len / 8)` bytes.
        bits: Vec<u8>,
    },
    /// Low-rank factor pair: the dense `rows × cols` gradient matrix is
    /// `P · Qᵀ` with `P` of shape `rows × rank` and `Q` of shape
    /// `cols × rank`, both row-major. Wire form of a PowerSGD step.
    LowRank {
        /// Rows of the dense matrix.
        rows: u32,
        /// Columns of the dense matrix.
        cols: u32,
        /// Factor rank.
        rank: u32,
        /// Left factor, `rows × rank` row-major.
        p: Vec<f32>,
        /// Right factor, `cols × rank` row-major.
        q: Vec<f32>,
    },
}

/// Wire form of the shard partition map: `starts[i]` is the first flat
/// parameter index owned by shard `i`, `total` is one past the last.
/// `version` counts map revisions so a stale map is detectable (the
/// initial map is version 1). The rich, validated view with range
/// arithmetic lives in `selsync-shard`; this type is deliberately dumb
/// data so the wire layer stays free of partition policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Map revision (1 = initial).
    pub version: u64,
    /// Flat parameter vector length the map partitions.
    pub total: u64,
    /// First owned index per shard, ascending, `starts.len()` = K.
    pub starts: Vec<u64>,
}

/// Bytes every encoded frame spends before the payload body:
/// `u32` frame length + `u32` sender id + `u64` tag + `u8` payload kind.
pub const FRAME_HEADER_BYTES: u64 = 4 + 4 + 8 + 1;

/// Bytes every encoded frame spends after the payload body: a `u32`
/// CRC-32 trailer covering everything after the length prefix. The
/// in-process fabric never computes the checksum, but it accounts for
/// the trailer so channel and TCP byte totals stay bit-identical.
pub const FRAME_CRC_BYTES: u64 = 4;

impl Payload {
    /// Bytes of the payload body as the wire codec encodes it (length
    /// prefixes included). `selsync-net` asserts this against real
    /// encoded frames, so in-process and TCP byte accounting agree.
    pub fn body_bytes(&self) -> u64 {
        match self {
            Payload::Params(v) | Payload::Grads(v) => 4 + 4 * v.len() as u64,
            Payload::SharedParams(v) => 4 + 4 * v.len() as u64,
            Payload::Flags(v) => 4 + v.len() as u64,
            Payload::Samples {
                data,
                targets,
                dims,
            } => {
                4 + 4 * data.len() as u64 + 4 + 8 * targets.len() as u64 + 4 + 8 * dims.len() as u64
            }
            Payload::Control(_) => 8,
            Payload::Predict { data, dims } => {
                4 + 4 * data.len() as u64 + 4 + 8 * dims.len() as u64
            }
            Payload::Logits { rows, .. } => 4 + 4 * rows.len() as u64 + 8,
            Payload::ShardMap(spec) => 8 + 8 + 4 + 8 * spec.starts.len() as u64,
            Payload::ShardPush(v) | Payload::ShardPull(v) => 4 + 4 * v.len() as u64,
            Payload::Bucket { values, .. } => 4 + 4 + 4 + 4 * values.len() as u64,
            Payload::SparseGrad {
                indices, values, ..
            } => 4 + (4 + 4 * indices.len() as u64) + (4 + 4 * values.len() as u64),
            Payload::SignGrad { bits, .. } => 4 + 4 + 4 + bits.len() as u64,
            Payload::LowRank { p, q, .. } => {
                4 + 4 + 4 + (4 + 4 * p.len() as u64) + (4 + 4 * q.len() as u64)
            }
        }
    }

    /// Exact bytes this payload occupies on the wire, header and CRC
    /// trailer included — the unit every [`CommStats`] counter is
    /// denominated in.
    pub fn wire_bytes(&self) -> u64 {
        FRAME_HEADER_BYTES + self.body_bytes() + FRAME_CRC_BYTES
    }
}

/// A received flat `f32` vector: exclusively owned, or a view of a
/// buffer shared with the other receivers of the same broadcast.
/// Derefs to `[f32]` — read-only consumers (e.g. `set_flat_params`)
/// never copy; call [`FlatVec::into_vec`] only when ownership is
/// genuinely needed.
#[derive(Debug, Clone)]
pub enum FlatVec {
    /// Exclusively owned (arrived as `Params`/`Grads`).
    Owned(Vec<f32>),
    /// Shared with the broadcast's other receivers (`SharedParams`).
    Shared(Arc<Vec<f32>>),
}

impl std::ops::Deref for FlatVec {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        match self {
            FlatVec::Owned(v) => v,
            FlatVec::Shared(a) => a,
        }
    }
}

impl FlatVec {
    /// Extract an owned vector, copying only if other receivers still
    /// hold the shared buffer.
    pub fn into_vec(self) -> Vec<f32> {
        match self {
            FlatVec::Owned(v) => v,
            FlatVec::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

/// An addressed, tagged message.
#[derive(Debug, Clone, PartialEq)]
pub struct Msg {
    /// Sender endpoint id.
    pub from: usize,
    /// Application tag (usually the training step) separating rounds.
    pub tag: u64,
    /// The payload.
    pub payload: Payload,
}

impl Msg {
    /// Does this message match a receive filter? `None` is a wildcard.
    pub fn matches(&self, from: Option<usize>, tag: Option<u64>) -> bool {
        from.is_none_or(|f| self.from == f) && tag.is_none_or(|t| self.tag == t)
    }
}

/// One participant's handle on the fabric.
///
/// Endpoints are `Send` (moved into worker threads) but not `Sync`; each
/// thread owns exactly one.
pub struct Endpoint {
    id: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    /// Messages received but not yet matched by a tagged receive.
    pending: VecDeque<Msg>,
    stats: Arc<CommStats>,
}

impl Endpoint {
    /// This endpoint's id (workers `0..n`, server `n` by convention).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of endpoints in the fabric (including this one).
    pub fn fabric_size(&self) -> usize {
        self.senders.len()
    }

    /// Shared byte/message counters.
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    /// Send `payload` to endpoint `to` with tag `tag`.
    ///
    /// # Errors
    /// [`TransportError::PeerUnreachable`] if `to`'s endpoint was
    /// dropped (the in-process equivalent of a crashed rank).
    ///
    /// # Panics
    /// Panics if `to` is out of range — an addressing bug, not a fault.
    pub fn send(&self, to: usize, tag: u64, payload: Payload) -> Result<(), TransportError> {
        assert!(to < self.senders.len(), "destination {to} out of range");
        let bytes = payload.wire_bytes();
        self.senders[to]
            .send(Msg {
                from: self.id,
                tag,
                payload,
            })
            .map_err(|_| TransportError::PeerUnreachable { peer: to })?;
        self.stats.record(bytes);
        Ok(())
    }

    /// Pull the next message off the channel, counting it as received.
    fn pull(&mut self, timeout: Option<Duration>) -> Result<Msg, TransportError> {
        let m = match timeout {
            None => self.receiver.recv().map_err(|_| TransportError::Closed)?,
            Some(t) => self.receiver.recv_timeout(t).map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportError::RecvTimeout {
                    rank: self.id,
                    waited: t,
                    buffered: self.pending.len(),
                },
                RecvTimeoutError::Disconnected => TransportError::Closed,
            })?,
        };
        self.stats.record_recv(m.payload.wire_bytes());
        Ok(m)
    }

    /// Blocking receive of the next message regardless of tag/sender.
    ///
    /// # Errors
    /// [`TransportError::Closed`] if every sender is gone.
    pub fn recv_any(&mut self) -> Result<Msg, TransportError> {
        if let Some(m) = self.pending.pop_front() {
            return Ok(m);
        }
        self.pull(None)
    }

    /// Blocking receive of the next message matching `tag` (and `from`,
    /// if given). Non-matching messages are buffered, preserving order.
    ///
    /// # Errors
    /// [`TransportError::Closed`] if every sender is gone.
    pub fn recv_tagged(&mut self, from: Option<usize>, tag: u64) -> Result<Msg, TransportError> {
        self.recv_filtered(from, Some(tag), None)
    }

    /// Blocking receive with a deadline: the next message matching
    /// `from`/`tag` (either may be a wildcard), or
    /// [`TransportError::RecvTimeout`] once `timeout` elapses without a
    /// match. Non-matching messages are buffered, preserving order.
    ///
    /// # Errors
    /// `RecvTimeout` on deadline, `Closed` if every sender is gone.
    pub fn recv_deadline(
        &mut self,
        from: Option<usize>,
        tag: Option<u64>,
        timeout: Duration,
    ) -> Result<Msg, TransportError> {
        self.recv_filtered(from, tag, Some(timeout))
    }

    fn recv_filtered(
        &mut self,
        from: Option<usize>,
        tag: Option<u64>,
        timeout: Option<Duration>,
    ) -> Result<Msg, TransportError> {
        // scan buffered messages first
        if let Some(pos) = self.pending.iter().position(|m| m.matches(from, tag)) {
            if let Some(m) = self.pending.remove(pos) {
                return Ok(m);
            }
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let remaining = match deadline {
                None => None,
                Some(d) => Some(d.checked_duration_since(Instant::now()).ok_or(
                    TransportError::RecvTimeout {
                        rank: self.id,
                        waited: timeout.unwrap_or_default(),
                        buffered: self.pending.len(),
                    },
                )?),
            };
            let m = self.pull(remaining)?;
            if m.matches(from, tag) {
                return Ok(m);
            }
            self.pending.push_back(m);
        }
    }

    /// Non-blocking receive of any message (buffered first).
    pub fn try_recv(&mut self) -> Option<Msg> {
        if let Some(m) = self.pending.pop_front() {
            return Some(m);
        }
        let m = self.receiver.try_recv().ok()?;
        self.stats.record_recv(m.payload.wire_bytes());
        Some(m)
    }
}

/// Construction of a fully-connected fabric.
pub struct Fabric;

impl Fabric {
    /// Create `n` endpoints, each able to send to every other (and to
    /// itself). Returned in id order; move each into its own thread.
    #[allow(clippy::new_ret_no_self)] // constructor of endpoints, not Fabric
    pub fn new(n: usize) -> Vec<Endpoint> {
        assert!(n > 0);
        let stats = Arc::new(CommStats::default());
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(id, receiver)| Endpoint {
                id,
                senders: senders.clone(),
                receiver,
                pending: VecDeque::new(),
                stats: Arc::clone(&stats),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_delivery() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.send(0, 1, Payload::Control(42)).unwrap();
        let m = a.recv_any().unwrap();
        assert_eq!(m.from, 1);
        assert_eq!(m.tag, 1);
        assert_eq!(m.payload, Payload::Control(42));
    }

    #[test]
    fn tagged_receive_buffers_out_of_order() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.send(0, 2, Payload::Control(2)).unwrap();
        b.send(0, 1, Payload::Control(1)).unwrap();
        // ask for tag 1 first: tag-2 message must be buffered, not lost
        let m1 = a.recv_tagged(None, 1).unwrap();
        assert_eq!(m1.payload, Payload::Control(1));
        let m2 = a.recv_tagged(Some(1), 2).unwrap();
        assert_eq!(m2.payload, Payload::Control(2));
    }

    #[test]
    fn wire_bytes_accounting() {
        // fixed per-frame overhead: header (17) + CRC trailer (4)
        const OH: u64 = 17 + 4;
        // overhead + u32 count + 4 bytes per f32
        assert_eq!(Payload::Params(vec![0.0; 10]).wire_bytes(), OH + 4 + 40);
        // overhead + u32 count + 1 byte per flag
        assert_eq!(Payload::Flags(vec![0; 16]).wire_bytes(), OH + 4 + 16);
        // overhead + u64 code
        assert_eq!(Payload::Control(0).wire_bytes(), OH + 8);
        // overhead + three length-prefixed sections
        let s = Payload::Samples {
            data: vec![0.0; 6],
            targets: vec![1, 2],
            dims: vec![3, 2],
        };
        assert_eq!(s.wire_bytes(), OH + (4 + 24) + (4 + 16) + (4 + 16));
        // overhead + f32 section + u64 dims section
        let p = Payload::Predict {
            data: vec![0.0; 8],
            dims: vec![2, 4],
        };
        assert_eq!(p.wire_bytes(), OH + (4 + 32) + (4 + 16));
        // overhead + f32 section + u64 class count
        let l = Payload::Logits {
            rows: vec![0.0; 6],
            classes: 3,
        };
        assert_eq!(l.wire_bytes(), OH + (4 + 24) + 8);
        // overhead + version + total + u32 count + 8 bytes per start
        let m = Payload::ShardMap(ShardSpec {
            version: 1,
            total: 100,
            starts: vec![0, 25, 50, 75],
        });
        assert_eq!(m.wire_bytes(), OH + 8 + 8 + (4 + 32));
        // shard push/pull bodies are byte-identical to Params of the
        // same length — the K=1 accounting-equivalence invariant
        assert_eq!(
            Payload::ShardPush(vec![0.0; 10]).wire_bytes(),
            Payload::Params(vec![0.0; 10]).wire_bytes()
        );
        assert_eq!(
            Payload::ShardPull(vec![0.0; 10]).wire_bytes(),
            Payload::Params(vec![0.0; 10]).wire_bytes()
        );
        // overhead + bucket index + total count + f32 section
        let b = Payload::Bucket {
            bucket: 2,
            n_buckets: 4,
            values: vec![0.0; 6],
        };
        assert_eq!(b.wire_bytes(), OH + 4 + 4 + (4 + 24));
        // overhead + dense len + u32 index section + f32 value section
        let sg = Payload::SparseGrad {
            len: 100,
            indices: vec![1, 7, 42],
            values: vec![0.5, -0.5, 2.0],
        };
        assert_eq!(sg.wire_bytes(), OH + 4 + (4 + 12) + (4 + 12));
        // a k-sparse frame beats dense f32 whenever 8k + 4 < 4n
        assert!(sg.wire_bytes() < Payload::Grads(vec![0.0; 100]).wire_bytes());
        // overhead + dense len + scale + byte section
        let sign = Payload::SignGrad {
            len: 16,
            scale: 0.25,
            bits: vec![0xAA, 0x55],
        };
        assert_eq!(sign.wire_bytes(), OH + 4 + 4 + (4 + 2));
        assert!(sign.wire_bytes() < Payload::Grads(vec![0.0; 16]).wire_bytes());
        // overhead + rows + cols + rank + two f32 factor sections
        let lr = Payload::LowRank {
            rows: 32,
            cols: 32,
            rank: 1,
            p: vec![0.0; 32],
            q: vec![0.0; 32],
        };
        assert_eq!(lr.wire_bytes(), OH + 4 + 4 + 4 + (4 + 128) + (4 + 128));
        // rank-1 factors of a 32×32 matrix beat the 1024-value dense frame
        assert!(lr.wire_bytes() < Payload::Grads(vec![0.0; 1024]).wire_bytes());
    }

    #[test]
    fn stats_shared_across_endpoints() {
        let mut eps = Fabric::new(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.send(0, 0, Payload::Params(vec![0.0; 100])).unwrap();
        c.send(0, 0, Payload::Flags(vec![0; 3])).unwrap();
        let _ = a.recv_any().unwrap();
        let _ = a.recv_any().unwrap();
        // Params(100): 21 + 4 + 400; Flags(3): 21 + 4 + 3
        assert_eq!(a.stats().total_bytes(), 425 + 28);
        assert_eq!(a.stats().total_messages(), 2);
        // both deliveries were drained, so received mirrors sent
        assert_eq!(a.stats().recv_bytes(), 425 + 28);
        assert_eq!(a.stats().recv_messages(), 2);
    }

    #[test]
    fn cross_thread_round_trip() {
        let mut eps = Fabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let h = thread::spawn(move || {
            let m = b.recv_tagged(Some(0), 7).unwrap();
            if let Payload::Params(v) = m.payload {
                b.send(0, 7, Payload::Params(v.iter().map(|x| x * 2.0).collect()))
                    .unwrap();
            }
        });
        a.send(1, 7, Payload::Params(vec![1.0, 2.0])).unwrap();
        let r = a.recv_tagged(Some(1), 7).unwrap();
        assert_eq!(r.payload, Payload::Params(vec![2.0, 4.0]));
        h.join().unwrap();
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let mut eps = Fabric::new(1);
        let mut a = eps.pop().unwrap();
        assert!(a.try_recv().is_none());
        a.send(0, 0, Payload::Control(5)).unwrap(); // self-send is allowed
        assert!(a.try_recv().is_some());
    }

    #[test]
    fn send_to_dropped_endpoint_is_an_error_not_a_panic() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        drop(b); // rank 1 "crashes"
        let before = a.stats().total_messages();
        let err = a.send(1, 0, Payload::Control(1)).unwrap_err();
        assert_eq!(err, TransportError::PeerUnreachable { peer: 1 });
        // failed sends are not counted as traffic
        assert_eq!(a.stats().total_messages(), before);
    }

    #[test]
    fn recv_deadline_times_out_and_preserves_buffered() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.send(0, 9, Payload::Control(9)).unwrap();
        let err = a
            .recv_deadline(None, Some(1), Duration::from_millis(50))
            .unwrap_err();
        match err {
            TransportError::RecvTimeout { rank, buffered, .. } => {
                assert_eq!(rank, 0);
                assert_eq!(buffered, 1, "the tag-9 message stays buffered");
            }
            other => panic!("expected RecvTimeout, got {other:?}"),
        }
        // the buffered message is still deliverable afterwards
        assert_eq!(
            a.recv_tagged(Some(1), 9).unwrap().payload,
            Payload::Control(9)
        );
    }
}
