//! Typed transport failures.
//!
//! Until PR 2 every fabric fault was a panic: a dead peer aborted the
//! whole process the moment the TCP watchdog fired, and a dropped
//! in-process endpoint tore down its neighbours via `expect`. The chaos
//! subsystem needs those events to be *observable*, so every fallible
//! [`Transport`](crate::Transport) operation now returns one of these.

use std::fmt;
use std::time::Duration;

/// Why a transport operation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A blocking receive saw no matching message within its deadline —
    /// the deadlock / dead-peer watchdog (previously a panic in the TCP
    /// fabric).
    RecvTimeout {
        /// Rank that was waiting.
        rank: usize,
        /// How long it waited.
        waited: Duration,
        /// Non-matching messages buffered while waiting (a nonzero
        /// count usually means a tag mismatch, not a dead peer).
        buffered: usize,
    },
    /// The destination endpoint is gone (its process/thread exited and
    /// dropped the receiving end).
    PeerUnreachable {
        /// Rank that could not be reached.
        peer: usize,
    },
    /// This endpoint was already torn down (send after close, or the
    /// local fabric threads exited).
    Closed,
    /// The bytes arrived but the conversation is wrong: an unexpected
    /// payload kind or control code for the protocol in progress.
    Protocol(String),
    /// The elastic membership service evicted this rank (missed
    /// liveness deadlines, e.g. under partition or message loss).
    Evicted {
        /// The evicted rank.
        rank: usize,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::RecvTimeout {
                rank,
                waited,
                buffered,
            } => write!(
                f,
                "rank {rank}: no matching message within {waited:?} \
                 ({buffered} buffered); peer dead or tag mismatch"
            ),
            TransportError::PeerUnreachable { peer } => {
                write!(f, "peer rank {peer} is unreachable (endpoint dropped)")
            }
            TransportError::Closed => write!(f, "endpoint already closed"),
            TransportError::Protocol(what) => write!(f, "protocol violation: {what}"),
            TransportError::Evicted { rank } => {
                write!(f, "rank {rank} was evicted from the membership")
            }
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TransportError::RecvTimeout {
            rank: 3,
            waited: Duration::from_secs(5),
            buffered: 2,
        };
        let s = e.to_string();
        assert!(s.contains("rank 3") && s.contains("2 buffered"), "{s}");
        assert!(TransportError::PeerUnreachable { peer: 1 }
            .to_string()
            .contains("rank 1"));
    }
}
