//! Worker-side client for a **range-sharded parameter-server group**.
//!
//! A sharded PS group splits the flat parameter vector into K contiguous
//! ranges ([`crate::elastic::shard_starts`]) and runs one elastic server
//! per range. [`ShardedPsClient`] is the worker's view of the group: it
//! splits every push into K [`Payload::ShardPush`] sub-frames, fans them
//! out to the K shard ranks back-to-back (all K requests are in flight
//! concurrently — the congested `model_bytes × N` single-socket ingress
//! of the monolithic PS becomes K parallel `model_bytes × N / K`
//! streams), then collects the K [`Payload::ShardPull`] replies in
//! whatever order they arrive and reassembles the full vector.
//!
//! Heartbeats fan out the same way: every shard tracks worker liveness
//! independently, so each can evict dead workers and keep its range
//! moving even while a sibling shard is down. Membership decisions are
//! pure functions of the observed flags history and `max_missed`, so
//! shards fed identical traffic reach identical verdicts; shard 0's
//! status vector is used as the authoritative membership for dataset
//! re-partitioning, and a `DEAD` verdict from *any* shard is treated as
//! an eviction (the worker stops heartbeating everywhere, so the
//! remaining shards converge on the same verdict within `max_missed`
//! rounds).
//!
//! Failover is per shard: each shard has its own resend budget, capped
//! redial backoff, and (at most one) switch to that shard's hot standby
//! — one shard crashing and recovering never stalls traffic to the
//! other K−1.
//!
//! ## Byte accounting
//!
//! Sub-frame bodies are deliberately Params-shaped (`u32 count` +
//! values), so the fan-out moves exactly the monolithic payload bytes
//! plus `(K−1) × (FRAME_HEADER_BYTES + 4 + FRAME_CRC_BYTES)` of
//! per-frame framing — see
//! [`monolithic_push_wire_bytes`]/[`fanout_push_wire_bytes`]. At K = 1
//! the sharded path is byte-for-byte identical to the monolithic one.
//! Per-shard [`CommStats`] instances record every sub-frame, so the
//! accounting is auditable per shard as well as in total.

use crate::collectives::{phase_tag, FLAGS_PHASE};
use crate::elastic::{SHARD_MAP_TAG, STATUS_DEAD, SYNC_PHASE};
use crate::error::TransportError;
use crate::fabric::{FlatVec, Payload, ShardSpec, FRAME_CRC_BYTES, FRAME_HEADER_BYTES};
use crate::ps::CTRL_SHUTDOWN;
use crate::stats::CommStats;
use crate::transport::Transport;
use std::time::{Duration, Instant};

/// Exact wire bytes of a monolithic parameter push (or pull reply) of
/// `len` floats: frame header + `u32 count` + the values + CRC trailer.
pub fn monolithic_push_wire_bytes(len: usize) -> u64 {
    FRAME_HEADER_BYTES + 4 + 4 * len as u64 + FRAME_CRC_BYTES
}

/// Exact wire bytes of the same push split into `k` sub-frames: the
/// payload bytes are conserved, each extra frame costs exactly one
/// header + one `u32` count prefix + one CRC trailer.
pub fn fanout_push_wire_bytes(len: usize, k: usize) -> u64 {
    monolithic_push_wire_bytes(len) + (k as u64 - 1) * (FRAME_HEADER_BYTES + 4 + FRAME_CRC_BYTES)
}

/// Timeouts and retry budget for the sharded client, mirroring the
/// worker-side knobs of the monolithic failover layer.
#[derive(Debug, Clone)]
pub struct ShardClientConfig {
    /// Wait for any outstanding shard reply before resending.
    pub reply_timeout: Duration,
    /// Resend attempts per shard after a reply timeout.
    pub comm_retries: u32,
    /// Per-shard budget for re-reaching a silent or unreachable shard
    /// before failing over to its standby (or giving up without one).
    pub ps_patience: Duration,
    /// `Some(B)` ships each shard's push as B-value [`Payload::Bucket`]
    /// frames instead of one [`Payload::ShardPush`]; the shard server
    /// reassembles them by index, so retries (which resend the whole
    /// per-shard set) stay idempotent. `None` keeps the monolithic
    /// sub-frame.
    pub bucket: Option<usize>,
}

impl Default for ShardClientConfig {
    fn default() -> Self {
        ShardClientConfig {
            reply_timeout: Duration::from_secs(2),
            comm_retries: 3,
            ps_patience: Duration::from_secs(6),
            bucket: None,
        }
    }
}

/// One shard's current target and failover state.
#[derive(Debug)]
struct ShardLink {
    /// Rank currently serving this shard (primary, or standby after a
    /// failover).
    server: usize,
    /// This shard's hot standby, consumed by at most one failover.
    standby: Option<usize>,
    /// Ranks that may answer for this shard (primary + standby), for
    /// mapping reply senders back to shard indices.
    answers_for: Vec<usize>,
}

/// The worker's client onto a K-shard PS group. See the module docs.
pub struct ShardedPsClient {
    /// This worker's *logical* id (index into status vectors).
    me: usize,
    /// The agreed partition map.
    spec: ShardSpec,
    links: Vec<ShardLink>,
    cfg: ShardClientConfig,
    /// Per-shard sent/received wire-byte tallies.
    stats: Vec<CommStats>,
    /// Reassembly buffer for pulls, reused across syncs.
    assembled: Vec<f32>,
}

impl ShardedPsClient {
    /// Build a client for `spec` where shard `i` is served by rank
    /// `shard_ranks[i]` (standby at `standby_ranks[i]`, when present).
    ///
    /// # Panics
    /// Panics if the rank lists disagree with the map's shard count — a
    /// layout bug, not a runtime fault.
    pub fn new(
        me: usize,
        spec: ShardSpec,
        shard_ranks: &[usize],
        standby_ranks: Option<&[usize]>,
        cfg: ShardClientConfig,
    ) -> Self {
        let k = spec.starts.len();
        assert_eq!(shard_ranks.len(), k, "one serving rank per shard");
        if let Some(sb) = standby_ranks {
            assert_eq!(sb.len(), k, "one standby rank per shard");
        }
        let links = (0..k)
            .map(|s| {
                let standby = standby_ranks.map(|sb| sb[s]);
                let mut answers_for = vec![shard_ranks[s]];
                answers_for.extend(standby);
                ShardLink {
                    server: shard_ranks[s],
                    standby,
                    answers_for,
                }
            })
            .collect();
        let stats = (0..k).map(|_| CommStats::default()).collect();
        ShardedPsClient {
            me,
            spec,
            links,
            cfg,
            stats,
            assembled: Vec::new(),
        }
    }

    /// Number of shards in the group.
    pub fn k(&self) -> usize {
        self.links.len()
    }

    /// This worker's logical id (its index in status vectors).
    pub fn me(&self) -> usize {
        self.me
    }

    /// The agreed partition map.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Sent/received wire-byte tallies for shard `s`.
    pub fn shard_stats(&self, s: usize) -> &CommStats {
        &self.stats[s]
    }

    /// Total wire bytes this client pushed across all shards.
    pub fn total_sent_bytes(&self) -> u64 {
        self.stats.iter().map(CommStats::total_bytes).sum()
    }

    /// Shard `s`'s flat-vector range under the agreed map.
    fn range(&self, s: usize) -> (usize, usize) {
        let start = self.spec.starts[s] as usize;
        let end = self
            .spec
            .starts
            .get(s + 1)
            .map_or(self.spec.total as usize, |&e| e as usize);
        (start, end)
    }

    /// Which shard a reply sender answers for, if any.
    fn shard_of(&self, from: usize) -> Option<usize> {
        self.links
            .iter()
            .position(|l| l.answers_for.contains(&from))
    }

    /// Best-effort send of one sub-frame, tallied per shard. A send
    /// failure (shard crashed) is not an error here: the shard stays
    /// outstanding and the timeout path retries or fails it over.
    fn send_shard<T: Transport>(&self, ep: &mut T, s: usize, tag: u64, payload: Payload) -> bool {
        let bytes = payload.wire_bytes();
        match ep.send(self.links[s].server, tag, payload) {
            Ok(()) => {
                self.stats[s].record(bytes);
                true
            }
            Err(_) => false,
        }
    }

    /// Best-effort send of one shard's whole request (one frame, or a
    /// bucket set). A partial set on the wire is fine: the retry path
    /// resends the full set and the server's assembler overwrites.
    fn send_shard_all<T: Transport>(
        &self,
        ep: &mut T,
        s: usize,
        tag: u64,
        payloads: Vec<Payload>,
    ) -> bool {
        let mut ok = true;
        for p in payloads {
            ok &= self.send_shard(ep, s, tag, p);
        }
        ok
    }

    /// Fan one request out to every shard and collect one reply from
    /// each, resending and failing over per shard as needed. `mk` builds
    /// shard `s`'s request frames (one payload, or a bucket set);
    /// replies are returned indexed by shard.
    fn fanout_exchange<T: Transport>(
        &mut self,
        ep: &mut T,
        tag: u64,
        mk: impl Fn(&Self, usize) -> Vec<Payload>,
    ) -> Result<Vec<Payload>, TransportError> {
        let k = self.k();
        let mut replies: Vec<Option<Payload>> = (0..k).map(|_| None).collect();
        let mut outstanding: Vec<bool> = vec![true; k];
        let mut attempts = vec![0u32; k];
        let mut backoff = Duration::from_millis(50);
        let deadline = Instant::now() + self.cfg.ps_patience;
        for s in 0..k {
            self.send_shard_all(ep, s, tag, mk(self, s));
        }
        while outstanding.iter().any(|&o| o) {
            match ep.recv_deadline(None, Some(tag), self.cfg.reply_timeout) {
                Ok(m) => {
                    if let Some(s) = self.shard_of(m.from) {
                        if outstanding[s] {
                            outstanding[s] = false;
                            self.stats[s].record_recv(m.payload.wire_bytes());
                            replies[s] = Some(m.payload);
                        }
                        // a duplicate reply after a resend: drop it
                    }
                }
                Err(TransportError::RecvTimeout { .. }) => {
                    let spent = attempts
                        .iter()
                        .enumerate()
                        .filter(|&(s, _)| outstanding[s])
                        .all(|(_, &a)| a >= self.cfg.comm_retries);
                    let past_patience = Instant::now() >= deadline;
                    for s in 0..k {
                        if !outstanding[s] {
                            continue;
                        }
                        attempts[s] += 1;
                        if spent && past_patience {
                            // the resend budget is gone: fail over to
                            // this shard's standby (once), or give up
                            match self.links[s].standby.take() {
                                Some(sb) => {
                                    self.links[s].server = sb;
                                    attempts[s] = 0;
                                }
                                None => {
                                    return Err(TransportError::RecvTimeout {
                                        rank: ep.id(),
                                        waited: self.cfg.ps_patience,
                                        buffered: 0,
                                    });
                                }
                            }
                        }
                        if !self.send_shard_all(ep, s, tag, mk(self, s)) {
                            // unreachable target: pace the redials
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(Duration::from_secs(1));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        // lint:allow(unwrap-in-prod): the loop above only exits once every
        // shard's reply slot is filled
        Ok(replies.into_iter().map(|r| r.unwrap()).collect())
    }

    /// Prove map agreement with every shard: send our map, require each
    /// server to echo an identical one.
    ///
    /// # Errors
    /// [`TransportError::Protocol`] on any mismatch — no parameter
    /// traffic may flow under a disputed partition.
    pub fn handshake<T: Transport>(&mut self, ep: &mut T) -> Result<(), TransportError> {
        let replies = self.fanout_exchange(ep, SHARD_MAP_TAG, |c, _| {
            vec![Payload::ShardMap(c.spec.clone())]
        })?;
        for (s, r) in replies.into_iter().enumerate() {
            match r {
                Payload::ShardMap(theirs) if theirs == self.spec => {}
                Payload::ShardMap(theirs) => {
                    return Err(TransportError::Protocol(format!(
                        "shard {s} disagrees on the partition map: \
                         ours {:?}, theirs {:?}",
                        self.spec, theirs
                    )));
                }
                p => {
                    return Err(TransportError::Protocol(format!(
                        "shard {s} answered the map handshake with {p:?}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// One heartbeat/flags round against every shard. Returns shard 0's
    /// status vector (the authoritative membership for re-partitioning).
    ///
    /// # Errors
    /// [`TransportError::Evicted`] if *any* shard reports this rank
    /// dead; transport faults otherwise.
    pub fn heartbeat<T: Transport>(
        &mut self,
        ep: &mut T,
        step: u64,
        my_bit: u8,
    ) -> Result<Vec<u8>, TransportError> {
        let tag = phase_tag(step, FLAGS_PHASE);
        let replies = self.fanout_exchange(ep, tag, |_, _| vec![Payload::Flags(vec![my_bit])])?;
        let me = self.me;
        let mut first: Option<Vec<u8>> = None;
        for (s, r) in replies.into_iter().enumerate() {
            match r {
                Payload::Flags(status) => {
                    if status.get(me).copied().unwrap_or(STATUS_DEAD) == STATUS_DEAD {
                        return Err(TransportError::Evicted { rank: me });
                    }
                    if first.is_none() {
                        first = Some(status);
                    }
                }
                p => {
                    return Err(TransportError::Protocol(format!(
                        "shard {s} heartbeat reply was {p:?}, expected Flags"
                    )));
                }
            }
        }
        // lint:allow(unwrap-in-prod): k >= 1 is asserted at construction,
        // so at least one reply filled `first`
        Ok(first.unwrap())
    }

    /// One sharded sync round: split `params` along the map, push each
    /// range to its shard concurrently, reassemble the K averaged
    /// ranges into the full global vector.
    ///
    /// # Errors
    /// [`TransportError::Protocol`] on a reply of the wrong variant or
    /// length; transport faults otherwise.
    pub fn sync<T: Transport>(
        &mut self,
        ep: &mut T,
        step: u64,
        params: &[f32],
    ) -> Result<FlatVec, TransportError> {
        assert_eq!(
            params.len() as u64,
            self.spec.total,
            "pushed vector must match the agreed map"
        );
        let tag = phase_tag(step, SYNC_PHASE);
        let replies = self.fanout_exchange(ep, tag, |c, s| {
            let (start, end) = c.range(s);
            match c.cfg.bucket {
                Some(b) => crate::bucket::bucket_payloads(&params[start..end], b),
                None => vec![Payload::ShardPush(params[start..end].to_vec())],
            }
        })?;
        let mut assembled = std::mem::take(&mut self.assembled);
        assembled.clear();
        assembled.resize(params.len(), 0.0);
        for (s, r) in replies.into_iter().enumerate() {
            let (start, end) = self.range(s);
            match r {
                Payload::ShardPull(v) if v.len() == end - start => {
                    assembled[start..end].copy_from_slice(&v);
                }
                Payload::ShardPull(v) => {
                    return Err(TransportError::Protocol(format!(
                        "shard {s} pull reply had {} values, its range holds {}",
                        v.len(),
                        end - start
                    )));
                }
                p => {
                    return Err(TransportError::Protocol(format!(
                        "shard {s} sync reply was {p:?}, expected ShardPull"
                    )));
                }
            }
        }
        // hand the assembled buffer out; the next sync starts from an
        // empty one and re-grows it (allocation-free once both are warm)
        let out = FlatVec::Owned(assembled);
        Ok(out)
    }

    /// Enable or disable bucketed pushes after construction.
    pub fn set_bucket(&mut self, bucket: Option<usize>) {
        self.cfg.bucket = bucket;
    }

    /// Tell every shard this worker is finished (fire-and-forget).
    pub fn shutdown<T: Transport>(&mut self, ep: &mut T, step: u64) {
        let tag = phase_tag(step, FLAGS_PHASE);
        for s in 0..self.k() {
            self.send_shard(ep, s, tag, Payload::Control(CTRL_SHUTDOWN));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::shard_starts;

    fn spec(total: u64, k: usize) -> ShardSpec {
        ShardSpec {
            version: 1,
            total,
            starts: shard_starts(total, k),
        }
    }

    #[test]
    fn fanout_byte_accounting_is_exact() {
        for len in [0usize, 1, 7, 1000] {
            for k in [1usize, 2, 4] {
                let mono = monolithic_push_wire_bytes(len);
                let fan = fanout_push_wire_bytes(len, k);
                // payload bytes conserved; overhead is exactly one extra
                // header + count prefix + CRC trailer per extra frame
                assert_eq!(
                    fan,
                    mono + (k as u64 - 1) * (FRAME_HEADER_BYTES + 4 + FRAME_CRC_BYTES)
                );
                if k == 1 {
                    assert_eq!(fan, mono, "K=1 must be byte-identical");
                }
            }
        }
    }

    #[test]
    fn sub_frame_sum_matches_accounting_formula() {
        // the analytic formula must equal real frames summed over shards
        let total = 103usize;
        for k in [1usize, 2, 4] {
            let s = spec(total as u64, k);
            let params = vec![1.0f32; total];
            let mut sum = 0u64;
            for i in 0..k {
                let start = s.starts[i] as usize;
                let end = s.starts.get(i + 1).map_or(total, |&e| e as usize);
                sum += Payload::ShardPush(params[start..end].to_vec()).wire_bytes();
            }
            assert_eq!(sum, fanout_push_wire_bytes(total, k));
        }
    }

    #[test]
    fn ranges_cover_exactly_once() {
        for (total, k) in [(10u64, 4usize), (4, 4), (1, 2), (100, 3), (0, 2)] {
            let s = spec(total, k);
            let mut covered = 0u64;
            for i in 0..k {
                let start = s.starts[i];
                let end = s.starts.get(i + 1).copied().unwrap_or(total);
                assert!(start <= end);
                covered += end - start;
            }
            assert_eq!(covered, total, "ranges partition [0, {total})");
        }
    }
}
