//! The parameter server (PS) and its client protocol.
//!
//! Two service disciplines cover every algorithm in the paper:
//!
//! * **Round-synchronous** ([`run_round_server`]): BSP, FedAvg and
//!   SelSync sync steps are *rounds* in which every worker sends exactly
//!   one request with the step as tag — either a push (`Params`/`Grads`)
//!   or a bare pull — and blocks for the server's reply. The server
//!   averages whatever was pushed and answers everyone.
//! * **Stale-synchronous** ([`run_ssp_server`]): workers push deltas and
//!   pull the global state asynchronously; the server withholds a pull
//!   reply from any worker running more than `staleness` steps ahead of
//!   the slowest active worker (§II-C).
//!
//! Every entry point returns `Result<_, TransportError>`: a dead peer or
//! a malformed conversation is an error the caller can handle (evict,
//! retry, shut down), not a process abort.

use crate::bucket::BucketIntake;
use crate::error::TransportError;
use crate::fabric::{FlatVec, Msg, Payload};
use crate::transport::Transport;
use std::sync::Arc;

/// Control code: pull-only request.
pub const CTRL_PULL: u64 = 1;
/// Control code: worker is done; last message it sends.
pub const CTRL_SHUTDOWN: u64 = 2;
/// Control code: a (re)joining worker announces itself (elastic mode).
pub const CTRL_JOIN: u64 = 3;

/// What a worker contributes to a synchronization round.
#[derive(Debug, Clone)]
pub enum SyncRequest {
    /// Push local parameters (parameter aggregation, Alg. 1 line 14).
    PushParams(Vec<f32>),
    /// Push local gradients (gradient-aggregation ablation, §IV-D).
    PushGrads(Vec<f32>),
    /// Participate without pushing (FedAvg non-participant, initial pull).
    Pull,
}

/// Client side of one synchronous round: send the request tagged with
/// `step`, block for the averaged reply.
///
/// # Errors
/// Propagates transport faults; [`TransportError::Protocol`] if the
/// server's reply is not a parameter/gradient vector.
pub fn sync_round<T: Transport>(
    ep: &mut T,
    server: usize,
    step: u64,
    req: SyncRequest,
) -> Result<FlatVec, TransportError> {
    let payload = match req {
        SyncRequest::PushParams(v) => Payload::Params(v),
        SyncRequest::PushGrads(v) => Payload::Grads(v),
        SyncRequest::Pull => Payload::Control(CTRL_PULL),
    };
    ep.send(server, step, payload)?;
    recv_round_reply(ep, server, step)
}

/// Block for the server's round reply — the tail half of [`sync_round`],
/// used on its own by clients that stream their push as
/// [`Payload::Bucket`] frames (or a compressed payload) and then wait.
///
/// # Errors
/// Propagates transport faults; [`TransportError::Protocol`] if the
/// reply is not a parameter/gradient vector.
pub fn recv_round_reply<T: Transport>(
    ep: &mut T,
    server: usize,
    step: u64,
) -> Result<FlatVec, TransportError> {
    let reply = ep.recv_tagged(Some(server), step)?;
    match reply.payload {
        Payload::Params(v) | Payload::Grads(v) => Ok(FlatVec::Owned(v)),
        Payload::SharedParams(a) => Ok(FlatVec::Shared(a)),
        other => Err(TransportError::Protocol(format!(
            "unexpected PS reply {other:?}"
        ))),
    }
}

/// Client side of one bucketed synchronous round: stream `values` to
/// the server as [`Payload::Bucket`] frames (lowest index first) and
/// block for the averaged reply. Produces bit-identical results to
/// [`sync_round`] with a monolithic `PushGrads` of the same values —
/// the server reassembles strictly by bucket index.
///
/// # Errors
/// Propagates transport faults; [`TransportError::Protocol`] on a
/// malformed reply.
pub fn sync_round_bucketed<T: Transport>(
    ep: &mut T,
    server: usize,
    step: u64,
    values: &[f32],
    bucket_size: usize,
) -> Result<FlatVec, TransportError> {
    crate::bucket::send_all_buckets(ep, server, step, values, bucket_size)?;
    recv_round_reply(ep, server, step)
}

/// Tell the server this worker is finished.
///
/// # Errors
/// Propagates transport faults.
pub fn send_shutdown<T: Transport>(
    ep: &mut T,
    server: usize,
    step: u64,
) -> Result<(), TransportError> {
    ep.send(server, step, Payload::Control(CTRL_SHUTDOWN))
}

/// Run the round-synchronous parameter server until every worker has
/// shut down. Returns the final global parameters.
///
/// Round semantics:
/// * all `Params` pushes → global ← mean(pushed); reply global to all
///   (model consistency, §III-C);
/// * all `Grads` pushes → reply mean(grads) to all; the stored global is
///   *not* advanced (the server does not know the optimizer), which is
///   exactly the local/global divergence GA exhibits in Fig. 10/11;
/// * pure pull round → reply the stored global.
///
/// A push may arrive as a stream of [`Payload::Bucket`] frames (the
/// pipelined path) or as a compressed payload — both are normalized at
/// arrival by a [`BucketIntake`] into the dense `Grads` the round logic
/// has always consumed, so reduction order (sorted by worker id) and
/// results stay bit-identical to the monolithic path.
///
/// # Errors
/// Propagates transport faults; [`TransportError::Protocol`] on a
/// malformed round (mixed push kinds, partial shutdown, unknown payload,
/// structurally invalid bucket/compressed frame).
pub fn run_round_server<T: Transport>(
    mut ep: T,
    n_workers: usize,
    init_params: Vec<f32>,
) -> Result<Vec<f32>, TransportError> {
    let mut global = init_params;
    let mut done = vec![false; n_workers];
    let mut intake = BucketIntake::grads();
    while done.iter().any(|d| !d) {
        // first message of the round fixes the tag, even when it is a
        // partial bucket frame of a still-streaming push
        let first = ep.recv_any()?;
        let tag = first.tag;
        let expected = done.iter().filter(|d| !**d).count();
        let mut batch: Vec<Msg> = Vec::with_capacity(expected);
        if let Some(m) = intake.accept(first)? {
            batch.push(m);
        }
        while batch.len() < expected {
            let m = ep.recv_tagged(None, tag)?;
            if let Some(m) = intake.accept(m)? {
                batch.push(m);
            }
        }
        // arrival order is scheduler-dependent; fix the reduction order
        // by worker id so runs are bit-reproducible
        batch.sort_by_key(|m| m.from);
        // classify the round
        let mut param_pushes: Vec<&[f32]> = Vec::new();
        let mut grad_pushes: Vec<&[f32]> = Vec::new();
        let mut shutdowns = 0usize;
        for m in &batch {
            match &m.payload {
                Payload::Params(v) => param_pushes.push(v),
                Payload::Grads(v) => grad_pushes.push(v),
                Payload::Control(CTRL_PULL) => {}
                Payload::Control(CTRL_SHUTDOWN) => shutdowns += 1,
                other => {
                    return Err(TransportError::Protocol(format!(
                        "unexpected PS request {other:?} from rank {}",
                        m.from
                    )))
                }
            }
        }
        if !param_pushes.is_empty() && !grad_pushes.is_empty() {
            return Err(TransportError::Protocol(
                "a round cannot mix parameter and gradient pushes".into(),
            ));
        }
        if shutdowns > 0 {
            if shutdowns != batch.len() {
                return Err(TransportError::Protocol(
                    "shutdown must be a dedicated round (all active workers)".into(),
                ));
            }
            for m in &batch {
                done[m.from] = true;
            }
            continue;
        }
        // one model copy into the shared buffer; each per-worker send
        // below clones only the Arc, so the fan-out is O(1) copies
        let reply = if !param_pushes.is_empty() {
            global = average(&param_pushes);
            Payload::SharedParams(Arc::new(global.clone()))
        } else if !grad_pushes.is_empty() {
            Payload::SharedParams(Arc::new(average(&grad_pushes)))
        } else {
            Payload::SharedParams(Arc::new(global.clone()))
        };
        for m in &batch {
            ep.send(m.from, tag, reply.clone())?;
        }
    }
    Ok(global)
}

pub(crate) fn average(vs: &[&[f32]]) -> Vec<f32> {
    let n = vs.len() as f32;
    let mut out = vs[0].to_vec();
    for v in &vs[1..] {
        for (o, x) in out.iter_mut().zip(*v) {
            *o += x;
        }
    }
    for o in &mut out {
        *o /= n;
    }
    out
}

/// Client side of one SSP step: push the local delta (non-blocking on
/// the server's apply) and pull the current global, blocking only if the
/// staleness bound holds this worker back.
///
/// # Errors
/// Propagates transport faults; [`TransportError::Protocol`] on an
/// unexpected reply kind.
pub fn ssp_step<T: Transport>(
    ep: &mut T,
    server: usize,
    step: u64,
    delta: Vec<f32>,
) -> Result<FlatVec, TransportError> {
    ep.send(server, step, Payload::Grads(delta))?;
    ep.send(server, step, Payload::Control(CTRL_PULL))?;
    let reply = ep.recv_tagged(Some(server), step)?;
    match reply.payload {
        Payload::Params(v) => Ok(FlatVec::Owned(v)),
        Payload::SharedParams(a) => Ok(FlatVec::Shared(a)),
        other => Err(TransportError::Protocol(format!(
            "unexpected SSP reply {other:?}"
        ))),
    }
}

/// Run the stale-synchronous server until all workers shut down.
/// Returns the final global parameters.
///
/// # Errors
/// Propagates transport faults; [`TransportError::Protocol`] on an
/// unexpected request kind.
pub fn run_ssp_server<T: Transport>(
    mut ep: T,
    n_workers: usize,
    init_params: Vec<f32>,
    staleness: u64,
) -> Result<Vec<f32>, TransportError> {
    let mut global = init_params;
    let mut steps = vec![0u64; n_workers];
    let mut done = vec![false; n_workers];
    // pulls delayed by the staleness bound: (worker, tag)
    let mut parked: Vec<(usize, u64)> = Vec::new();
    loop {
        if done.iter().all(|d| *d) {
            break;
        }
        let m = ep.recv_any()?;
        match m.payload {
            Payload::Grads(delta) => {
                for (g, d) in global.iter_mut().zip(&delta) {
                    *g += d;
                }
                steps[m.from] = m.tag + 1;
            }
            Payload::Control(CTRL_PULL) => parked.push((m.from, m.tag)),
            Payload::Control(CTRL_SHUTDOWN) => done[m.from] = true,
            other => {
                return Err(TransportError::Protocol(format!(
                    "unexpected SSP request {other:?} from rank {}",
                    m.from
                )))
            }
        }
        // release every parked pull now inside the staleness window
        let min_step = steps
            .iter()
            .zip(&done)
            .filter(|(_, d)| !**d)
            .map(|(s, _)| *s)
            .min()
            .unwrap_or(u64::MAX);
        let mut release_err = None;
        parked.retain(|&(w, tag)| {
            if release_err.is_none() && steps[w] <= min_step.saturating_add(staleness) {
                if let Err(e) = ep.send(w, tag, Payload::Params(global.clone())) {
                    release_err = Some(e);
                }
                false
            } else {
                true
            }
        });
        if let Some(e) = release_err {
            return Err(e);
        }
    }
    // release anything still parked so no worker deadlocks at shutdown
    for (w, tag) in parked {
        ep.send(w, tag, Payload::Params(global.clone()))?;
    }
    Ok(global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Endpoint, Fabric};
    use std::thread;

    /// n workers + server; run `worker` on each, round server on the last
    /// endpoint. Returns (per-worker results, final global).
    fn with_round_server<F>(n: usize, init: Vec<f32>, worker: F) -> (Vec<Vec<f32>>, Vec<f32>)
    where
        F: Fn(&mut Endpoint, usize, usize) -> Vec<f32> + Send + Sync + Copy + 'static,
    {
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let server = thread::spawn(move || run_round_server(server_ep, n, init).unwrap());
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let id = ep.id();
                    worker(&mut ep, id, n)
                })
            })
            .collect();
        let results = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let global = server.join().unwrap();
        (results, global)
    }

    #[test]
    fn initial_pull_round_returns_init() {
        let (results, _) = with_round_server(3, vec![1.0, 2.0], |ep, _, n| {
            let v = sync_round(ep, n, 0, SyncRequest::Pull).unwrap().into_vec();
            send_shutdown(ep, n, 1).unwrap();
            v
        });
        for r in results {
            assert_eq!(r, vec![1.0, 2.0]);
        }
    }

    #[test]
    fn param_push_round_averages_and_updates_global() {
        let (results, global) = with_round_server(4, vec![0.0], |ep, id, n| {
            let v = sync_round(ep, n, 0, SyncRequest::PushParams(vec![id as f32]))
                .unwrap()
                .into_vec();
            send_shutdown(ep, n, 1).unwrap();
            v
        });
        for r in results {
            assert_eq!(r, vec![1.5], "(0+1+2+3)/4");
        }
        assert_eq!(global, vec![1.5], "PA advances the stored global");
    }

    #[test]
    fn grad_push_round_averages_without_touching_global() {
        let (results, global) = with_round_server(2, vec![9.0], |ep, id, n| {
            let g = sync_round(ep, n, 0, SyncRequest::PushGrads(vec![id as f32 * 2.0]))
                .unwrap()
                .into_vec();
            send_shutdown(ep, n, 1).unwrap();
            g
        });
        for r in results {
            assert_eq!(r, vec![1.0], "(0+2)/2");
        }
        assert_eq!(global, vec![9.0], "GA leaves the stored global stale");
    }

    #[test]
    fn mixed_push_pull_round_fedavg_style() {
        // workers 0,1 push; workers 2,3 only pull — all get the average
        let (results, _) = with_round_server(4, vec![0.0], |ep, id, n| {
            let req = if id < 2 {
                SyncRequest::PushParams(vec![10.0 * (id + 1) as f32])
            } else {
                SyncRequest::Pull
            };
            let v = sync_round(ep, n, 0, req).unwrap().into_vec();
            send_shutdown(ep, n, 1).unwrap();
            v
        });
        for r in results {
            assert_eq!(r, vec![15.0], "average over the C-fraction pushers only");
        }
    }

    #[test]
    fn multiple_rounds_in_sequence() {
        let (results, global) = with_round_server(2, vec![0.0], |ep, id, n| {
            let mut v = vec![id as f32 + 1.0];
            for step in 0..5u64 {
                v = sync_round(ep, n, step, SyncRequest::PushParams(v.clone()))
                    .unwrap()
                    .into_vec();
                v[0] += 1.0; // local drift between rounds
            }
            send_shutdown(ep, n, 99).unwrap();
            v
        });
        // round 0: avg(1,2)=1.5 → both 2.5; each next round avg equals both
        for r in &results {
            assert_eq!(r, &vec![6.5]);
        }
        assert_eq!(global, vec![5.5]);
    }

    fn wavy(id: usize) -> Vec<f32> {
        (0..13).map(|i| ((id * 31 + i) as f32).sin()).collect()
    }

    #[test]
    fn bucketed_grad_push_matches_monolithic_bitwise() {
        let (mono, _) = with_round_server(3, vec![0.0; 13], |ep, id, n| {
            let v = sync_round(ep, n, 0, SyncRequest::PushGrads(wavy(id)))
                .unwrap()
                .into_vec();
            send_shutdown(ep, n, 1).unwrap();
            v
        });
        let (bucketed, _) = with_round_server(3, vec![0.0; 13], |ep, id, n| {
            let v = sync_round_bucketed(ep, n, 0, &wavy(id), 4)
                .unwrap()
                .into_vec();
            send_shutdown(ep, n, 1).unwrap();
            v
        });
        let bits = |vs: &[Vec<f32>]| -> Vec<Vec<u32>> {
            vs.iter()
                .map(|v| v.iter().map(|x| x.to_bits()).collect())
                .collect()
        };
        assert_eq!(
            bits(&bucketed),
            bits(&mono),
            "bucketed and monolithic rounds must agree bit-for-bit"
        );
    }

    #[test]
    fn mixed_bucketed_compressed_and_dense_round() {
        // worker 0 streams buckets, worker 1 pushes dense, worker 2
        // ships a sparse payload — one round, all normalized at intake
        let (results, _) = with_round_server(3, vec![0.0; 4], |ep, id, n| {
            let v = match id {
                0 => sync_round_bucketed(ep, n, 0, &[4.0, 0.0, 0.0, 0.0], 2).unwrap(),
                1 => {
                    sync_round(ep, n, 0, SyncRequest::PushGrads(vec![0.0, 8.0, 0.0, 0.0])).unwrap()
                }
                _ => {
                    ep.send(
                        n,
                        0,
                        Payload::SparseGrad {
                            len: 4,
                            indices: vec![2],
                            values: vec![12.0],
                        },
                    )
                    .unwrap();
                    recv_round_reply(ep, n, 0).unwrap()
                }
            }
            .into_vec();
            send_shutdown(ep, n, 1).unwrap();
            v
        });
        for r in results {
            assert_eq!(r, vec![4.0 / 3.0, 8.0 / 3.0, 4.0, 0.0]);
        }
    }

    #[test]
    fn hostile_compressed_push_errors_the_server() {
        let mut eps = Fabric::new(2);
        let server_ep = eps.pop().unwrap();
        let w = eps.pop().unwrap();
        let server = thread::spawn(move || run_round_server(server_ep, 1, vec![0.0]));
        w.send(
            1,
            0,
            Payload::SparseGrad {
                len: 2,
                indices: vec![9],
                values: vec![1.0],
            },
        )
        .unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert!(matches!(err, TransportError::Protocol(_)), "{err:?}");
    }

    #[test]
    fn ssp_server_applies_deltas_and_respects_staleness() {
        let n = 2;
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let server = thread::spawn(move || run_ssp_server(server_ep, n, vec![0.0], 2).unwrap());
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let mut last = Vec::new();
                    for step in 0..10u64 {
                        last = ssp_step(&mut ep, n, step, vec![1.0]).unwrap().into_vec();
                    }
                    send_shutdown(&mut ep, n, 10).unwrap();
                    last
                })
            })
            .collect();
        for h in handles {
            let last = h.join().unwrap();
            // by a worker's final pull at least its own 10 pushes landed
            assert!(last[0] >= 10.0, "global accumulated deltas: {}", last[0]);
        }
        let global = server.join().unwrap();
        assert_eq!(global, vec![20.0], "all 2×10 unit deltas applied");
    }

    #[test]
    fn ssp_staleness_bound_is_enforced() {
        // worker 1 never pushes (simulated dead-slow straggler that only
        // registered step 0); worker 0 sprints. With s = 3, worker 0 must
        // be parked once it gets 3+ steps ahead — we verify it cannot
        // complete 10 steps before worker 1 advances.
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let n = 2;
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let _server = thread::spawn(move || run_ssp_server(server_ep, n, vec![0.0], 3).unwrap());
        let mut slow = eps.pop().unwrap(); // id 1
        let mut fast = eps.pop().unwrap(); // id 0
        let fast_steps = Arc::new(AtomicU64::new(0));
        let fs = Arc::clone(&fast_steps);
        let fast_h = thread::spawn(move || {
            for step in 0..10u64 {
                let _ = ssp_step(&mut fast, n, step, vec![0.0]).unwrap();
                fs.store(step + 1, Ordering::SeqCst);
            }
            send_shutdown(&mut fast, n, 10).unwrap();
        });
        thread::sleep(std::time::Duration::from_millis(200));
        let blocked_at = fast_steps.load(Ordering::SeqCst);
        assert!(
            blocked_at <= 4,
            "fast worker should be parked within s+1 steps, got {blocked_at}"
        );
        // let the slow worker catch up, releasing the fast one
        for step in 0..10u64 {
            let _ = ssp_step(&mut slow, n, step, vec![0.0]).unwrap();
        }
        send_shutdown(&mut slow, n, 10).unwrap();
        fast_h.join().unwrap();
        assert_eq!(fast_steps.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn dead_worker_surfaces_as_error_not_panic() {
        // 2 workers expected, but one endpoint is dropped before ever
        // sending: the server's round can never complete. With the old
        // panicking fabric this aborted the process; now we can bound the
        // wait and observe the failure. We emulate by having worker 0
        // push then drop — the server blocks in recv; the *client* path
        // is what we exercise: sending to a dropped server errors.
        let mut eps = Fabric::new(2);
        let server_ep = eps.pop().unwrap();
        let mut w = eps.pop().unwrap();
        drop(server_ep);
        let err = sync_round(&mut w, 1, 0, SyncRequest::Pull).unwrap_err();
        assert_eq!(err, TransportError::PeerUnreachable { peer: 1 });
    }
}
