//! The [`Transport`] abstraction: everything the parameter servers,
//! collectives, and trainer need from a message fabric, factored out of
//! [`Endpoint`](crate::fabric::Endpoint) so the same algorithm code runs
//! unchanged over in-process channels or real TCP sockets
//! (`selsync-net`).

use crate::error::TransportError;
use crate::fabric::{Msg, Payload};
use crate::stats::CommStats;
use std::sync::Arc;
use std::time::Duration;

/// One rank's handle on a fully-connected message fabric.
///
/// Semantics every implementation must provide, matching the channel
/// fabric the algorithms were written against:
///
/// * `send` is non-blocking and never reorders messages between a fixed
///   (sender, receiver) pair;
/// * `recv_tagged` buffers non-matching messages instead of dropping
///   them, preserving arrival order for later receives;
/// * self-send (`to == id()`) loops back through the receive path;
/// * every sent payload is counted in `stats()` at exactly
///   [`Payload::wire_bytes`] bytes, and every message drained off the
///   fabric is counted once as received;
/// * faults (dead peers, deadlines, teardown) surface as
///   [`TransportError`] values, never panics, so callers can evict,
///   retry, or shut down gracefully.
pub trait Transport {
    /// This rank's id (workers `0..n`, server `n` by convention).
    fn id(&self) -> usize;

    /// Number of ranks in the fabric (including this one).
    fn fabric_size(&self) -> usize;

    /// Byte/message counters for traffic this handle observes.
    fn stats(&self) -> &Arc<CommStats>;

    /// Send `payload` to rank `to` with tag `tag`.
    ///
    /// Takes `&mut self` so fault-injection wrappers can keep
    /// per-destination state; plain fabrics don't need the mutability.
    ///
    /// # Errors
    /// [`TransportError::PeerUnreachable`] if `to`'s endpoint is gone,
    /// [`TransportError::Closed`] if this endpoint was torn down.
    ///
    /// # Panics
    /// Panics if `to` is out of range — an addressing bug, not a fault.
    fn send(&mut self, to: usize, tag: u64, payload: Payload) -> Result<(), TransportError>;

    /// Blocking receive of the next message regardless of tag/sender.
    ///
    /// # Errors
    /// [`TransportError::Closed`] if the fabric is torn down.
    fn recv_any(&mut self) -> Result<Msg, TransportError>;

    /// Blocking receive of the next message matching `tag` (and `from`,
    /// if given). Non-matching messages are buffered, preserving order.
    ///
    /// # Errors
    /// [`TransportError::Closed`] if the fabric is torn down;
    /// implementations with a watchdog may also return
    /// [`TransportError::RecvTimeout`].
    fn recv_tagged(&mut self, from: Option<usize>, tag: u64) -> Result<Msg, TransportError>;

    /// Blocking receive with an explicit deadline: the next message
    /// matching `from`/`tag` (either may be `None` = wildcard), or
    /// [`TransportError::RecvTimeout`] once `timeout` elapses without a
    /// match. Non-matching messages are buffered, preserving order.
    ///
    /// This is the liveness primitive: the elastic parameter server uses
    /// it to detect dead workers without stalling the round forever.
    ///
    /// # Errors
    /// `RecvTimeout` on deadline, `Closed` if the fabric is torn down.
    fn recv_deadline(
        &mut self,
        from: Option<usize>,
        tag: Option<u64>,
        timeout: Duration,
    ) -> Result<Msg, TransportError>;

    /// Non-blocking receive of any message (buffered first).
    fn try_recv(&mut self) -> Option<Msg>;
}

/// A mutable reference to a transport is itself a transport, so
/// by-value APIs (`run_server_rank(ep, ...)`) can be driven through a
/// wrapper the caller keeps — e.g. to read a fault log after the run.
impl<T: Transport> Transport for &mut T {
    fn id(&self) -> usize {
        (**self).id()
    }

    fn fabric_size(&self) -> usize {
        (**self).fabric_size()
    }

    fn stats(&self) -> &Arc<CommStats> {
        (**self).stats()
    }

    fn send(&mut self, to: usize, tag: u64, payload: Payload) -> Result<(), TransportError> {
        (**self).send(to, tag, payload)
    }

    fn recv_any(&mut self) -> Result<Msg, TransportError> {
        (**self).recv_any()
    }

    fn recv_tagged(&mut self, from: Option<usize>, tag: u64) -> Result<Msg, TransportError> {
        (**self).recv_tagged(from, tag)
    }

    fn recv_deadline(
        &mut self,
        from: Option<usize>,
        tag: Option<u64>,
        timeout: Duration,
    ) -> Result<Msg, TransportError> {
        (**self).recv_deadline(from, tag, timeout)
    }

    fn try_recv(&mut self) -> Option<Msg> {
        (**self).try_recv()
    }
}

impl Transport for crate::fabric::Endpoint {
    fn id(&self) -> usize {
        crate::fabric::Endpoint::id(self)
    }

    fn fabric_size(&self) -> usize {
        crate::fabric::Endpoint::fabric_size(self)
    }

    fn stats(&self) -> &Arc<CommStats> {
        crate::fabric::Endpoint::stats(self)
    }

    fn send(&mut self, to: usize, tag: u64, payload: Payload) -> Result<(), TransportError> {
        crate::fabric::Endpoint::send(self, to, tag, payload)
    }

    fn recv_any(&mut self) -> Result<Msg, TransportError> {
        crate::fabric::Endpoint::recv_any(self)
    }

    fn recv_tagged(&mut self, from: Option<usize>, tag: u64) -> Result<Msg, TransportError> {
        crate::fabric::Endpoint::recv_tagged(self, from, tag)
    }

    fn recv_deadline(
        &mut self,
        from: Option<usize>,
        tag: Option<u64>,
        timeout: Duration,
    ) -> Result<Msg, TransportError> {
        crate::fabric::Endpoint::recv_deadline(self, from, tag, timeout)
    }

    fn try_recv(&mut self) -> Option<Msg> {
        crate::fabric::Endpoint::try_recv(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;

    fn ping<T: Transport>(a: &mut T, b: &mut T) {
        a.send(b.id(), 9, Payload::Control(1)).unwrap();
        let m = b.recv_tagged(Some(a.id()), 9).unwrap();
        assert_eq!(m.payload, Payload::Control(1));
    }

    #[test]
    fn endpoint_satisfies_the_trait() {
        let mut eps = Fabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        assert_eq!(Transport::id(&a), 0);
        assert_eq!(Transport::fabric_size(&a), 2);
        ping(&mut a, &mut b);
        assert_eq!(Transport::stats(&a).total_messages(), 1);
    }

    #[test]
    fn deadline_receive_through_the_trait() {
        let mut eps = Fabric::new(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, 4, Payload::Control(7)).unwrap();
        let m = Transport::recv_deadline(&mut b, Some(0), Some(4), Duration::from_secs(1)).unwrap();
        assert_eq!(m.payload, Payload::Control(7));
        let err =
            Transport::recv_deadline(&mut b, None, Some(5), Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, TransportError::RecvTimeout { .. }));
    }
}
