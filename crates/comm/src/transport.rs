//! The [`Transport`] abstraction: everything the parameter servers,
//! collectives, and trainer need from a message fabric, factored out of
//! [`Endpoint`](crate::fabric::Endpoint) so the same algorithm code runs
//! unchanged over in-process channels or real TCP sockets
//! (`selsync-net`).

use crate::fabric::{Msg, Payload};
use crate::stats::CommStats;
use std::sync::Arc;

/// One rank's handle on a fully-connected message fabric.
///
/// Semantics every implementation must provide, matching the channel
/// fabric the algorithms were written against:
///
/// * `send` is non-blocking and never reorders messages between a fixed
///   (sender, receiver) pair;
/// * `recv_tagged` buffers non-matching messages instead of dropping
///   them, preserving arrival order for later receives;
/// * self-send (`to == id()`) loops back through the receive path;
/// * every sent payload is counted in `stats()` at exactly
///   [`Payload::wire_bytes`] bytes.
pub trait Transport {
    /// This rank's id (workers `0..n`, server `n` by convention).
    fn id(&self) -> usize;

    /// Number of ranks in the fabric (including this one).
    fn fabric_size(&self) -> usize;

    /// Byte/message counters for traffic this handle observes.
    fn stats(&self) -> &Arc<CommStats>;

    /// Send `payload` to rank `to` with tag `tag`.
    ///
    /// # Panics
    /// Panics if `to` is out of range or the fabric is torn down.
    fn send(&self, to: usize, tag: u64, payload: Payload);

    /// Blocking receive of the next message regardless of tag/sender.
    fn recv_any(&mut self) -> Msg;

    /// Blocking receive of the next message matching `tag` (and `from`,
    /// if given). Non-matching messages are buffered, preserving order.
    fn recv_tagged(&mut self, from: Option<usize>, tag: u64) -> Msg;

    /// Non-blocking receive of any message (buffered first).
    fn try_recv(&mut self) -> Option<Msg>;
}

impl Transport for crate::fabric::Endpoint {
    fn id(&self) -> usize {
        crate::fabric::Endpoint::id(self)
    }

    fn fabric_size(&self) -> usize {
        crate::fabric::Endpoint::fabric_size(self)
    }

    fn stats(&self) -> &Arc<CommStats> {
        crate::fabric::Endpoint::stats(self)
    }

    fn send(&self, to: usize, tag: u64, payload: Payload) {
        crate::fabric::Endpoint::send(self, to, tag, payload)
    }

    fn recv_any(&mut self) -> Msg {
        crate::fabric::Endpoint::recv_any(self)
    }

    fn recv_tagged(&mut self, from: Option<usize>, tag: u64) -> Msg {
        crate::fabric::Endpoint::recv_tagged(self, from, tag)
    }

    fn try_recv(&mut self) -> Option<Msg> {
        crate::fabric::Endpoint::try_recv(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;

    fn ping<T: Transport>(a: &mut T, b: &mut T) {
        a.send(b.id(), 9, Payload::Control(1));
        let m = b.recv_tagged(Some(a.id()), 9);
        assert_eq!(m.payload, Payload::Control(1));
    }

    #[test]
    fn endpoint_satisfies_the_trait() {
        let mut eps = Fabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        assert_eq!(Transport::id(&a), 0);
        assert_eq!(Transport::fabric_size(&a), 2);
        ping(&mut a, &mut b);
        assert_eq!(Transport::stats(&a).total_messages(), 1);
    }
}
