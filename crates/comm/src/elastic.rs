//! Elastic membership: liveness tracking, worker eviction, and
//! checkpoint-based rejoin, all coordinated by the parameter server.
//!
//! In elastic mode every training step routes its SelSync flags exchange
//! through the PS instead of a worker-to-worker allgather — the per-step
//! flags round doubles as a **heartbeat**. The server collects each
//! round with a deadline; a worker that keeps missing deadlines (crash,
//! partition, pathological straggling) is **evicted** and the survivors
//! learn about it in the very next status vector, re-partition the
//! dataset deterministically, and keep training. An evicted (or
//! late-starting) worker can **rejoin** with [`join_request`], receiving
//! the resume step, the current global parameters, and the membership.
//!
//! Protocol per step `s` (tags inside the step's [`phase_tag`] space):
//!
//! 1. *Flags/heartbeat round* at `phase_tag(s, FLAGS_PHASE)`: every
//!    live worker sends `Flags([my_bit])`; the server answers each
//!    contributor with a status vector (one byte per rank, see the
//!    `STATUS_*` constants). Workers that miss the round deadline are
//!    marked [`STATUS_MISSED`] and, after `max_missed` consecutive
//!    misses, [`STATUS_DEAD`].
//! 2. *Sync round* at `phase_tag(s, SYNC_PHASE)`, only if any status
//!    byte is [`STATUS_SYNC`]: every round-1 contributor pushes its
//!    parameters; the server averages (in rank order, so runs are
//!    bit-reproducible) and replies the new global to each.
//! 3. *Joins* (tag [`JOIN_TAG`]) are queued while a round is in flight
//!    and granted between rounds, so a joiner always starts at a clean
//!    step boundary.
//!
//! A worker that fell behind (its flags arrive at an old tag) gets an
//! immediate catch-up reply marking itself `STATUS_MISSED`, letting it
//! skip the sync it missed and sprint back to the current round.

use crate::collectives::{phase_tag, FLAGS_PHASE};
use crate::error::TransportError;
use crate::fabric::Payload;
use crate::ps::{average, CTRL_JOIN, CTRL_SHUTDOWN};
use crate::transport::Transport;
use std::collections::BTreeMap;
use std::time::Duration;

/// Tag reserved for join handshakes (outside every step's tag space).
pub const JOIN_TAG: u64 = u64::MAX - 1;

/// Phase used for the elastic parameter-sync round within a step.
pub const SYNC_PHASE: u64 = 0;

/// Status byte: rank is dead — evicted or finished; survivors must
/// re-partition without it.
pub const STATUS_DEAD: u8 = 0;
/// Status byte: rank is alive and did not request a sync this step.
pub const STATUS_ALIVE: u8 = 1;
/// Status byte: rank is alive and raised its sync flag this step.
pub const STATUS_SYNC: u8 = 2;
/// Status byte: rank is alive but missed this round's deadline; it is
/// skipped for this step's sync and may catch up or be evicted later.
pub const STATUS_MISSED: u8 = 3;

/// Liveness policy for the elastic server.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Deadline for each blocking receive while collecting a round; the
    /// clock restarts on every arriving message, so this bounds *silence*,
    /// not round length. Must comfortably exceed one training step.
    pub round_timeout: Duration,
    /// Consecutive missed rounds before a worker is evicted.
    pub max_missed: u32,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        Self {
            round_timeout: Duration::from_secs(1),
            max_missed: 3,
        }
    }
}

/// What the elastic server observed over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticReport {
    /// Global parameters after the last sync (or the init if none).
    pub final_params: Vec<f32>,
    /// `(step, rank)` evictions, in order.
    pub evictions: Vec<(u64, usize)>,
    /// `(resume_step, rank)` granted joins, in order.
    pub joins: Vec<(u64, usize)>,
    /// Completed parameter-sync rounds.
    pub syncs: u64,
    /// Heartbeat rounds driven to completion (≈ steps observed).
    pub rounds: u64,
}

/// What a joiner receives from [`join_request`].
#[derive(Debug, Clone, PartialEq)]
pub struct JoinGrant {
    /// First step the joiner should run.
    pub resume_step: u64,
    /// Current global parameters.
    pub params: Vec<f32>,
    /// Membership at grant time (status bytes, indexed by rank).
    pub status: Vec<u8>,
}

fn status_vec(
    n: usize,
    alive: &[bool],
    done: &[bool],
    bits: Option<&BTreeMap<usize, u8>>,
    missed_requester: usize,
) -> Vec<u8> {
    (0..n)
        .map(|i| {
            if !alive[i] || done[i] {
                STATUS_DEAD
            } else if i == missed_requester {
                STATUS_MISSED
            } else {
                match bits {
                    Some(b) => match b.get(&i) {
                        Some(&bit) if bit != 0 => STATUS_SYNC,
                        Some(_) => STATUS_ALIVE,
                        None => STATUS_MISSED,
                    },
                    None => STATUS_ALIVE,
                }
            }
        })
        .collect()
}

/// Run the elastic parameter server until every member has shut down or
/// been evicted. `on_sync(step, global)` fires after each completed
/// sync round — wire it to a checkpoint writer so joiners (and chaos
/// tests) can recover the latest global state.
///
/// # Errors
/// Propagates unrecoverable transport faults ([`TransportError::Closed`])
/// and protocol violations. Dead *workers* are not errors — they are
/// evicted and reported in the returned [`ElasticReport`].
pub fn run_elastic_server<T, F>(
    mut ep: T,
    n_workers: usize,
    init_params: Vec<f32>,
    cfg: &ElasticConfig,
    mut on_sync: F,
) -> Result<ElasticReport, TransportError>
where
    T: Transport,
    F: FnMut(u64, &[f32]),
{
    let n = n_workers;
    let mut alive = vec![true; n];
    let mut done = vec![false; n];
    let mut missed = vec![0u32; n];
    let mut global = init_params;
    let mut evictions: Vec<(u64, usize)> = Vec::new();
    let mut joins: Vec<(u64, usize)> = Vec::new();
    let mut syncs = 0u64;
    let mut step = 0u64;

    loop {
        if (0..n).all(|i| !alive[i] || done[i]) {
            break;
        }
        let ftag = phase_tag(step, FLAGS_PHASE);
        let mut bits: BTreeMap<usize, u8> = BTreeMap::new();
        let mut pending_joins: Vec<usize> = Vec::new();

        // ---- flags / heartbeat collection ----
        loop {
            let expected = (0..n).filter(|&i| alive[i] && !done[i]).count();
            if expected == 0 || bits.len() >= expected {
                break;
            }
            match ep.recv_deadline(None, None, cfg.round_timeout) {
                Err(TransportError::RecvTimeout { .. }) => {
                    for i in 0..n {
                        if alive[i] && !done[i] && !bits.contains_key(&i) {
                            missed[i] += 1;
                            if missed[i] >= cfg.max_missed {
                                alive[i] = false;
                                evictions.push((step, i));
                            }
                        }
                    }
                    break;
                }
                Err(e) => return Err(e),
                Ok(m) => {
                    let from = m.from;
                    if m.tag == JOIN_TAG {
                        if let Payload::Control(c) = m.payload {
                            if c == CTRL_JOIN {
                                pending_joins.push(from);
                            }
                        }
                        continue;
                    }
                    if !alive[from] {
                        // tell an evicted-but-alive sender its fate so it
                        // can stop waiting and rejoin or exit (best effort)
                        if matches!(m.payload, Payload::Flags(_)) {
                            let status = status_vec(n, &alive, &done, None, from);
                            let _ = ep.send(from, m.tag, Payload::Flags(status));
                        }
                        continue;
                    }
                    match (m.tag, m.payload) {
                        (t, Payload::Flags(b)) if t == ftag => {
                            bits.insert(from, b.first().copied().unwrap_or(0));
                        }
                        (t, Payload::Control(c)) if t == ftag && c == CTRL_SHUTDOWN => {
                            done[from] = true;
                            missed[from] = 0;
                        }
                        (t, Payload::Flags(_)) if t < ftag => {
                            // straggler catching up from an older step
                            let status = status_vec(n, &alive, &done, None, from);
                            let _ = ep.send(from, t, Payload::Flags(status));
                        }
                        (t, Payload::Control(c)) if t < ftag && c == CTRL_SHUTDOWN => {
                            done[from] = true;
                        }
                        (t, Payload::Params(_)) if t < ftag => {
                            // stale push from a sync round that already
                            // closed; unblock the sender with the global
                            let _ = ep.send(from, t, Payload::Params(global.clone()));
                        }
                        (t, p) => {
                            return Err(TransportError::Protocol(format!(
                                "elastic server: unexpected {p:?} at tag {t} \
                                 from rank {from} (round tag {ftag})"
                            )));
                        }
                    }
                }
            }
        }

        for &i in bits.keys() {
            missed[i] = 0;
        }
        let contributors: Vec<usize> = bits.keys().copied().collect();

        if !contributors.is_empty() {
            let any_sync = bits.values().any(|&b| b != 0);
            let status = status_vec(n, &alive, &done, Some(&bits), usize::MAX);
            for &i in &contributors {
                match ep.send(i, ftag, Payload::Flags(status.clone())) {
                    Ok(()) => {}
                    Err(TransportError::PeerUnreachable { .. }) => {
                        alive[i] = false;
                        evictions.push((step, i));
                    }
                    Err(e) => return Err(e),
                }
            }

            // ---- sync round: every contributor pushes, server averages ----
            if any_sync {
                let stag = phase_tag(step, SYNC_PHASE);
                let mut pushes: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
                loop {
                    let expected = contributors.iter().filter(|&&i| alive[i]).count();
                    if expected == 0 || pushes.len() >= expected {
                        break;
                    }
                    match ep.recv_deadline(None, None, cfg.round_timeout) {
                        Err(TransportError::RecvTimeout { .. }) => {
                            // a crash inside the sync window: evict at once,
                            // the partial average keeps the survivors moving
                            for &i in &contributors {
                                if alive[i] && !pushes.contains_key(&i) {
                                    alive[i] = false;
                                    evictions.push((step, i));
                                }
                            }
                            break;
                        }
                        Err(e) => return Err(e),
                        Ok(m) => {
                            let from = m.from;
                            if m.tag == JOIN_TAG {
                                if let Payload::Control(c) = m.payload {
                                    if c == CTRL_JOIN {
                                        pending_joins.push(from);
                                    }
                                }
                                continue;
                            }
                            if m.tag == stag && alive[from] && contributors.contains(&from) {
                                match m.payload {
                                    Payload::Params(v) => {
                                        pushes.insert(from, v);
                                    }
                                    p => {
                                        return Err(TransportError::Protocol(format!(
                                            "elastic server: expected Params at sync \
                                             tag {stag}, got {p:?} from rank {from}"
                                        )));
                                    }
                                }
                            }
                            // anything else mid-sync is stale traffic: drop
                        }
                    }
                }
                if !pushes.is_empty() {
                    let views: Vec<&[f32]> = pushes.values().map(|v| v.as_slice()).collect();
                    global = average(&views);
                    syncs += 1;
                    on_sync(step, &global);
                    let pushers: Vec<usize> = pushes.keys().copied().collect();
                    for i in pushers {
                        match ep.send(i, stag, Payload::Params(global.clone())) {
                            Ok(()) => {}
                            Err(TransportError::PeerUnreachable { .. }) => {
                                alive[i] = false;
                                evictions.push((step, i));
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
        }

        // ---- grant joins at the step boundary ----
        for r in pending_joins {
            if r < n && !done[r] && !alive[r] {
                alive[r] = true;
                missed[r] = 0;
                let resume = step + 1;
                let status = status_vec(n, &alive, &done, None, usize::MAX);
                let granted = ep.send(r, JOIN_TAG, Payload::Control(resume)).is_ok()
                    && ep
                        .send(r, JOIN_TAG, Payload::Params(global.clone()))
                        .is_ok()
                    && ep.send(r, JOIN_TAG, Payload::Flags(status)).is_ok();
                if granted {
                    joins.push((resume, r));
                } else {
                    alive[r] = false;
                    evictions.push((step, r));
                }
            }
        }

        step += 1;
    }

    Ok(ElasticReport {
        final_params: global,
        evictions,
        joins,
        syncs,
        rounds: step,
    })
}

/// Worker side of one heartbeat/flags round: send the local sync bit,
/// block for the membership status vector.
///
/// # Errors
/// [`TransportError::Evicted`] if the server reports this rank dead;
/// `RecvTimeout` if the server is silent past `reply_timeout` (set it
/// well above the server's `round_timeout` so a round stalled on a
/// crashed peer is not mistaken for a dead server).
pub fn heartbeat_round<T: Transport>(
    ep: &mut T,
    server: usize,
    step: u64,
    my_bit: u8,
    reply_timeout: Duration,
) -> Result<Vec<u8>, TransportError> {
    let tag = phase_tag(step, FLAGS_PHASE);
    ep.send(server, tag, Payload::Flags(vec![my_bit]))?;
    let me = ep.id();
    let m = ep.recv_deadline(Some(server), Some(tag), reply_timeout)?;
    match m.payload {
        Payload::Flags(status) => {
            if status.get(me).copied().unwrap_or(STATUS_DEAD) == STATUS_DEAD {
                Err(TransportError::Evicted { rank: me })
            } else {
                Ok(status)
            }
        }
        p => Err(TransportError::Protocol(format!(
            "heartbeat reply was {p:?}, expected Flags"
        ))),
    }
}

/// Worker side of the elastic sync round: push local parameters, block
/// for the averaged global.
///
/// # Errors
/// Propagates transport faults; `RecvTimeout` usually means this rank
/// was evicted mid-sync.
pub fn elastic_sync_round<T: Transport>(
    ep: &mut T,
    server: usize,
    step: u64,
    params: Vec<f32>,
    reply_timeout: Duration,
) -> Result<Vec<f32>, TransportError> {
    let tag = phase_tag(step, SYNC_PHASE);
    ep.send(server, tag, Payload::Params(params))?;
    let m = ep.recv_deadline(Some(server), Some(tag), reply_timeout)?;
    match m.payload {
        Payload::Params(v) => Ok(v),
        p => Err(TransportError::Protocol(format!(
            "sync reply was {p:?}, expected Params"
        ))),
    }
}

/// Tell the elastic server this worker is finished (fire-and-forget,
/// tagged with the step *after* the last one run).
///
/// # Errors
/// Propagates transport faults.
pub fn elastic_shutdown<T: Transport>(
    ep: &mut T,
    server: usize,
    step: u64,
) -> Result<(), TransportError> {
    ep.send(
        server,
        phase_tag(step, FLAGS_PHASE),
        Payload::Control(CTRL_SHUTDOWN),
    )
}

/// Ask the elastic server to (re)admit this rank. Blocks until the
/// grant: resume step, current global parameters, and membership.
///
/// # Errors
/// `RecvTimeout` if the server never answers (training already over);
/// `Protocol` on a malformed grant.
pub fn join_request<T: Transport>(
    ep: &mut T,
    server: usize,
    reply_timeout: Duration,
) -> Result<JoinGrant, TransportError> {
    ep.send(server, JOIN_TAG, Payload::Control(CTRL_JOIN))?;
    let resume_step = match ep
        .recv_deadline(Some(server), Some(JOIN_TAG), reply_timeout)?
        .payload
    {
        Payload::Control(s) => s,
        p => {
            return Err(TransportError::Protocol(format!(
                "join grant began with {p:?}, expected Control(resume_step)"
            )))
        }
    };
    let params = match ep
        .recv_deadline(Some(server), Some(JOIN_TAG), reply_timeout)?
        .payload
    {
        Payload::Params(v) => v,
        p => {
            return Err(TransportError::Protocol(format!(
                "join grant missing Params, got {p:?}"
            )))
        }
    };
    let status = match ep
        .recv_deadline(Some(server), Some(JOIN_TAG), reply_timeout)?
        .payload
    {
        Payload::Flags(s) => s,
        p => {
            return Err(TransportError::Protocol(format!(
                "join grant missing Flags, got {p:?}"
            )))
        }
    };
    Ok(JoinGrant {
        resume_step,
        params,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use std::thread;

    const REPLY: Duration = Duration::from_secs(5);

    #[test]
    fn periodic_sync_rounds_average_across_members() {
        let n = 3;
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let cfg = ElasticConfig {
            round_timeout: Duration::from_millis(500),
            max_missed: 3,
        };
        let server = thread::spawn(move || {
            run_elastic_server(server_ep, n, vec![0.0; 4], &cfg, |_, _| {}).unwrap()
        });
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let id = ep.id();
                    let mut last_sync = Vec::new();
                    for step in 0..6u64 {
                        let bit = u8::from(step % 3 == 0);
                        let status = heartbeat_round(&mut ep, n, step, bit, REPLY).unwrap();
                        assert_eq!(status.len(), n);
                        if status.contains(&STATUS_SYNC) {
                            last_sync =
                                elastic_sync_round(&mut ep, n, step, vec![id as f32; 4], REPLY)
                                    .unwrap();
                        }
                    }
                    elastic_shutdown(&mut ep, n, 6).unwrap();
                    last_sync
                })
            })
            .collect();
        for h in handles {
            // avg(0, 1, 2) = 1.0 on every member after the last sync
            assert_eq!(h.join().unwrap(), vec![1.0; 4]);
        }
        let report = server.join().unwrap();
        assert_eq!(report.syncs, 2, "steps 0 and 3 raised the flag");
        assert!(report.evictions.is_empty());
        assert!(report.joins.is_empty());
        assert_eq!(report.final_params, vec![1.0; 4]);
    }

    #[test]
    fn silent_worker_is_evicted_and_survivors_finish() {
        let n = 3;
        let steps = 8u64;
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let cfg = ElasticConfig {
            round_timeout: Duration::from_millis(100),
            max_missed: 2,
        };
        let server = thread::spawn(move || {
            run_elastic_server(server_ep, n, vec![0.0], &cfg, |_, _| {}).unwrap()
        });
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let id = ep.id();
                    let mut dead_seen_at = None;
                    for step in 0..steps {
                        if id == 2 && step == 2 {
                            return dead_seen_at; // crash: drop the endpoint
                        }
                        let bit = u8::from(step == 5);
                        let status = heartbeat_round(&mut ep, n, step, bit, REPLY).unwrap();
                        if status[2] == STATUS_DEAD && dead_seen_at.is_none() {
                            dead_seen_at = Some(step);
                        }
                        if status.contains(&STATUS_SYNC) {
                            elastic_sync_round(&mut ep, n, step, vec![id as f32], REPLY).unwrap();
                        }
                    }
                    elastic_shutdown(&mut ep, n, steps).unwrap();
                    dead_seen_at
                })
            })
            .collect();
        let mut survivor_saw_death = Vec::new();
        for h in handles {
            if let Some(step) = h.join().unwrap() {
                survivor_saw_death.push(step);
            }
        }
        let report = server.join().unwrap();
        assert_eq!(report.evictions.len(), 1);
        let (evict_step, evicted_rank) = report.evictions[0];
        assert_eq!(evicted_rank, 2);
        assert!(
            (2..steps).contains(&evict_step),
            "evicted after its crash step, got {evict_step}"
        );
        assert_eq!(
            survivor_saw_death,
            vec![evict_step, evict_step],
            "both survivors saw the death in the eviction round's status"
        );
        assert_eq!(report.syncs, 1, "step-5 sync completed among survivors");
        // avg of ranks 0 and 1
        assert_eq!(report.final_params, vec![0.5]);
    }

    #[test]
    fn evicted_worker_can_rejoin_and_finish() {
        let n = 2;
        let steps = 100u64;
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let cfg = ElasticConfig {
            round_timeout: Duration::from_millis(80),
            max_missed: 2,
        };
        let server = thread::spawn(move || {
            run_elastic_server(server_ep, n, vec![7.0], &cfg, |_, _| {}).unwrap()
        });
        let mut rejoiner = eps.pop().unwrap(); // rank 1
        let mut steady = eps.pop().unwrap(); // rank 0
        let steady_h = thread::spawn(move || {
            for step in 0..steps {
                heartbeat_round(&mut steady, n, step, 0, REPLY).unwrap();
                thread::sleep(Duration::from_millis(10));
            }
            elastic_shutdown(&mut steady, n, steps).unwrap();
        });
        let rejoin_h = thread::spawn(move || {
            for step in 0..3u64 {
                heartbeat_round(&mut rejoiner, n, step, 0, REPLY).unwrap();
            }
            // go dark long enough to be evicted, then come back
            thread::sleep(Duration::from_millis(400));
            let grant = join_request(&mut rejoiner, n, REPLY).unwrap();
            assert_eq!(grant.params, vec![7.0], "no sync ran; global is the init");
            assert_eq!(grant.status[1], STATUS_ALIVE, "readmitted before resuming");
            assert!(grant.resume_step > 3);
            for step in grant.resume_step..steps {
                heartbeat_round(&mut rejoiner, n, step, 0, REPLY).unwrap();
            }
            elastic_shutdown(&mut rejoiner, n, steps).unwrap();
            grant.resume_step
        });
        steady_h.join().unwrap();
        let resume_step = rejoin_h.join().unwrap();
        let report = server.join().unwrap();
        assert_eq!(report.evictions.len(), 1);
        assert_eq!(report.evictions[0].1, 1);
        assert_eq!(report.joins, vec![(resume_step, 1)]);
        assert_eq!(
            report.rounds,
            steps + 1,
            "all rounds plus the shutdown round"
        );
    }
}
