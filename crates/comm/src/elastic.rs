//! Elastic membership: liveness tracking, worker eviction,
//! checkpoint-based rejoin, and — new in the failover revision — a
//! **resumable** parameter server with a hot-standby protocol, all
//! coordinated over the same per-step heartbeat.
//!
//! In elastic mode every training step routes its SelSync flags exchange
//! through the PS instead of a worker-to-worker allgather — the per-step
//! flags round doubles as a **heartbeat**. The server collects each
//! round with a deadline; a worker that keeps missing deadlines (crash,
//! partition, pathological straggling) is **evicted** and the survivors
//! learn about it in the very next status vector, re-partition the
//! dataset deterministically, and keep training. An evicted (or
//! late-starting) worker can **rejoin** with [`join_request`], receiving
//! the resume step, the current global parameters, and the membership.
//!
//! Protocol per step `s` (tags inside the step's [`phase_tag`] space):
//!
//! 1. *Flags/heartbeat round* at `phase_tag(s, FLAGS_PHASE)`: every
//!    live worker sends `Flags([my_bit])`; the server answers each
//!    contributor with a status vector (one byte per rank, see the
//!    `STATUS_*` constants). Workers that miss the round deadline are
//!    marked [`STATUS_MISSED`] and, after `max_missed` consecutive
//!    misses, [`STATUS_DEAD`].
//! 2. *Sync round* at `phase_tag(s, SYNC_PHASE)`, only if any status
//!    byte is [`STATUS_SYNC`]: every round-1 contributor pushes its
//!    parameters; the server averages (in rank order, so runs are
//!    bit-reproducible) and replies the new global to each.
//! 3. *Joins* (tag [`JOIN_TAG`]) are queued while a round is in flight
//!    and granted between rounds, so a joiner always starts at a clean
//!    step boundary.
//!
//! A worker that fell behind (its flags arrive at an old tag) gets an
//! immediate catch-up reply marking itself `STATUS_MISSED`, letting it
//! skip the sync it missed and sprint back to the current round.
//!
//! ## Recovery
//!
//! [`run_elastic_server_from`] restarts the server from a [`ServerState`]
//! (loaded from a durable checkpoint, or shadowed by a standby). Because
//! `on_sync` fires *before* the sync replies are sent (write-ahead
//! ordering), a restart from the last durable state always lands on one
//! of three worker configurations, and the loop tolerates each:
//!
//! * workers blocked in a **later flags round** than the resumed step —
//!   their flags carry a future tag; with nothing collected yet the
//!   server *fast-forwards* its round counter to the earliest future
//!   step seen (nothing in the skipped rounds had durable effects);
//! * workers blocked **mid-sync at the resumed round** — their re-sent
//!   pushes arrive during flags collection ("early pushes"); the server
//!   counts them as sync contributors and seeds the sync round with
//!   them, reproducing the interrupted average bit-for-bit;
//! * workers blocked **mid-sync at the round before** the resumed step
//!   (the checkpoint was written but its replies were lost) — their
//!   re-sent pushes arrive at a stale tag and draw the recovered global,
//!   which *is* that round's average.
//!
//! ## Hot standby
//!
//! A standby rank ([`run_standby_server`]) shadows every sync round's
//! state via a [`STANDBY_TAG`] triple (`Control(step)`, `Params`,
//! `Flags(membership)`) and promotes itself to a full server the moment
//! workers start addressing it — which they only do after their own
//! failover patience on the primary expires.

use crate::bucket::BucketAssembler;
use crate::collectives::{phase_tag, tag_step, FLAGS_PHASE};
use crate::error::TransportError;
use crate::fabric::{FlatVec, Payload, ShardSpec};
use crate::ps::{average, CTRL_JOIN, CTRL_SHUTDOWN};
use crate::transport::Transport;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Tag reserved for join handshakes (outside every step's tag space).
pub const JOIN_TAG: u64 = u64::MAX - 1;

/// Tag reserved for PS→standby shadow updates.
pub const STANDBY_TAG: u64 = u64::MAX - 2;

/// Tag reserved for the shard-map agreement handshake (outside every
/// step's tag space): a worker sends its locally computed
/// [`Payload::ShardMap`] to a shard server, which echoes its own map
/// back. The worker errors out on any mismatch, so no parameter
/// sub-frame ever flows under a disputed partition.
pub const SHARD_MAP_TAG: u64 = u64::MAX - 3;

/// `Control` value (on [`STANDBY_TAG`]) telling the standby the run
/// ended cleanly and it will never be promoted. Outside the valid step
/// range, so it cannot collide with a shadowed sync step.
pub const STANDBY_RETIRE: u64 = u64::MAX;

/// Phase used for the elastic parameter-sync round within a step.
pub const SYNC_PHASE: u64 = 0;

/// Status byte: rank is dead — evicted or finished; survivors must
/// re-partition without it.
pub const STATUS_DEAD: u8 = 0;
/// Status byte: rank is alive and did not request a sync this step.
pub const STATUS_ALIVE: u8 = 1;
/// Status byte: rank is alive and raised its sync flag this step.
pub const STATUS_SYNC: u8 = 2;
/// Status byte: rank is alive but missed this round's deadline; it is
/// skipped for this step's sync and may catch up or be evicted later.
pub const STATUS_MISSED: u8 = 3;

/// Scheduled server death, used by the chaos harness to exercise the
/// recovery path deterministically inside one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerCrashPoint {
    /// Die at the start of the first round with step ≥ the given step —
    /// before collecting any flags (a "mid-run" kill).
    RoundStart(u64),
    /// Die during the first sync at step ≥ the given step: after the
    /// pushes are consumed and averaged, but *before* the checkpoint
    /// callback runs or any reply is sent — the most adversarial point,
    /// equivalent to a kill mid-checkpoint-write.
    MidSync(u64),
}

/// Liveness policy for the elastic server.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Deadline for each blocking receive while collecting a round; the
    /// clock restarts on every arriving message, so this bounds *silence*,
    /// not round length. Must comfortably exceed one training step.
    pub round_timeout: Duration,
    /// Consecutive missed rounds before a worker is evicted.
    pub max_missed: u32,
    /// Rank of a hot-standby server to shadow state to after every sync
    /// (and to retire on clean shutdown).
    pub standby: Option<usize>,
    /// Simulated server death for chaos/fault experiments.
    pub crash: Option<ServerCrashPoint>,
    /// When serving one shard of a range-partitioned PS group: the
    /// partition map this server computed locally. Enables the sharded
    /// wire protocol ([`Payload::ShardPush`] pushes, [`Payload::ShardPull`]
    /// replies) and the [`SHARD_MAP_TAG`] agreement handshake, under
    /// which the server echoes this map so every worker can prove it
    /// partitioned identically. `None` = monolithic server (unchanged
    /// behavior).
    pub shard_map: Option<ShardSpec>,
    /// Initial window during which collection timeouts neither count as
    /// missed rounds nor advance the step. A restarted or promoted
    /// server sets this to cover the workers' resend budget: their
    /// in-flight requests died with the old server, so the first
    /// evidence of life can take a full reply timeout to arrive — two,
    /// when the first resend is swallowed by the dying kernel socket
    /// before the reset surfaces. The window is adaptive: each *first*
    /// contact from a member extends it by one `resume_grace` unit
    /// (the stragglers' next resend is at most one cycle away), and it
    /// ends early once every live member has reported in, restoring
    /// normal eviction latency.
    pub resume_grace: Duration,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        Self {
            round_timeout: Duration::from_secs(1),
            max_missed: 3,
            standby: None,
            crash: None,
            shard_map: None,
            resume_grace: Duration::ZERO,
        }
    }
}

/// The elastic server's recoverable state: everything a restarted or
/// promoted server needs to continue a run. Snapshots of this are handed
/// to the `on_sync` callback after every sync round (with write-ahead
/// ordering: before the sync replies go out), so persisting them yields
/// a checkpoint from which [`run_elastic_server_from`] resumes
/// bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerState {
    /// Next round/step the server will run.
    pub step: u64,
    /// Completed sync rounds.
    pub syncs: u64,
    /// Current global parameters.
    pub global: Vec<f32>,
    /// Which worker ranks are members (not evicted).
    pub alive: Vec<bool>,
    /// Which worker ranks shut down cleanly.
    pub done: Vec<bool>,
    /// `(step, rank)` evictions so far.
    pub evictions: Vec<(u64, usize)>,
    /// `(resume_step, rank)` joins so far.
    pub joins: Vec<(u64, usize)>,
}

impl ServerState {
    /// The state of a brand-new run: step 0, everyone alive, the seeded
    /// initial parameters.
    pub fn fresh(n_workers: usize, init_params: Vec<f32>) -> Self {
        ServerState {
            step: 0,
            syncs: 0,
            global: init_params,
            alive: vec![true; n_workers],
            done: vec![false; n_workers],
            evictions: Vec::new(),
            joins: Vec::new(),
        }
    }
}

/// What the elastic server observed over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticReport {
    /// Global parameters after the last sync (or the init if none).
    pub final_params: Vec<f32>,
    /// `(step, rank)` evictions, in order.
    pub evictions: Vec<(u64, usize)>,
    /// `(resume_step, rank)` granted joins, in order.
    pub joins: Vec<(u64, usize)>,
    /// Completed parameter-sync rounds.
    pub syncs: u64,
    /// Heartbeat rounds driven to completion (≈ steps observed).
    pub rounds: u64,
    /// True if the server exited via a scheduled [`ServerCrashPoint`]
    /// instead of a clean shutdown; the report then reflects the dying
    /// server's volatile state, not durable truth.
    pub crashed: bool,
}

/// What a joiner receives from [`join_request`].
#[derive(Debug, Clone, PartialEq)]
pub struct JoinGrant {
    /// First step the joiner should run.
    pub resume_step: u64,
    /// Current global parameters.
    pub params: Vec<f32>,
    /// Membership at grant time (status bytes, indexed by rank).
    pub status: Vec<u8>,
}

fn status_vec(
    n: usize,
    alive: &[bool],
    done: &[bool],
    bits: Option<&BTreeMap<usize, u8>>,
    missed_requester: usize,
) -> Vec<u8> {
    (0..n)
        .map(|i| {
            if !alive[i] || done[i] {
                STATUS_DEAD
            } else if i == missed_requester {
                STATUS_MISSED
            } else {
                match bits {
                    Some(b) => match b.get(&i) {
                        Some(&bit) if bit != 0 => STATUS_SYNC,
                        Some(_) => STATUS_ALIVE,
                        None => STATUS_MISSED,
                    },
                    None => STATUS_ALIVE,
                }
            }
        })
        .collect()
}

/// Deterministic range partition of a flat parameter vector of `total`
/// elements across `k` shards: shard `i` owns the contiguous range
/// `starts[i] .. starts[i+1]` (or `total` for the last shard), with
/// every shard sized `ceil(total / k)` except possibly the tail. A pure
/// function of `(total, k)`, so every rank computes the identical map
/// with no coordination — the [`SHARD_MAP_TAG`] handshake then *proves*
/// the agreement instead of establishing it.
///
/// # Panics
/// Panics on `k == 0` — a configuration bug, not a runtime fault.
pub fn shard_starts(total: u64, k: usize) -> Vec<u64> {
    assert!(k > 0, "shard count must be positive");
    let chunk = total.div_ceil(k as u64).max(1);
    (0..k as u64).map(|i| (i * chunk).min(total)).collect()
}

/// Membership encoded for the standby shadow: bit 0 = alive, bit 1 =
/// done (richer than the worker-facing status bytes, which cannot tell
/// "finished" from "evicted").
fn membership_bytes(alive: &[bool], done: &[bool]) -> Vec<u8> {
    alive
        .iter()
        .zip(done)
        .map(|(a, d)| u8::from(*a) | (u8::from(*d) << 1))
        .collect()
}

/// Run the elastic parameter server for a brand-new run (state
/// [`ServerState::fresh`]). `on_sync(state)` fires after each completed
/// sync round, *before* the sync replies go out — wire it to a
/// checkpoint writer so a killed server restarts from its last durable
/// sync via [`run_elastic_server_from`].
///
/// # Errors
/// Propagates unrecoverable transport faults ([`TransportError::Closed`])
/// and protocol violations. Dead *workers* are not errors — they are
/// evicted and reported in the returned [`ElasticReport`].
pub fn run_elastic_server<T, F>(
    ep: T,
    n_workers: usize,
    init_params: Vec<f32>,
    cfg: &ElasticConfig,
    on_sync: F,
) -> Result<ElasticReport, TransportError>
where
    T: Transport,
    F: FnMut(&ServerState),
{
    run_elastic_server_from(ep, ServerState::fresh(n_workers, init_params), cfg, on_sync)
}

/// Run the elastic parameter server from a recovered [`ServerState`]
/// (checkpoint resume or standby promotion). See the module docs for the
/// three worker configurations a restart can find and how each is
/// reconciled.
///
/// # Errors
/// As [`run_elastic_server`].
#[allow(clippy::too_many_lines)]
/// Record a member's first message since a resume/promotion and adjust
/// the grace window: extend it by one `resume_grace` unit while other
/// members are still silent (their next resend is at most one cycle
/// away), end it as soon as every live member has reported in. An
/// already-expired window is never resurrected.
fn note_contact(
    grace_until: &mut Option<Instant>,
    heard: &mut [bool],
    alive: &[bool],
    done: &[bool],
    from: usize,
    resume_grace: Duration,
) {
    let Some(g) = *grace_until else { return };
    if Instant::now() >= g {
        *grace_until = None;
        return;
    }
    if from >= heard.len() || heard[from] {
        return;
    }
    heard[from] = true;
    if (0..heard.len()).all(|i| heard[i] || !alive[i] || done[i]) {
        *grace_until = None;
    } else {
        let horizon = Instant::now() + resume_grace;
        if g < horizon {
            *grace_until = Some(horizon);
        }
    }
}

pub fn run_elastic_server_from<T, F>(
    mut ep: T,
    state: ServerState,
    cfg: &ElasticConfig,
    mut on_sync: F,
) -> Result<ElasticReport, TransportError>
where
    T: Transport,
    F: FnMut(&ServerState),
{
    let ServerState {
        mut step,
        mut syncs,
        mut global,
        mut alive,
        mut done,
        mut evictions,
        mut joins,
    } = state;
    let n = alive.len();
    let mut missed = vec![0u32; n];
    let mut crashed = false;
    // A recovering server must outwait the workers' resend budget before
    // judging silence: their in-flight rounds died with the predecessor.
    // See `ElasticConfig::resume_grace` for the adaptive-extension rules
    // `note_contact` applies as members report back in.
    let mut grace_until =
        (cfg.resume_grace > Duration::ZERO).then(|| Instant::now() + cfg.resume_grace);
    let mut heard_since_start = vec![false; n];
    // Traffic from rounds ahead of this one (recovery: the server
    // restarted behind the workers). Keyed by step.
    let mut future_flags: BTreeMap<u64, BTreeMap<usize, u8>> = BTreeMap::new();
    let mut future_pushes: BTreeMap<u64, BTreeMap<usize, Vec<f32>>> = BTreeMap::new();
    let mut pending_joins: Vec<usize> = Vec::new();
    // Bucketed parameter pushes (DESIGN.md §12): partial Bucket frames
    // assemble per (tag, sender); only *completed* sets enter the
    // protocol below, as ordinary Params pushes, so every arm still
    // sees whole vectors. A retrying worker resends its complete set
    // and duplicate frames overwrite, making assembly idempotent under
    // the failover policy.
    let mut bucket_asm: BTreeMap<(u64, usize), BucketAssembler> = BTreeMap::new();

    'run: loop {
        if (0..n).all(|i| !alive[i] || done[i]) {
            break;
        }
        if let Some(ServerCrashPoint::RoundStart(s)) = cfg.crash {
            if step >= s {
                crashed = true;
                break;
            }
        }
        let ftag = phase_tag(step, FLAGS_PHASE);
        let stag = phase_tag(step, SYNC_PHASE);
        // drop bucket partials from rounds that already closed — a
        // retrying worker resends its complete set, so nothing is lost
        bucket_asm.retain(|&(t, _), a| a.in_progress() && tag_step(t) + 1 >= step);
        // seed the round with any buffered traffic that raced ahead
        let mut bits: BTreeMap<usize, u8> = future_flags.remove(&step).unwrap_or_default();
        let mut early_pushes: BTreeMap<usize, Vec<f32>> =
            future_pushes.remove(&step).unwrap_or_default();
        future_flags.retain(|&s, _| s > step);
        future_pushes.retain(|&s, _| s > step);
        bits.retain(|&i, _| alive[i] && !done[i]);
        early_pushes.retain(|&i, _| alive[i] && !done[i]);
        let mut jump: Option<u64> = None;

        // ---- flags / heartbeat collection ----
        loop {
            let expected = (0..n).filter(|&i| alive[i] && !done[i]).count();
            let heard = bits.len()
                + early_pushes
                    .keys()
                    .filter(|i| !bits.contains_key(i))
                    .count();
            if expected == 0 || heard >= expected {
                break;
            }
            match ep.recv_deadline(None, None, cfg.round_timeout) {
                Err(TransportError::RecvTimeout { .. }) => {
                    if grace_until.is_some_and(|g| Instant::now() < g) {
                        continue;
                    }
                    let mut evicted_now = false;
                    for i in 0..n {
                        if alive[i]
                            && !done[i]
                            && !bits.contains_key(&i)
                            && !early_pushes.contains_key(&i)
                        {
                            missed[i] += 1;
                            if missed[i] >= cfg.max_missed {
                                alive[i] = false;
                                evictions.push((step, i));
                                evicted_now = true;
                            }
                        }
                    }
                    // A round nobody joined is a liveness tick, not a
                    // round: closing it would free-run this server's
                    // step past workers that are alive but stalled
                    // elsewhere (sharded: on a sibling shard's
                    // recovery), stranding all their later traffic in
                    // the stale arms — whose status replies carry no
                    // sync bits, so the group can never agree on a sync
                    // again. Keep collecting at this step; the `missed`
                    // counters above still age silent workers toward
                    // eviction, which is the only thing an empty round
                    // was good for.
                    if bits.is_empty() && early_pushes.is_empty() && !evicted_now {
                        continue;
                    }
                    break;
                }
                Err(e) => return Err(e),
                Ok(m) => {
                    let from = m.from;
                    note_contact(
                        &mut grace_until,
                        &mut heard_since_start,
                        &alive,
                        &done,
                        from,
                        cfg.resume_grace,
                    );
                    if m.tag == JOIN_TAG {
                        if let Payload::Control(c) = m.payload {
                            if c == CTRL_JOIN {
                                pending_joins.push(from);
                            }
                        }
                        continue;
                    }
                    if m.tag == SHARD_MAP_TAG {
                        // map-agreement handshake: echo our map so the
                        // worker can prove both sides partitioned alike
                        if let Some(mine) = &cfg.shard_map {
                            let _ = ep.send(from, SHARD_MAP_TAG, Payload::ShardMap(mine.clone()));
                        }
                        continue;
                    }
                    if m.tag >= STANDBY_TAG {
                        // reserved tags this role never consumes
                        continue;
                    }
                    if !alive[from] {
                        // tell an evicted-but-alive sender its fate so it
                        // can stop waiting and rejoin or exit (best effort)
                        if matches!(m.payload, Payload::Flags(_)) {
                            let status = status_vec(n, &alive, &done, None, from);
                            let _ = ep.send(from, m.tag, Payload::Flags(status));
                        }
                        continue;
                    }
                    let payload = match m.payload {
                        // bucketed push: absorb the frame; only a
                        // completed set proceeds, as a Params push
                        Payload::Bucket {
                            bucket,
                            n_buckets,
                            values,
                        } => match bucket_asm
                            .entry((m.tag, from))
                            .or_default()
                            .absorb(bucket, n_buckets, values)?
                        {
                            Some(flat) => Payload::Params(flat),
                            None => continue,
                        },
                        p => p,
                    };
                    match (m.tag, payload) {
                        (t, Payload::Flags(b)) if t == ftag => {
                            bits.insert(from, b.first().copied().unwrap_or(0));
                        }
                        (t, Payload::Params(v) | Payload::ShardPush(v)) if t == stag => {
                            // a re-sent push for *this* round: the sender
                            // already holds a SYNC status from before a
                            // server restart — count it as a contributor
                            early_pushes.insert(from, v);
                        }
                        (_, Payload::Control(c)) if c == CTRL_SHUTDOWN => {
                            // accepted at any tag: a worker may finish
                            // while a recovering server is still behind
                            done[from] = true;
                            missed[from] = 0;
                        }
                        (t, Payload::Flags(_)) if t < ftag => {
                            // straggler catching up from an older step
                            let status = status_vec(n, &alive, &done, None, from);
                            let _ = ep.send(from, t, Payload::Flags(status));
                        }
                        (t, Payload::Params(_)) if t < ftag => {
                            // stale push from a sync round that already
                            // closed (or whose replies died with the old
                            // server); unblock the sender with the global,
                            // which is exactly that round's average
                            let _ = ep.send(from, t, Payload::Params(global.clone()));
                        }
                        (t, Payload::ShardPush(_)) if t < ftag => {
                            // sharded flavor of the stale-push reply
                            let _ = ep.send(from, t, Payload::ShardPull(global.clone()));
                        }
                        (t, Payload::Flags(b)) if t > ftag => {
                            let s = tag_step(t);
                            future_flags
                                .entry(s)
                                .or_default()
                                .insert(from, b.first().copied().unwrap_or(0));
                            if bits.is_empty() && early_pushes.is_empty() {
                                jump = Some(s);
                                break;
                            }
                        }
                        (t, Payload::Params(v) | Payload::ShardPush(v))
                            if t > ftag && t == phase_tag(tag_step(t), SYNC_PHASE) =>
                        {
                            let s = tag_step(t);
                            future_pushes.entry(s).or_default().insert(from, v);
                            if bits.is_empty() && early_pushes.is_empty() {
                                jump = Some(s);
                                break;
                            }
                        }
                        (t, p) => {
                            return Err(TransportError::Protocol(format!(
                                "elastic server: unexpected {p:?} at tag {t} \
                                 from rank {from} (round tag {ftag})"
                            )));
                        }
                    }
                }
            }
        }

        if jump.is_some() {
            // recovery fast-forward: every live worker is already past
            // this round (nothing durable happened in the skipped
            // rounds, or their effects were already replied). Jump to
            // the earliest round with buffered traffic.
            let next = future_flags
                .keys()
                .next()
                .copied()
                .into_iter()
                .chain(future_pushes.keys().next().copied())
                .min();
            if let Some(next) = next {
                step = next;
                continue 'run;
            }
        }

        for &i in bits.keys() {
            missed[i] = 0;
        }
        for &i in early_pushes.keys() {
            missed[i] = 0;
        }
        let contributors: Vec<usize> = bits.keys().copied().collect();
        let mut sync_members: Vec<usize> = contributors.clone();
        for &i in early_pushes.keys() {
            if !sync_members.contains(&i) {
                sync_members.push(i);
            }
        }
        sync_members.sort_unstable();

        if !contributors.is_empty() || !early_pushes.is_empty() {
            let any_sync = bits.values().any(|&b| b != 0) || !early_pushes.is_empty();
            // early pushers are mid-sync: the membership view must show
            // them as syncing even though no flag arrived this round
            let mut merged = bits.clone();
            for &i in early_pushes.keys() {
                merged.insert(i, 1);
            }
            let status = status_vec(n, &alive, &done, Some(&merged), usize::MAX);
            for &i in &contributors {
                match ep.send(i, ftag, Payload::Flags(status.clone())) {
                    Ok(()) => {}
                    Err(TransportError::PeerUnreachable { .. }) => {
                        alive[i] = false;
                        evictions.push((step, i));
                    }
                    Err(e) => return Err(e),
                }
            }

            // ---- sync round: every contributor pushes, server averages ----
            if any_sync {
                let mut pushes: BTreeMap<usize, Vec<f32>> = early_pushes;
                // how many empty round_timeouts to sit through before
                // declaring the missing pushers crashed. A monolithic
                // server evicts after one: a worker that flagged a sync
                // and then fell silent is gone. A shard server extends
                // the window to its (recovery-widened) miss budget — the
                // pusher may be stalled in its fan-out on a *sibling*
                // shard that is crashing and resuming, and evicting it
                // here would tear down a cluster that is seconds from
                // recovering (DESIGN.md §10).
                let push_patience = if cfg.shard_map.is_some() {
                    cfg.max_missed.max(1)
                } else {
                    1
                };
                let mut empty_waits = 0u32;
                loop {
                    let expected = sync_members.iter().filter(|&&i| alive[i]).count();
                    if expected == 0 || pushes.len() >= expected {
                        break;
                    }
                    match ep.recv_deadline(None, None, cfg.round_timeout) {
                        Err(TransportError::RecvTimeout { .. }) => {
                            if grace_until.is_some_and(|g| Instant::now() < g) {
                                continue;
                            }
                            empty_waits += 1;
                            if empty_waits < push_patience {
                                continue;
                            }
                            // a crash inside the sync window: evict at once,
                            // the partial average keeps the survivors moving
                            for &i in &sync_members {
                                if alive[i] && !pushes.contains_key(&i) {
                                    alive[i] = false;
                                    evictions.push((step, i));
                                }
                            }
                            break;
                        }
                        Err(e) => return Err(e),
                        Ok(m) => {
                            let from = m.from;
                            empty_waits = 0;
                            note_contact(
                                &mut grace_until,
                                &mut heard_since_start,
                                &alive,
                                &done,
                                from,
                                cfg.resume_grace,
                            );
                            if m.tag == JOIN_TAG {
                                if let Payload::Control(c) = m.payload {
                                    if c == CTRL_JOIN {
                                        pending_joins.push(from);
                                    }
                                }
                                continue;
                            }
                            if m.tag == SHARD_MAP_TAG {
                                if let Some(mine) = &cfg.shard_map {
                                    let _ = ep.send(
                                        from,
                                        SHARD_MAP_TAG,
                                        Payload::ShardMap(mine.clone()),
                                    );
                                }
                                continue;
                            }
                            if m.tag >= STANDBY_TAG {
                                continue;
                            }
                            let payload = match m.payload {
                                // bucketed push mid-sync: absorb; only a
                                // completed set counts as a contribution
                                Payload::Bucket {
                                    bucket,
                                    n_buckets,
                                    values,
                                } => match bucket_asm
                                    .entry((m.tag, from))
                                    .or_default()
                                    .absorb(bucket, n_buckets, values)?
                                {
                                    Some(flat) => Payload::Params(flat),
                                    None => continue,
                                },
                                p => p,
                            };
                            if m.tag == stag && alive[from] {
                                match payload {
                                    Payload::Params(v) | Payload::ShardPush(v) => {
                                        if !sync_members.contains(&from) {
                                            sync_members.push(from);
                                        }
                                        pushes.insert(from, v);
                                    }
                                    p => {
                                        return Err(TransportError::Protocol(format!(
                                            "elastic server: expected Params at sync \
                                             tag {stag}, got {p:?} from rank {from}"
                                        )));
                                    }
                                }
                            }
                            // anything else mid-sync is stale traffic: drop
                        }
                    }
                }
                if !pushes.is_empty() {
                    let views: Vec<&[f32]> = pushes.values().map(|v| v.as_slice()).collect();
                    let avg = average(&views);
                    if let Some(ServerCrashPoint::MidSync(s)) = cfg.crash {
                        if step >= s {
                            // die with the average computed but nothing
                            // durable: no checkpoint, no shadow, no reply
                            crashed = true;
                            break 'run;
                        }
                    }
                    global = avg;
                    syncs += 1;
                    // write-ahead: checkpoint + shadow BEFORE any reply,
                    // so a durable sync implies no worker saw it early
                    on_sync(&ServerState {
                        step: step + 1,
                        syncs,
                        global: global.clone(),
                        alive: alive.clone(),
                        done: done.clone(),
                        evictions: evictions.clone(),
                        joins: joins.clone(),
                    });
                    if let Some(sb) = cfg.standby {
                        let _ = ep.send(sb, STANDBY_TAG, Payload::Control(step));
                        let _ = ep.send(sb, STANDBY_TAG, Payload::Params(global.clone()));
                        let _ = ep.send(
                            sb,
                            STANDBY_TAG,
                            Payload::Flags(membership_bytes(&alive, &done)),
                        );
                    }
                    // one model copy shared across every reply: the
                    // per-pusher sends clone only the Arc. A shard
                    // server replies ShardPull instead (same wire
                    // bytes), copying its — K× smaller — range per
                    // pusher.
                    let shared = std::sync::Arc::new(global.clone());
                    let pushers: Vec<usize> = pushes.keys().copied().collect();
                    for i in pushers {
                        let reply = if cfg.shard_map.is_some() {
                            Payload::ShardPull(global.clone())
                        } else {
                            Payload::SharedParams(std::sync::Arc::clone(&shared))
                        };
                        match ep.send(i, stag, reply) {
                            Ok(()) => {}
                            Err(TransportError::PeerUnreachable { .. }) => {
                                alive[i] = false;
                                evictions.push((step, i));
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
        }

        // ---- grant joins at the step boundary ----
        for r in pending_joins.drain(..) {
            if r < n && !done[r] && !alive[r] {
                alive[r] = true;
                missed[r] = 0;
                let resume = step + 1;
                let status = status_vec(n, &alive, &done, None, usize::MAX);
                let granted = ep.send(r, JOIN_TAG, Payload::Control(resume)).is_ok()
                    && ep
                        .send(r, JOIN_TAG, Payload::Params(global.clone()))
                        .is_ok()
                    && ep.send(r, JOIN_TAG, Payload::Flags(status)).is_ok();
                if granted {
                    joins.push((resume, r));
                } else {
                    alive[r] = false;
                    evictions.push((step, r));
                }
            }
        }

        step += 1;
    }

    if !crashed {
        if let Some(sb) = cfg.standby {
            let _ = ep.send(sb, STANDBY_TAG, Payload::Control(STANDBY_RETIRE));
        }
    }
    Ok(ElasticReport {
        final_params: global,
        evictions,
        joins,
        syncs,
        rounds: step,
        crashed,
    })
}

/// What a standby rank's watch ended in.
#[derive(Debug)]
pub enum StandbyOutcome {
    /// The primary retired us (clean shutdown) or the whole cluster went
    /// silent past the patience window; nothing to do.
    Retired {
        /// Sync rounds shadowed while on watch.
        shadowed_syncs: u64,
    },
    /// Workers failed over to this rank; it ran the elastic server from
    /// the shadowed state to completion.
    Promoted(ElasticReport),
}

/// Run the hot-standby role: shadow the primary's [`STANDBY_TAG`] state
/// updates, and promote to a full elastic server the moment worker
/// traffic lands on this rank (workers only redirect here after their
/// failover patience on the primary expires — see the worker retry
/// layer). While waiting, worker messages are buffered, not consumed, so
/// the promoted server's first round sees them all.
///
/// `max_silence` bounds how long the standby outlives a cluster that
/// went completely quiet (primary died *and* no worker ever failed
/// over, e.g. because they all finished).
///
/// # Errors
/// Propagates unrecoverable transport faults.
pub fn run_standby_server<T, F>(
    mut ep: T,
    n_workers: usize,
    init_params: Vec<f32>,
    cfg: &ElasticConfig,
    max_silence: Duration,
    on_sync: F,
) -> Result<StandbyOutcome, TransportError>
where
    T: Transport,
    F: FnMut(&ServerState),
{
    let ps = n_workers; // primary's rank, by fabric convention
    let mut state = ServerState::fresh(n_workers, init_params);
    let mut shadowed = 0u64;
    let mut silence = Duration::ZERO;
    loop {
        match ep.recv_deadline(Some(ps), Some(STANDBY_TAG), cfg.round_timeout) {
            Ok(m) => {
                silence = Duration::ZERO;
                match m.payload {
                    Payload::Control(c) if c == STANDBY_RETIRE => {
                        return Ok(StandbyOutcome::Retired {
                            shadowed_syncs: shadowed,
                        });
                    }
                    Payload::Control(sync_step) => {
                        // a shadow triple: Params and membership follow on
                        // the same tag; a torn triple (primary died mid-
                        // send) leaves the previous consistent state
                        let params = match ep.recv_deadline(
                            Some(ps),
                            Some(STANDBY_TAG),
                            cfg.round_timeout,
                        ) {
                            Ok(pm) => match pm.payload {
                                Payload::Params(v) => v,
                                Payload::SharedParams(a) => FlatVec::Shared(a).into_vec(),
                                // explicit so new wire variants fail here
                                // at compile time instead of being dropped
                                Payload::Grads(_)
                                | Payload::Flags(_)
                                | Payload::Samples { .. }
                                | Payload::Control(_)
                                | Payload::Predict { .. }
                                | Payload::Logits { .. }
                                | Payload::ShardMap(_)
                                | Payload::ShardPush(_)
                                | Payload::ShardPull(_)
                                | Payload::Bucket { .. }
                                | Payload::SparseGrad { .. }
                                | Payload::SignGrad { .. }
                                | Payload::LowRank { .. } => continue,
                            },
                            Err(TransportError::RecvTimeout { .. }) => continue,
                            Err(e) => return Err(e),
                        };
                        let mem = match ep.recv_deadline(
                            Some(ps),
                            Some(STANDBY_TAG),
                            cfg.round_timeout,
                        ) {
                            Ok(fm) => match fm.payload {
                                Payload::Flags(b) => b,
                                // explicit so new wire variants fail here
                                // at compile time instead of being dropped
                                Payload::Params(_)
                                | Payload::SharedParams(_)
                                | Payload::Grads(_)
                                | Payload::Samples { .. }
                                | Payload::Control(_)
                                | Payload::Predict { .. }
                                | Payload::Logits { .. }
                                | Payload::ShardMap(_)
                                | Payload::ShardPush(_)
                                | Payload::ShardPull(_)
                                | Payload::Bucket { .. }
                                | Payload::SparseGrad { .. }
                                | Payload::SignGrad { .. }
                                | Payload::LowRank { .. } => continue,
                            },
                            Err(TransportError::RecvTimeout { .. }) => continue,
                            Err(e) => return Err(e),
                        };
                        state.step = sync_step + 1;
                        state.syncs += 1;
                        state.global = params;
                        state.alive = mem.iter().map(|b| b & 1 != 0).collect();
                        state.done = mem.iter().map(|b| b & 2 != 0).collect();
                        shadowed += 1;
                    }
                    // stray non-control traffic on the standby tag is
                    // ignored; listed explicitly so new wire variants
                    // fail here at compile time instead of being dropped
                    Payload::Params(_)
                    | Payload::SharedParams(_)
                    | Payload::Grads(_)
                    | Payload::Flags(_)
                    | Payload::Samples { .. }
                    | Payload::Predict { .. }
                    | Payload::Logits { .. }
                    | Payload::ShardMap(_)
                    | Payload::ShardPush(_)
                    | Payload::ShardPull(_)
                    | Payload::Bucket { .. }
                    | Payload::SparseGrad { .. }
                    | Payload::SignGrad { .. }
                    | Payload::LowRank { .. } => {}
                }
            }
            Err(TransportError::RecvTimeout { buffered, .. }) => {
                if buffered > 0 {
                    // workers are addressing this rank: the primary is
                    // gone and the cluster failed over — promote. The
                    // buffered worker traffic is drained by the server
                    // loop's pending-first receives.
                    let promoted_cfg = ElasticConfig {
                        standby: None,
                        crash: None,
                        ..cfg.clone()
                    };
                    let report = run_elastic_server_from(ep, state, &promoted_cfg, on_sync)?;
                    return Ok(StandbyOutcome::Promoted(report));
                }
                silence += cfg.round_timeout;
                if silence >= max_silence {
                    return Ok(StandbyOutcome::Retired {
                        shadowed_syncs: shadowed,
                    });
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Worker side of one heartbeat/flags round: send the local sync bit,
/// block for the membership status vector.
///
/// # Errors
/// [`TransportError::Evicted`] if the server reports this rank dead;
/// `RecvTimeout` if the server is silent past `reply_timeout` (set it
/// well above the server's `round_timeout` so a round stalled on a
/// crashed peer is not mistaken for a dead server).
pub fn heartbeat_round<T: Transport>(
    ep: &mut T,
    server: usize,
    step: u64,
    my_bit: u8,
    reply_timeout: Duration,
) -> Result<Vec<u8>, TransportError> {
    let tag = phase_tag(step, FLAGS_PHASE);
    ep.send(server, tag, Payload::Flags(vec![my_bit]))?;
    let me = ep.id();
    let m = ep.recv_deadline(Some(server), Some(tag), reply_timeout)?;
    match m.payload {
        Payload::Flags(status) => {
            if status.get(me).copied().unwrap_or(STATUS_DEAD) == STATUS_DEAD {
                Err(TransportError::Evicted { rank: me })
            } else {
                Ok(status)
            }
        }
        p => Err(TransportError::Protocol(format!(
            "heartbeat reply was {p:?}, expected Flags"
        ))),
    }
}

/// Worker side of the elastic sync round: push local parameters, block
/// for the averaged global.
///
/// # Errors
/// Propagates transport faults; `RecvTimeout` usually means this rank
/// was evicted mid-sync.
pub fn elastic_sync_round<T: Transport>(
    ep: &mut T,
    server: usize,
    step: u64,
    params: Vec<f32>,
    reply_timeout: Duration,
) -> Result<FlatVec, TransportError> {
    let tag = phase_tag(step, SYNC_PHASE);
    ep.send(server, tag, Payload::Params(params))?;
    let m = ep.recv_deadline(Some(server), Some(tag), reply_timeout)?;
    match m.payload {
        Payload::Params(v) => Ok(FlatVec::Owned(v)),
        Payload::SharedParams(a) => Ok(FlatVec::Shared(a)),
        p => Err(TransportError::Protocol(format!(
            "sync reply was {p:?}, expected Params"
        ))),
    }
}

/// Bucketed flavor of [`elastic_sync_round`] (DESIGN.md §12): the
/// parameter push ships as `bucket_size`-value [`Payload::Bucket`]
/// frames instead of one monolithic vector. The server reassembles per
/// sender and averages the completed set, so the result is bit-identical
/// to the monolithic push. A retry under the failover policy resends
/// the *complete* set; duplicate frames overwrite at the assembler,
/// which makes the round idempotent across lost partial pushes.
///
/// # Errors
/// As [`elastic_sync_round`].
pub fn elastic_sync_round_bucketed<T: Transport>(
    ep: &mut T,
    server: usize,
    step: u64,
    params: &[f32],
    bucket_size: usize,
    reply_timeout: Duration,
) -> Result<FlatVec, TransportError> {
    let tag = phase_tag(step, SYNC_PHASE);
    crate::bucket::send_all_buckets(ep, server, tag, params, bucket_size)?;
    let m = ep.recv_deadline(Some(server), Some(tag), reply_timeout)?;
    match m.payload {
        Payload::Params(v) => Ok(FlatVec::Owned(v)),
        Payload::SharedParams(a) => Ok(FlatVec::Shared(a)),
        p => Err(TransportError::Protocol(format!(
            "sync reply was {p:?}, expected Params"
        ))),
    }
}

/// Tell the elastic server this worker is finished (fire-and-forget,
/// tagged with the step *after* the last one run).
///
/// # Errors
/// Propagates transport faults.
pub fn elastic_shutdown<T: Transport>(
    ep: &mut T,
    server: usize,
    step: u64,
) -> Result<(), TransportError> {
    ep.send(
        server,
        phase_tag(step, FLAGS_PHASE),
        Payload::Control(CTRL_SHUTDOWN),
    )
}

/// Ask the elastic server to (re)admit this rank. Blocks until the
/// grant: resume step, current global parameters, and membership.
///
/// # Errors
/// `RecvTimeout` if the server never answers (training already over);
/// `Protocol` on a malformed grant.
pub fn join_request<T: Transport>(
    ep: &mut T,
    server: usize,
    reply_timeout: Duration,
) -> Result<JoinGrant, TransportError> {
    ep.send(server, JOIN_TAG, Payload::Control(CTRL_JOIN))?;
    let resume_step = match ep
        .recv_deadline(Some(server), Some(JOIN_TAG), reply_timeout)?
        .payload
    {
        Payload::Control(s) => s,
        p => {
            return Err(TransportError::Protocol(format!(
                "join grant began with {p:?}, expected Control(resume_step)"
            )))
        }
    };
    let params = match ep
        .recv_deadline(Some(server), Some(JOIN_TAG), reply_timeout)?
        .payload
    {
        Payload::Params(v) => v,
        Payload::SharedParams(a) => FlatVec::Shared(a).into_vec(),
        p => {
            return Err(TransportError::Protocol(format!(
                "join grant missing Params, got {p:?}"
            )))
        }
    };
    let status = match ep
        .recv_deadline(Some(server), Some(JOIN_TAG), reply_timeout)?
        .payload
    {
        Payload::Flags(s) => s,
        p => {
            return Err(TransportError::Protocol(format!(
                "join grant missing Flags, got {p:?}"
            )))
        }
    };
    Ok(JoinGrant {
        resume_step,
        params,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use std::sync::{Arc, Mutex};
    use std::thread;

    const REPLY: Duration = Duration::from_secs(5);

    /// Worker-side sync with re-send on timeout, as the trainer's retry
    /// layer does — needed whenever the server may crash mid-round.
    fn sync_with_retry(
        ep: &mut crate::fabric::Endpoint,
        server: usize,
        step: u64,
        params: Vec<f32>,
    ) -> Vec<f32> {
        for _ in 0..40 {
            match elastic_sync_round(ep, server, step, params.clone(), Duration::from_millis(250)) {
                Ok(v) => return v.into_vec(),
                Err(TransportError::RecvTimeout { .. }) => continue,
                Err(e) => panic!("sync failed: {e}"),
            }
        }
        panic!("sync round never completed at step {step}");
    }

    #[test]
    fn periodic_sync_rounds_average_across_members() {
        let n = 3;
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let cfg = ElasticConfig {
            round_timeout: Duration::from_millis(500),
            max_missed: 3,
            ..ElasticConfig::default()
        };
        let server = thread::spawn(move || {
            run_elastic_server(server_ep, n, vec![0.0; 4], &cfg, |_| {}).unwrap()
        });
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let id = ep.id();
                    let mut last_sync = Vec::new();
                    for step in 0..6u64 {
                        let bit = u8::from(step % 3 == 0);
                        let status = heartbeat_round(&mut ep, n, step, bit, REPLY).unwrap();
                        assert_eq!(status.len(), n);
                        if status.contains(&STATUS_SYNC) {
                            last_sync =
                                elastic_sync_round(&mut ep, n, step, vec![id as f32; 4], REPLY)
                                    .unwrap()
                                    .into_vec();
                        }
                    }
                    elastic_shutdown(&mut ep, n, 6).unwrap();
                    last_sync
                })
            })
            .collect();
        for h in handles {
            // avg(0, 1, 2) = 1.0 on every member after the last sync
            assert_eq!(h.join().unwrap(), vec![1.0; 4]);
        }
        let report = server.join().unwrap();
        assert_eq!(report.syncs, 2, "steps 0 and 3 raised the flag");
        assert!(report.evictions.is_empty());
        assert!(report.joins.is_empty());
        assert!(!report.crashed);
        assert_eq!(report.final_params, vec![1.0; 4]);
    }

    /// A worker pushing its parameters as Bucket frames must land in the
    /// same average as a monolithic pusher in the same round — and a
    /// full resend of an already-consumed set (the retry layer's move
    /// after a lost reply) must draw the stale-push catch-up reply, not
    /// wedge the server.
    #[test]
    fn bucketed_param_push_averages_with_monolithic_peers() {
        let n = 2;
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let cfg = ElasticConfig {
            round_timeout: Duration::from_millis(400),
            max_missed: 3,
            ..ElasticConfig::default()
        };
        let server = thread::spawn(move || {
            run_elastic_server(server_ep, n, vec![0.0; 5], &cfg, |_| {}).unwrap()
        });
        let mut bucketed = eps.pop().unwrap(); // rank 1
        let mut mono = eps.pop().unwrap(); // rank 0
        let mono_h = thread::spawn(move || {
            let status = heartbeat_round(&mut mono, n, 0, 1, REPLY).unwrap();
            assert!(status.contains(&STATUS_SYNC));
            let avg = elastic_sync_round(&mut mono, n, 0, vec![1.0; 5], REPLY)
                .unwrap()
                .into_vec();
            elastic_shutdown(&mut mono, n, 1).unwrap();
            avg
        });
        let bucketed_h = thread::spawn(move || {
            let status = heartbeat_round(&mut bucketed, n, 0, 1, REPLY).unwrap();
            assert!(status.contains(&STATUS_SYNC));
            let params = vec![2.0, 4.0, 6.0, 8.0, 10.0];
            let avg = elastic_sync_round_bucketed(&mut bucketed, n, 0, &params, 2, REPLY)
                .unwrap()
                .into_vec();
            // simulate a lost reply: resend the whole set; the server
            // answers the stale push with the current global
            let catch_up = elastic_sync_round_bucketed(&mut bucketed, n, 0, &params, 2, REPLY)
                .unwrap()
                .into_vec();
            elastic_shutdown(&mut bucketed, n, 1).unwrap();
            (avg, catch_up)
        });
        let mono_avg = mono_h.join().unwrap();
        let (bucket_avg, catch_up) = bucketed_h.join().unwrap();
        let want = vec![1.5, 2.5, 3.5, 4.5, 5.5];
        assert_eq!(mono_avg, want);
        assert_eq!(bucket_avg, want);
        assert_eq!(catch_up, want, "stale bucketed resend draws the global");
        let report = server.join().unwrap();
        assert_eq!(report.syncs, 1);
        assert_eq!(report.final_params, want);
        assert!(report.evictions.is_empty(), "{:?}", report.evictions);
    }

    #[test]
    fn silent_worker_is_evicted_and_survivors_finish() {
        let n = 3;
        let steps = 8u64;
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let cfg = ElasticConfig {
            round_timeout: Duration::from_millis(100),
            max_missed: 2,
            ..ElasticConfig::default()
        };
        let server = thread::spawn(move || {
            run_elastic_server(server_ep, n, vec![0.0], &cfg, |_| {}).unwrap()
        });
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let id = ep.id();
                    let mut dead_seen_at = None;
                    for step in 0..steps {
                        if id == 2 && step == 2 {
                            return dead_seen_at; // crash: drop the endpoint
                        }
                        let bit = u8::from(step == 5);
                        let status = heartbeat_round(&mut ep, n, step, bit, REPLY).unwrap();
                        if status[2] == STATUS_DEAD && dead_seen_at.is_none() {
                            dead_seen_at = Some(step);
                        }
                        if status.contains(&STATUS_SYNC) {
                            elastic_sync_round(&mut ep, n, step, vec![id as f32], REPLY).unwrap();
                        }
                    }
                    elastic_shutdown(&mut ep, n, steps).unwrap();
                    dead_seen_at
                })
            })
            .collect();
        let mut survivor_saw_death = Vec::new();
        for h in handles {
            if let Some(step) = h.join().unwrap() {
                survivor_saw_death.push(step);
            }
        }
        let report = server.join().unwrap();
        assert_eq!(report.evictions.len(), 1);
        let (evict_step, evicted_rank) = report.evictions[0];
        assert_eq!(evicted_rank, 2);
        assert!(
            (2..steps).contains(&evict_step),
            "evicted after its crash step, got {evict_step}"
        );
        assert_eq!(
            survivor_saw_death,
            vec![evict_step, evict_step],
            "both survivors saw the death in the eviction round's status"
        );
        assert_eq!(report.syncs, 1, "step-5 sync completed among survivors");
        // avg of ranks 0 and 1
        assert_eq!(report.final_params, vec![0.5]);
    }

    #[test]
    fn evicted_worker_can_rejoin_and_finish() {
        let n = 2;
        let steps = 100u64;
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let cfg = ElasticConfig {
            round_timeout: Duration::from_millis(80),
            max_missed: 2,
            ..ElasticConfig::default()
        };
        let server = thread::spawn(move || {
            run_elastic_server(server_ep, n, vec![7.0], &cfg, |_| {}).unwrap()
        });
        let mut rejoiner = eps.pop().unwrap(); // rank 1
        let mut steady = eps.pop().unwrap(); // rank 0
        let steady_h = thread::spawn(move || {
            for step in 0..steps {
                heartbeat_round(&mut steady, n, step, 0, REPLY).unwrap();
                thread::sleep(Duration::from_millis(10));
            }
            elastic_shutdown(&mut steady, n, steps).unwrap();
        });
        let rejoin_h = thread::spawn(move || {
            for step in 0..3u64 {
                heartbeat_round(&mut rejoiner, n, step, 0, REPLY).unwrap();
            }
            // go dark long enough to be evicted, then come back
            thread::sleep(Duration::from_millis(400));
            let grant = join_request(&mut rejoiner, n, REPLY).unwrap();
            assert_eq!(grant.params, vec![7.0], "no sync ran; global is the init");
            assert_eq!(grant.status[1], STATUS_ALIVE, "readmitted before resuming");
            assert!(grant.resume_step > 3);
            for step in grant.resume_step..steps {
                heartbeat_round(&mut rejoiner, n, step, 0, REPLY).unwrap();
            }
            elastic_shutdown(&mut rejoiner, n, steps).unwrap();
            grant.resume_step
        });
        steady_h.join().unwrap();
        let resume_step = rejoin_h.join().unwrap();
        let report = server.join().unwrap();
        assert_eq!(report.evictions.len(), 1);
        assert_eq!(report.evictions[0].1, 1);
        assert_eq!(report.joins, vec![(resume_step, 1)]);
        assert_eq!(
            report.rounds,
            steps + 1,
            "all rounds plus the shutdown round"
        );
    }

    /// A server that dies mid-sync (after consuming the pushes, before
    /// checkpoint/replies) and resumes from its last on_sync snapshot
    /// must complete the run with parameters bit-identical to a
    /// fault-free schedule: the re-sent pushes rebuild the interrupted
    /// average exactly.
    #[test]
    fn mid_sync_crash_resume_is_bit_identical() {
        let n = 2;
        let steps = 6u64;
        let mut eps = Fabric::new(n + 1);
        let mut server_ep = eps.pop().unwrap();
        let last_state: Arc<Mutex<Option<ServerState>>> = Arc::new(Mutex::new(None));
        let sink = Arc::clone(&last_state);
        let crash_cfg = ElasticConfig {
            round_timeout: Duration::from_millis(400),
            max_missed: 5,
            crash: Some(ServerCrashPoint::MidSync(3)),
            ..ElasticConfig::default()
        };
        let resume_cfg = ElasticConfig {
            crash: None,
            ..crash_cfg.clone()
        };
        let server = thread::spawn(move || {
            let crashed = run_elastic_server(&mut server_ep, n, vec![0.0], &crash_cfg, |s| {
                *sink.lock().unwrap() = Some(s.clone());
            })
            .unwrap();
            assert!(crashed.crashed, "the scheduled crash must fire");
            assert_eq!(crashed.syncs, 3, "steps 0..2 synced before the crash");
            // "restart": resume on the same endpoint from the last
            // durable snapshot — exactly what --resume does from disk
            let state = last_state.lock().unwrap().clone().expect("snapshot");
            assert_eq!(state.step, 3, "snapshot is from the step-2 sync");
            run_elastic_server_from(&mut server_ep, state, &resume_cfg, |_| {}).unwrap()
        });
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let id = ep.id();
                    for step in 0..steps {
                        let status = heartbeat_round(&mut ep, n, step, 1, REPLY).unwrap();
                        assert!(status.contains(&STATUS_SYNC));
                        let avg =
                            sync_with_retry(&mut ep, n, step, vec![(id * 10) as f32 + step as f32]);
                        // avg of (0 + s, 10 + s) = 5 + s at every step
                        assert_eq!(avg, vec![5.0 + step as f32], "step {step}");
                    }
                    elastic_shutdown(&mut ep, n, steps).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = server.join().unwrap();
        assert!(!report.crashed);
        assert_eq!(report.syncs, steps, "every step synced exactly once");
        assert_eq!(
            report.final_params,
            vec![5.0 + (steps - 1) as f32],
            "resumed run ends on the fault-free average"
        );
        assert!(report.evictions.is_empty(), "{:?}", report.evictions);
    }

    /// A server resumed far behind its workers (flags arriving at future
    /// tags with nothing collected) fast-forwards to the workers' round
    /// instead of evicting everyone or erroring.
    #[test]
    fn resumed_server_fast_forwards_to_future_rounds() {
        let n = 2;
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let cfg = ElasticConfig {
            round_timeout: Duration::from_millis(300),
            max_missed: 3,
            ..ElasticConfig::default()
        };
        // the server believes it is at step 0; workers start at step 5
        let server = thread::spawn(move || {
            run_elastic_server(server_ep, n, vec![1.0], &cfg, |_| {}).unwrap()
        });
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    for step in 5..8u64 {
                        heartbeat_round(&mut ep, n, step, 0, REPLY).unwrap();
                    }
                    elastic_shutdown(&mut ep, n, 8).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = server.join().unwrap();
        assert!(report.evictions.is_empty(), "{:?}", report.evictions);
        assert_eq!(report.syncs, 0);
        assert_eq!(report.rounds, 9, "jumped to 5, ran 5..=8");
    }

    /// Clean shutdown retires the standby, which reports how many syncs
    /// it shadowed.
    #[test]
    fn standby_is_retired_on_clean_shutdown() {
        let n = 2;
        let steps = 4u64;
        let mut eps = Fabric::new(n + 2);
        let standby_ep = eps.pop().unwrap(); // rank 3
        let server_ep = eps.pop().unwrap(); // rank 2
        let cfg = ElasticConfig {
            round_timeout: Duration::from_millis(400),
            max_missed: 3,
            standby: Some(n + 1),
            ..ElasticConfig::default()
        };
        let standby_cfg = cfg.clone();
        let server = thread::spawn(move || {
            run_elastic_server(server_ep, n, vec![0.0], &cfg, |_| {}).unwrap()
        });
        let standby = thread::spawn(move || {
            run_standby_server(
                standby_ep,
                n,
                vec![0.0],
                &standby_cfg,
                Duration::from_secs(20),
                |_| {},
            )
            .unwrap()
        });
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let id = ep.id();
                    for step in 0..steps {
                        let status = heartbeat_round(&mut ep, n, step, 1, REPLY).unwrap();
                        assert!(status.contains(&STATUS_SYNC));
                        elastic_sync_round(&mut ep, n, step, vec![id as f32], REPLY).unwrap();
                    }
                    elastic_shutdown(&mut ep, n, steps).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = server.join().unwrap();
        assert_eq!(report.syncs, steps);
        match standby.join().unwrap() {
            StandbyOutcome::Retired { shadowed_syncs } => {
                assert_eq!(shadowed_syncs, steps, "every sync was shadowed");
            }
            StandbyOutcome::Promoted(_) => panic!("must not promote on a clean run"),
        }
    }

    /// The primary dies mid-run; workers fail over to the standby rank,
    /// which promotes itself from the shadowed state and finishes the
    /// run with the fault-free averages.
    #[test]
    fn standby_promotes_when_workers_fail_over() {
        let n = 2;
        let steps = 6u64;
        let mut eps = Fabric::new(n + 2);
        let standby_ep = eps.pop().unwrap(); // rank 3
        let server_ep = eps.pop().unwrap(); // rank 2
        let cfg = ElasticConfig {
            round_timeout: Duration::from_millis(300),
            max_missed: 5,
            standby: Some(n + 1),
            crash: Some(ServerCrashPoint::RoundStart(3)),
            ..ElasticConfig::default()
        };
        let standby_cfg = ElasticConfig {
            crash: None,
            ..cfg.clone()
        };
        let server = thread::spawn(move || {
            // endpoint dropped on return: the primary is truly dead
            run_elastic_server(server_ep, n, vec![0.0], &cfg, |_| {}).unwrap()
        });
        let standby = thread::spawn(move || {
            run_standby_server(
                standby_ep,
                n,
                vec![0.0],
                &standby_cfg,
                Duration::from_secs(20),
                |_| {},
            )
            .unwrap()
        });
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let id = ep.id();
                    let mut server = n; // primary until failover
                    for step in 0..steps {
                        // heartbeat with failover: on a dead primary,
                        // redirect to the standby rank and retry
                        let status = loop {
                            match heartbeat_round(
                                &mut ep,
                                server,
                                step,
                                1,
                                Duration::from_millis(250),
                            ) {
                                Ok(s) => break s,
                                Err(TransportError::PeerUnreachable { peer })
                                    if peer == n && server == n =>
                                {
                                    server = n + 1;
                                }
                                Err(TransportError::RecvTimeout { .. }) => {
                                    // lost reply: the primary died after
                                    // our send — fail over as well
                                    if server == n {
                                        server = n + 1;
                                    }
                                }
                                Err(e) => panic!("heartbeat failed: {e}"),
                            }
                        };
                        assert!(status.contains(&STATUS_SYNC));
                        let avg = sync_with_retry(
                            &mut ep,
                            server,
                            step,
                            vec![(id * 10) as f32 + step as f32],
                        );
                        assert_eq!(avg, vec![5.0 + step as f32], "step {step}");
                    }
                    elastic_shutdown(&mut ep, server, steps).unwrap();
                    server
                })
            })
            .collect();
        let mut final_servers = Vec::new();
        for h in handles {
            final_servers.push(h.join().unwrap());
        }
        assert_eq!(
            final_servers,
            vec![n + 1, n + 1],
            "both workers ended on the standby"
        );
        let primary = server.join().unwrap();
        assert!(primary.crashed);
        assert_eq!(primary.syncs, 3, "steps 0..2 synced before the crash");
        match standby.join().unwrap() {
            StandbyOutcome::Promoted(report) => {
                assert!(!report.crashed);
                assert_eq!(report.syncs, steps, "shadowed 3 + ran 3 more");
                assert_eq!(report.final_params, vec![5.0 + (steps - 1) as f32]);
                assert!(report.evictions.is_empty(), "{:?}", report.evictions);
            }
            StandbyOutcome::Retired { .. } => panic!("standby must be promoted"),
        }
    }

    /// The eviction rule replayed as the pure function it is: a worker
    /// is dead once it has missed `max_missed` consecutive heartbeat
    /// rounds. `history[round][worker]` is `Some(bit)` if the worker's
    /// flag arrived that round.
    fn replay_survivors(history: &[Vec<Option<u8>>], max_missed: u32) -> Vec<bool> {
        let n = history[0].len();
        let mut missed = vec![0u32; n];
        let mut alive = vec![true; n];
        for round in history {
            for w in 0..n {
                if !alive[w] {
                    continue;
                }
                match round[w] {
                    Some(_) => missed[w] = 0,
                    None => {
                        missed[w] += 1;
                        if missed[w] >= max_missed {
                            alive[w] = false;
                        }
                    }
                }
            }
        }
        alive
    }

    /// Every shard server applies the same membership rule to the same
    /// flags history, so K independent replicas of the decision agree —
    /// and so do everything downstream of it: the survivor list, each
    /// survivor's partition slot, and the parameter shard map. This is
    /// the agreement argument that lets the sharded PS group skip any
    /// cross-shard membership consensus.
    #[test]
    fn independent_replays_agree_on_survivors_slots_and_shard_map() {
        let n = 5;
        // worker 2 goes silent at round 3, worker 4 flaps but recovers
        let history: Vec<Vec<Option<u8>>> = (0..10u64)
            .map(|r| {
                (0..n)
                    .map(|w| {
                        if (w == 2 && r >= 3) || (w == 4 && r % 3 == 1) {
                            None
                        } else {
                            Some(u8::from(r % 2 == 0))
                        }
                    })
                    .collect()
            })
            .collect();
        // replica A: batch replay of the full history; replica B: the
        // same rule applied incrementally, one round at a time
        let a = replay_survivors(&history, 2);
        let mut b = vec![true; n];
        for upto in 1..=history.len() {
            b = replay_survivors(&history[..upto], 2);
        }
        assert_eq!(a, b, "replicas of the eviction rule must agree");
        assert_eq!(a, vec![true, true, false, true, true]);

        // identical survivor sets => identical sorted survivor lists and
        // partition slots (the cursor-rebuild rule: slot = index of the
        // worker among the sorted survivors)
        let survivors = |alive: &[bool]| -> Vec<usize> { (0..n).filter(|&w| alive[w]).collect() };
        let (sa, sb) = (survivors(&a), survivors(&b));
        assert_eq!(sa, sb);
        for &w in &sa {
            assert_eq!(
                sa.binary_search(&w).unwrap(),
                sb.binary_search(&w).unwrap(),
                "worker {w} must land in the same partition slot"
            );
        }
        // ... and identical shard maps, since the map is a pure function
        // of (total, k) — membership changes never move range boundaries
        for k in [1, 2, 4] {
            assert_eq!(shard_starts(1000, k), shard_starts(1000, k));
        }
    }

    #[test]
    fn shard_starts_partitions_evenly_and_handles_edges() {
        assert_eq!(shard_starts(10, 1), vec![0]);
        assert_eq!(shard_starts(10, 4), vec![0, 3, 6, 9]);
        assert_eq!(shard_starts(8, 4), vec![0, 2, 4, 6]);
        // more shards than elements: trailing shards own empty ranges
        assert_eq!(shard_starts(2, 4), vec![0, 1, 2, 2]);
        assert_eq!(shard_starts(0, 2), vec![0, 0]);
    }

    /// Workers that stall together (e.g. on a sibling shard's recovery)
    /// and come back many round-timeouts later must return as *current*
    /// traffic: an empty round is a liveness tick, not a round, so the
    /// server's step may not free-run ahead of them. Under the old
    /// clock-driven advancement the step-2 flags below would arrive
    /// stale, their sync bits would be dropped from the status reply,
    /// and the sync could never complete.
    #[test]
    fn server_step_does_not_free_run_past_stalled_workers() {
        let n = 2;
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let cfg = ElasticConfig {
            round_timeout: Duration::from_millis(60),
            // plenty of miss budget: the stall must age, not evict
            max_missed: 50,
            ..ElasticConfig::default()
        };
        let server = thread::spawn(move || {
            run_elastic_server(server_ep, n, vec![0.0; 2], &cfg, |_| {}).unwrap()
        });
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let id = ep.id();
                    for step in 0..2u64 {
                        heartbeat_round(&mut ep, n, step, 0, REPLY).unwrap();
                    }
                    // both workers go dark for ~7 empty round-timeouts
                    thread::sleep(Duration::from_millis(400));
                    let status = heartbeat_round(&mut ep, n, 2, 1, REPLY).unwrap();
                    assert!(
                        status.contains(&STATUS_SYNC),
                        "sync bit after the stall must survive into the status, got {status:?}"
                    );
                    let avg = elastic_sync_round(&mut ep, n, 2, vec![id as f32; 2], REPLY).unwrap();
                    assert_eq!(
                        &*avg,
                        &[0.5, 0.5],
                        "post-stall sync must average both replicas"
                    );
                    elastic_shutdown(&mut ep, n, 3).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = server.join().unwrap();
        assert!(report.evictions.is_empty(), "{:?}", report.evictions);
        assert_eq!(report.syncs, 1);
        assert!(
            report.rounds <= 4,
            "the stall must not inflate the round counter, got {}",
            report.rounds
        );
    }
}
