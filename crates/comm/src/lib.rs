//! # selsync-comm
//!
//! The communication substrate for the SelSync reproduction: an
//! in-process message-passing fabric (threads + crossbeam channels)
//! playing the role of the paper's PyTorch-RPC / docker-swarm transport,
//! a parameter server with both round-synchronous and stale-synchronous
//! (SSP) service disciplines, allgather/allreduce collectives, and the
//! analytic **network cost model** + simulated clock that provide the
//! paper-scale timing axis (DESIGN.md substitution 1).
//!
//! Everything below exchanges *real* messages between *real* threads —
//! only wall-clock *claims* about a 16×V100/5 Gbps cluster come from the
//! cost model.

pub mod bucket;
pub mod clock;
pub mod collectives;
pub mod densify;
pub mod elastic;
pub mod error;
pub mod fabric;
pub mod netmodel;
pub mod ps;
pub mod shard;
pub mod stats;
pub mod transport;

pub use bucket::{BucketAssembler, BucketError, BucketIntake};
pub use clock::ClusterClock;
pub use densify::densify_payload;
pub use error::TransportError;
pub use fabric::{
    Endpoint, Fabric, FlatVec, Msg, Payload, ShardSpec, FRAME_CRC_BYTES, FRAME_HEADER_BYTES,
};
pub use netmodel::NetworkModel;
pub use shard::ShardedPsClient;
pub use stats::CommStats;
pub use transport::Transport;
