//! DDP-style bucketing of flat `f32` vectors.
//!
//! A flat parameter/gradient vector of length `n` splits into
//! `ceil(n / B)` fixed-size buckets of `B` values (the last one takes
//! the remainder). Senders ship each bucket as a [`Payload::Bucket`]
//! frame the moment its values are final, so communication overlaps
//! whatever work still produces the rest of the vector; receivers feed
//! the frames — in *any* arrival order — into a [`BucketAssembler`],
//! which reconstructs the flat vector strictly by bucket index. The
//! reassembled vector is bit-identical to a monolithic push of the same
//! values, which is what keeps the bucketed and monolithic sync paths
//! interchangeable (DESIGN.md §12).
//!
//! The assembler is resend-tolerant by design: a duplicate bucket
//! overwrites its slot instead of erroring, so elastic retries (which
//! re-ship the whole set) and chaos-duplicated frames converge to the
//! same completed vector. Structural lies — an index past the declared
//! count, or a frame disagreeing about the count — are
//! [`BucketError`]s, which callers surface as
//! [`TransportError::Protocol`](crate::TransportError).

use crate::densify::densify_payload;
use crate::error::TransportError;
use crate::fabric::{Msg, Payload};
use crate::transport::Transport;
use std::collections::BTreeMap;
use std::ops::Range;

/// Number of buckets a `len`-value vector splits into at bucket size
/// `bucket_size` (at least 1: an empty vector still ships one empty
/// bucket so the receiver observes a complete set).
pub fn n_buckets(len: usize, bucket_size: usize) -> usize {
    assert!(bucket_size > 0, "bucket size must be positive");
    len.div_ceil(bucket_size).max(1)
}

/// Flat index range bucket `i` covers in a `len`-value vector.
pub fn bucket_range(len: usize, bucket_size: usize, i: usize) -> Range<usize> {
    let n = n_buckets(len, bucket_size);
    assert!(i < n, "bucket {i} out of range ({n} buckets)");
    let start = i * bucket_size;
    start.min(len)..((i + 1) * bucket_size).min(len)
}

/// Send buckets `lo..hi` of `values` (index order) to rank `to`.
///
/// # Errors
/// Propagates the first transport failure; earlier buckets in the range
/// may already be on the wire.
pub fn send_bucket_range<T: Transport>(
    t: &mut T,
    to: usize,
    tag: u64,
    values: &[f32],
    bucket_size: usize,
    range: Range<usize>,
) -> Result<(), TransportError> {
    let total = n_buckets(values.len(), bucket_size) as u32;
    for i in range {
        let r = bucket_range(values.len(), bucket_size, i);
        t.send(
            to,
            tag,
            Payload::Bucket {
                bucket: i as u32,
                n_buckets: total,
                values: values[r].to_vec(),
            },
        )?;
    }
    Ok(())
}

/// Send every bucket of `values` to rank `to`, lowest index first —
/// the bucketed equivalent of one monolithic push.
///
/// # Errors
/// Propagates the first transport failure.
pub fn send_all_buckets<T: Transport>(
    t: &mut T,
    to: usize,
    tag: u64,
    values: &[f32],
    bucket_size: usize,
) -> Result<(), TransportError> {
    let total = n_buckets(values.len(), bucket_size);
    send_bucket_range(t, to, tag, values, bucket_size, 0..total)
}

/// The [`Payload::Bucket`] frames of one complete push of `values`,
/// lowest index first — for callers that fan frames out themselves
/// (e.g. the sharded client's per-shard retry loop) instead of sending
/// through [`send_all_buckets`].
pub fn bucket_payloads(values: &[f32], bucket_size: usize) -> Vec<Payload> {
    let total = n_buckets(values.len(), bucket_size);
    (0..total)
        .map(|i| Payload::Bucket {
            bucket: i as u32,
            n_buckets: total as u32,
            values: values[bucket_range(values.len(), bucket_size, i)].to_vec(),
        })
        .collect()
}

/// Why a bucket frame could not be absorbed: the sender is lying about
/// the set's structure (never a legal fault-recovery artifact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BucketError {
    /// A frame declared a zero-bucket set.
    ZeroBuckets,
    /// A frame disagreed with the set's established bucket count.
    CountMismatch {
        /// Count the first frame of the set declared.
        expected: u32,
        /// Count this frame declared.
        got: u32,
    },
    /// A frame's index is past the declared count.
    IndexOutOfRange {
        /// The offending index.
        bucket: u32,
        /// The declared count.
        n_buckets: u32,
    },
}

impl std::fmt::Display for BucketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BucketError::ZeroBuckets => write!(f, "bucket frame declared a zero-bucket set"),
            BucketError::CountMismatch { expected, got } => {
                write!(f, "bucket count changed mid-set: {expected} then {got}")
            }
            BucketError::IndexOutOfRange { bucket, n_buckets } => {
                write!(
                    f,
                    "bucket index {bucket} out of range ({n_buckets} buckets)"
                )
            }
        }
    }
}

impl From<BucketError> for TransportError {
    fn from(e: BucketError) -> TransportError {
        TransportError::Protocol(e.to_string())
    }
}

/// Reassembles one sender's [`Payload::Bucket`] stream back into the
/// flat vector, strictly by bucket index. Arrival order is irrelevant;
/// duplicates overwrite (resend tolerance). One assembler per
/// (sender, vector) stream; [`BucketAssembler::absorb`] returns the
/// completed vector and resets the assembler for the next set.
#[derive(Debug, Default)]
pub struct BucketAssembler {
    chunks: Vec<Option<Vec<f32>>>,
    filled: usize,
}

impl BucketAssembler {
    /// A fresh, empty assembler.
    pub fn new() -> BucketAssembler {
        BucketAssembler::default()
    }

    /// Is any bucket of the current set outstanding or absorbed?
    pub fn in_progress(&self) -> bool {
        self.filled > 0
    }

    /// Drop any partially-assembled set (e.g. on round change).
    pub fn reset(&mut self) {
        self.chunks.clear();
        self.filled = 0;
    }

    /// Absorb one bucket frame. Returns the reassembled flat vector —
    /// buckets concatenated in index order — once every bucket of the
    /// set has arrived, resetting the assembler for the next set.
    ///
    /// # Errors
    /// [`BucketError`] when the frame structurally contradicts the set
    /// (zero count, count mismatch, index out of range). The assembler
    /// state is unchanged on error.
    pub fn absorb(
        &mut self,
        bucket: u32,
        n_buckets: u32,
        values: Vec<f32>,
    ) -> Result<Option<Vec<f32>>, BucketError> {
        if n_buckets == 0 {
            return Err(BucketError::ZeroBuckets);
        }
        if self.filled == 0 && self.chunks.len() != n_buckets as usize {
            self.chunks.clear();
            self.chunks.resize_with(n_buckets as usize, || None);
        }
        if self.chunks.len() != n_buckets as usize {
            return Err(BucketError::CountMismatch {
                expected: self.chunks.len() as u32,
                got: n_buckets,
            });
        }
        if bucket >= n_buckets {
            return Err(BucketError::IndexOutOfRange { bucket, n_buckets });
        }
        let slot = &mut self.chunks[bucket as usize];
        if slot.is_none() {
            self.filled += 1;
        }
        *slot = Some(values);
        if self.filled < self.chunks.len() {
            return Ok(None);
        }
        let total: usize = self.chunks.iter().flatten().map(Vec::len).sum();
        let mut flat = Vec::with_capacity(total);
        for c in &mut self.chunks {
            // lint:allow(unwrap-in-prod): filled == chunks.len() means
            // every slot is Some
            flat.extend_from_slice(c.as_ref().unwrap());
        }
        self.reset();
        Ok(Some(flat))
    }
}

/// Per-sender intake that normalizes round contributions at arrival:
/// bucket streams reassemble (any arrival order, duplicates overwrite)
/// and compressed payloads densify, so the round logic downstream only
/// ever sees the payload kinds it handled before pipelining existed —
/// which is what keeps the bucketed path bit-identical to the
/// monolithic one by construction.
#[derive(Debug, Default)]
pub struct BucketIntake {
    as_params: bool,
    asm: BTreeMap<usize, BucketAssembler>,
}

impl BucketIntake {
    /// Intake surfacing completed sets as [`Payload::Grads`].
    pub fn grads() -> BucketIntake {
        BucketIntake::default()
    }

    /// Intake surfacing completed sets as [`Payload::Params`].
    pub fn params() -> BucketIntake {
        BucketIntake {
            as_params: true,
            asm: BTreeMap::new(),
        }
    }

    /// Accept one raw message. `Ok(Some)` is a complete, normalized
    /// contribution; `Ok(None)` means a partial bucket was absorbed and
    /// the sender's set is still in flight.
    ///
    /// # Errors
    /// [`TransportError::Protocol`] on a structurally invalid bucket
    /// frame or compressed payload.
    pub fn accept(&mut self, m: Msg) -> Result<Option<Msg>, TransportError> {
        let Msg { from, tag, payload } = m;
        let payload = match payload {
            Payload::Bucket {
                bucket,
                n_buckets,
                values,
            } => match self
                .asm
                .entry(from)
                .or_default()
                .absorb(bucket, n_buckets, values)?
            {
                Some(flat) if self.as_params => Payload::Params(flat),
                Some(flat) => Payload::Grads(flat),
                None => return Ok(None),
            },
            other => densify_payload(other)?,
        };
        Ok(Some(Msg { from, tag, payload }))
    }

    /// Does sender `from` have a partially-assembled set in flight?
    pub fn in_progress(&self, from: usize) -> bool {
        self.asm
            .get(&from)
            .is_some_and(BucketAssembler::in_progress)
    }

    /// Drop all partial state (round abort, membership change).
    pub fn reset(&mut self) {
        self.asm.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;

    #[test]
    fn ranges_tile_the_vector_exactly() {
        for (len, b) in [(10, 3), (12, 4), (1, 8), (0, 5), (7, 7), (8, 1)] {
            let n = n_buckets(len, b);
            let mut covered = 0;
            for i in 0..n {
                let r = bucket_range(len, b, i);
                assert_eq!(r.start, covered, "len {len} b {b} bucket {i}");
                assert!(r.end - r.start <= b);
                covered = r.end;
            }
            assert_eq!(covered, len, "len {len} bucket {b}");
        }
        // an empty vector still forms one (empty) bucket
        assert_eq!(n_buckets(0, 4), 1);
        assert_eq!(bucket_range(0, 4, 0), 0..0);
    }

    #[test]
    fn out_of_order_arrival_reassembles_in_index_order() {
        let mut a = BucketAssembler::new();
        // 7 values at B=3 → buckets [0,1,2][3,4,5][6]
        assert_eq!(a.absorb(2, 3, vec![6.0]).unwrap(), None);
        assert!(a.in_progress());
        assert_eq!(a.absorb(0, 3, vec![0.0, 1.0, 2.0]).unwrap(), None);
        let flat = a.absorb(1, 3, vec![3.0, 4.0, 5.0]).unwrap().unwrap();
        assert_eq!(flat, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // the assembler reset for the next set
        assert!(!a.in_progress());
        assert_eq!(a.absorb(0, 1, vec![9.0]).unwrap(), Some(vec![9.0]));
    }

    #[test]
    fn duplicates_overwrite_instead_of_erroring() {
        let mut a = BucketAssembler::new();
        assert_eq!(a.absorb(0, 2, vec![1.0]).unwrap(), None);
        // a resend of the same bucket (elastic retry / chaos duplicate)
        assert_eq!(a.absorb(0, 2, vec![1.5]).unwrap(), None);
        let flat = a.absorb(1, 2, vec![2.0]).unwrap().unwrap();
        assert_eq!(flat, vec![1.5, 2.0], "latest copy wins");
    }

    #[test]
    fn structural_lies_are_rejected() {
        let mut a = BucketAssembler::new();
        assert_eq!(a.absorb(0, 0, vec![]), Err(BucketError::ZeroBuckets));
        a.absorb(0, 3, vec![1.0]).unwrap();
        assert_eq!(
            a.absorb(1, 4, vec![2.0]),
            Err(BucketError::CountMismatch {
                expected: 3,
                got: 4
            })
        );
        assert_eq!(
            a.absorb(5, 3, vec![2.0]),
            Err(BucketError::IndexOutOfRange {
                bucket: 5,
                n_buckets: 3
            })
        );
        // errors left the in-flight set intact
        assert!(a.in_progress());
        a.absorb(1, 3, vec![2.0]).unwrap();
        assert_eq!(
            a.absorb(2, 3, vec![3.0]).unwrap(),
            Some(vec![1.0, 2.0, 3.0])
        );
    }

    #[test]
    fn intake_interleaves_senders_and_normalizes_compressed() {
        let mut intake = BucketIntake::grads();
        let b = |from, bucket, values: Vec<f32>| Msg {
            from,
            tag: 3,
            payload: Payload::Bucket {
                bucket,
                n_buckets: 2,
                values,
            },
        };
        // two senders' bucket streams interleaved on one intake
        assert!(intake.accept(b(0, 0, vec![1.0])).unwrap().is_none());
        assert!(intake.accept(b(1, 1, vec![20.0])).unwrap().is_none());
        assert!(intake.in_progress(0) && intake.in_progress(1));
        let m = intake.accept(b(0, 1, vec![2.0])).unwrap().unwrap();
        assert_eq!(m.from, 0);
        assert!(matches!(m.payload, Payload::Grads(v) if v == vec![1.0, 2.0]));
        let m = intake.accept(b(1, 0, vec![10.0])).unwrap().unwrap();
        assert!(matches!(m.payload, Payload::Grads(v) if v == vec![10.0, 20.0]));
        // compressed contributions densify in place
        let m = intake
            .accept(Msg {
                from: 2,
                tag: 3,
                payload: Payload::SparseGrad {
                    len: 3,
                    indices: vec![2],
                    values: vec![7.0],
                },
            })
            .unwrap()
            .unwrap();
        assert!(matches!(m.payload, Payload::Grads(v) if v == vec![0.0, 0.0, 7.0]));
        // non-bucket, non-compressed traffic passes through untouched
        let m = intake
            .accept(Msg {
                from: 0,
                tag: 4,
                payload: Payload::Control(9),
            })
            .unwrap()
            .unwrap();
        assert!(matches!(m.payload, Payload::Control(9)));
    }

    #[test]
    fn params_intake_surfaces_param_pushes() {
        let mut intake = BucketIntake::params();
        let m = intake
            .accept(Msg {
                from: 1,
                tag: 0,
                payload: Payload::Bucket {
                    bucket: 0,
                    n_buckets: 1,
                    values: vec![5.0],
                },
            })
            .unwrap()
            .unwrap();
        assert!(matches!(m.payload, Payload::Params(v) if v == vec![5.0]));
    }

    #[test]
    fn bucket_payloads_tile_the_vector_and_agree_with_send() {
        let values: Vec<f32> = (0..11).map(|i| i as f32 * 0.5).collect();
        let frames = bucket_payloads(&values, 4);
        assert_eq!(frames.len(), n_buckets(values.len(), 4));
        let mut cat = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            match f {
                Payload::Bucket {
                    bucket,
                    n_buckets,
                    values,
                } => {
                    assert_eq!(*bucket as usize, i);
                    assert_eq!(*n_buckets as usize, frames.len());
                    cat.extend_from_slice(values);
                }
                other => panic!("unexpected payload {other:?}"),
            }
        }
        assert_eq!(cat, values);
        // an empty vector still forms one empty frame
        assert_eq!(bucket_payloads(&[], 4).len(), 1);
    }

    #[test]
    fn sent_buckets_reassemble_bit_identically() {
        let mut eps = Fabric::new(2);
        let mut rx = eps.pop().unwrap();
        let mut tx = eps.pop().unwrap();
        let values: Vec<f32> = (0..23).map(|i| (i as f32).sin()).collect();
        send_all_buckets(&mut tx, 1, 5, &values, 4).unwrap();
        let mut asm = BucketAssembler::new();
        let mut out = None;
        while out.is_none() {
            let m = rx.recv_tagged(Some(0), 5).unwrap();
            match m.payload {
                Payload::Bucket {
                    bucket,
                    n_buckets,
                    values,
                } => out = asm.absorb(bucket, n_buckets, values).unwrap(),
                other => panic!("unexpected payload {other:?}"),
            }
        }
        let out = out.unwrap();
        assert_eq!(
            out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        // byte accounting: 6 buckets of ≤4 values, each a full frame
        assert_eq!(tx.stats().total_messages(), 6);
    }
}
