//! Shared communication counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fabric-wide message/byte counters, shared by all endpoints.
///
/// Five tallies cover the life of a message: **sent** (the application
/// asked for it), **received** (an endpoint drained it off the fabric),
/// **dropped** (a fault-injection layer discarded it), **duplicated**
/// (a fault-injection layer delivered an extra copy), and **corrupt**
/// (the frame's bytes were damaged in flight and the decoder rejected
/// it — counted by whichever layer detects the damage, the chaos
/// transport or a TCP reader thread). On a fault-free fabric
/// sent = received once all traffic drains; with chaos injected the
/// conservation law becomes
/// `sent - dropped - corrupt + duplicated = received` — the invariant
/// the chaos and soak tests assert.
///
/// Relaxed ordering suffices: counters are monotonic tallies read after
/// the threads join, never used for synchronization.
#[derive(Debug, Default)]
pub struct CommStats {
    bytes: AtomicU64,
    messages: AtomicU64,
    recv_bytes: AtomicU64,
    recv_messages: AtomicU64,
    dropped_bytes: AtomicU64,
    dropped_messages: AtomicU64,
    duplicated_bytes: AtomicU64,
    duplicated_messages: AtomicU64,
    corrupt_bytes: AtomicU64,
    corrupt_messages: AtomicU64,
}

impl CommStats {
    /// Record one sent message of `bytes` wire bytes.
    pub fn record(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one received message of `bytes` wire bytes (counted when
    /// the endpoint drains it off the fabric, buffered or not).
    pub fn record_recv(&self, bytes: u64) {
        self.recv_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.recv_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one message discarded by fault injection.
    pub fn record_drop(&self, bytes: u64) {
        self.dropped_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.dropped_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one extra copy delivered by fault injection.
    pub fn record_duplicate(&self, bytes: u64) {
        self.duplicated_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.duplicated_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one message lost to byte-level damage (CRC mismatch,
    /// torn frame, hostile length) of `bytes` intended wire bytes.
    pub fn record_corrupt(&self, bytes: u64) {
        self.corrupt_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.corrupt_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Total wire bytes sent so far.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total messages sent so far.
    pub fn total_messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total wire bytes received so far.
    pub fn recv_bytes(&self) -> u64 {
        self.recv_bytes.load(Ordering::Relaxed)
    }

    /// Total messages received so far.
    pub fn recv_messages(&self) -> u64 {
        self.recv_messages.load(Ordering::Relaxed)
    }

    /// Total wire bytes discarded by fault injection.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes.load(Ordering::Relaxed)
    }

    /// Total messages discarded by fault injection.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped_messages.load(Ordering::Relaxed)
    }

    /// Total extra wire bytes delivered by fault injection.
    pub fn duplicated_bytes(&self) -> u64 {
        self.duplicated_bytes.load(Ordering::Relaxed)
    }

    /// Total extra messages delivered by fault injection.
    pub fn duplicated_messages(&self) -> u64 {
        self.duplicated_messages.load(Ordering::Relaxed)
    }

    /// Total wire bytes lost to byte-level damage.
    pub fn corrupt_bytes(&self) -> u64 {
        self.corrupt_bytes.load(Ordering::Relaxed)
    }

    /// Total messages lost to byte-level damage.
    pub fn corrupt_messages(&self) -> u64 {
        self.corrupt_messages.load(Ordering::Relaxed)
    }

    /// Reset every counter (between experiment phases).
    pub fn reset(&self) {
        self.bytes.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.recv_bytes.store(0, Ordering::Relaxed);
        self.recv_messages.store(0, Ordering::Relaxed);
        self.dropped_bytes.store(0, Ordering::Relaxed);
        self.dropped_messages.store(0, Ordering::Relaxed);
        self.duplicated_bytes.store(0, Ordering::Relaxed);
        self.duplicated_messages.store(0, Ordering::Relaxed);
        self.corrupt_bytes.store(0, Ordering::Relaxed);
        self.corrupt_messages.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counters_accumulate() {
        let s = CommStats::default();
        s.record(10);
        s.record(5);
        assert_eq!(s.total_bytes(), 15);
        assert_eq!(s.total_messages(), 2);
        s.reset();
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn recv_drop_duplicate_corrupt_tallies_are_independent() {
        let s = CommStats::default();
        s.record(100);
        s.record(100);
        s.record(100);
        s.record_recv(100);
        s.record_drop(100);
        s.record_duplicate(100);
        s.record_corrupt(100);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.recv_messages(), 1);
        assert_eq!(s.dropped_messages(), 1);
        assert_eq!(s.duplicated_messages(), 1);
        assert_eq!(s.corrupt_messages(), 1);
        // conservation: sent - dropped - corrupt + duplicated = deliverable
        assert_eq!(
            s.total_messages() - s.dropped_messages() - s.corrupt_messages()
                + s.duplicated_messages(),
            2
        );
        s.reset();
        assert_eq!(
            s.recv_bytes() + s.dropped_bytes() + s.duplicated_bytes() + s.corrupt_bytes(),
            0
        );
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let s = Arc::new(CommStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record(3);
                        s.record_recv(3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.total_messages(), 4000);
        assert_eq!(s.recv_messages(), 4000);
        assert_eq!(s.total_bytes(), 12000);
    }
}
