//! Shared communication counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fabric-wide message/byte counters, shared by all endpoints.
///
/// Relaxed ordering suffices: counters are monotonic tallies read after
/// the threads join, never used for synchronization.
#[derive(Debug, Default)]
pub struct CommStats {
    bytes: AtomicU64,
    messages: AtomicU64,
}

impl CommStats {
    /// Record one sent message of `bytes` wire bytes.
    pub fn record(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Total wire bytes sent so far.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total messages sent so far.
    pub fn total_messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Reset both counters (between experiment phases).
    pub fn reset(&self) {
        self.bytes.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counters_accumulate() {
        let s = CommStats::default();
        s.record(10);
        s.record(5);
        assert_eq!(s.total_bytes(), 15);
        assert_eq!(s.total_messages(), 2);
        s.reset();
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let s = Arc::new(CommStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record(3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.total_messages(), 4000);
        assert_eq!(s.total_bytes(), 12000);
    }
}
