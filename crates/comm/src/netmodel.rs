//! Analytic network cost model.
//!
//! Real wall-clock on this host says nothing about a 16×V100 cluster on a
//! 5 Gbps NIC, so timing *claims* are produced by this model, driven by
//! the *paper-scale* model sizes (`selsync_nn::models::ModelKind`) and
//! the decisions (sync / local) the real in-process run actually made.
//! This is DESIGN.md substitution 1.

use serde::{Deserialize, Serialize};

/// Link and endpoint parameters of the modeled cluster.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Link bandwidth in bits per second (paper: 5 Gbps).
    pub bandwidth_bps: f64,
    /// One-way message latency in seconds (per hop).
    pub latency_s: f64,
    /// Effective parallelism of PS service: how many link-equivalents
    /// of bandwidth the PS round can use concurrently. 1 models a single
    /// serialized NIC; the paper cluster behaves like ~7 (four per-node
    /// NICs carrying flows in parallel plus push/pull overlap — backed
    /// out from the measured 3× relative throughput of ResNet101 on 16
    /// workers in Fig. 1a; see EXPERIMENTS.md).
    pub ps_parallelism: f64,
}

impl NetworkModel {
    /// The paper's cluster fabric: 5 Gbps NIC, ~0.5 ms latency over the
    /// docker-swarm overlay.
    pub fn paper_cluster() -> Self {
        NetworkModel {
            bandwidth_bps: 5.0e9,
            latency_s: 0.5e-3,
            ps_parallelism: 7.0,
        }
    }

    /// Time to move `bytes` point-to-point.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        self.latency_s + (bytes as f64 * 8.0) / self.bandwidth_bps
    }

    /// One full PS synchronization for `n` workers and a model of
    /// `model_bytes`: all workers push through the server's shared
    /// ingress, then pull through its egress (the PS bandwidth wall the
    /// paper's §III-E discussion references).
    pub fn ps_sync_time(&self, model_bytes: u64, n: usize) -> f64 {
        let serialized =
            (n as u64 * model_bytes) as f64 * 8.0 / (self.bandwidth_bps * self.ps_parallelism);
        2.0 * (self.latency_s + serialized)
    }

    /// Partial PS round: `pushers` upload, `pullers` download.
    pub fn ps_partial_sync_time(&self, model_bytes: u64, pushers: usize, pullers: usize) -> f64 {
        let eff = self.bandwidth_bps * self.ps_parallelism;
        let up = (pushers as u64 * model_bytes) as f64 * 8.0 / eff;
        let down = (pullers as u64 * model_bytes) as f64 * 8.0 / eff;
        2.0 * self.latency_s + up + down
    }

    /// Bandwidth-optimal ring allreduce: `2(N−1)/N · M` bytes per worker
    /// plus `2(N−1)` latency hops (§III-E's "bandwidth-optimal" remark).
    pub fn ring_allreduce_time(&self, model_bytes: u64, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let volume = 2.0 * (n as f64 - 1.0) / n as f64 * model_bytes as f64 * 8.0;
        volume / self.bandwidth_bps + 2.0 * (n as f64 - 1.0) * self.latency_s
    }

    /// The 1-bit-per-worker flags allgather of Alg. 1 line 12 — latency
    /// dominated; the paper measured ≈2–4 ms.
    pub fn flags_allgather_time(&self, n: usize) -> f64 {
        // parallel exchange: two latency hops plus negligible payload
        2.0 * self.latency_s + (n as f64 * 8.0) / self.bandwidth_bps
    }

    /// Per-iteration data-injection traffic time (§III-E): the shared
    /// samples ride P2P links in parallel with, at worst, one serialized
    /// hop each way.
    pub fn injection_time(&self, injected_bytes: u64) -> f64 {
        self.p2p_time(injected_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm() -> NetworkModel {
        NetworkModel::paper_cluster()
    }

    #[test]
    fn p2p_is_latency_plus_serialization() {
        let t = nm().p2p_time(5_000_000_000 / 8); // exactly 1 second of payload
        assert!((t - 1.0005).abs() < 1e-6);
    }

    #[test]
    fn ps_sync_scales_linearly_with_workers() {
        let m = 100_000_000; // 100 MB model
        let t8 = nm().ps_sync_time(m, 8);
        let t16 = nm().ps_sync_time(m, 16);
        assert!(t16 / t8 > 1.9 && t16 / t8 < 2.1, "PS wall scales with N");
    }

    #[test]
    fn ring_allreduce_is_nearly_n_independent() {
        let m = 100_000_000;
        let t4 = nm().ring_allreduce_time(m, 4);
        let t16 = nm().ring_allreduce_time(m, 16);
        // volume term: 2(N-1)/N approaches 2; ratio stays near 1
        assert!(
            t16 / t4 < 1.4,
            "ring allreduce is bandwidth-optimal: {t4} vs {t16}"
        );
    }

    #[test]
    fn ring_beats_ps_at_scale() {
        let m = 500_000_000; // VGG11-scale
        assert!(nm().ring_allreduce_time(m, 16) < nm().ps_sync_time(m, 16));
    }

    #[test]
    fn flags_allgather_matches_paper_2_to_4_ms() {
        let t = nm().flags_allgather_time(16);
        assert!(t > 0.5e-3 && t < 5e-3, "flags op ≈ couple of ms, got {t}");
    }

    #[test]
    fn single_worker_ring_is_free() {
        assert_eq!(nm().ring_allreduce_time(1_000_000, 1), 0.0);
    }

    #[test]
    fn vgg11_ps_sync_dominates_compute() {
        // paper §I: 507 MB VGG11 on 5 Gbps made 2-worker throughput < 1×.
        // one sync for 2 workers must exceed a typical ~100 ms GPU step.
        let t = nm().ps_sync_time(507_000_000, 2);
        assert!(t > 0.1, "VGG11 sync {t}s must dwarf a compute step");
    }
}
