//! Analytic network cost model.
//!
//! Real wall-clock on this host says nothing about a 16×V100 cluster on a
//! 5 Gbps NIC, so timing *claims* are produced by this model, driven by
//! the *paper-scale* model sizes (`selsync_nn::models::ModelKind`) and
//! the decisions (sync / local) the real in-process run actually made.
//! This is DESIGN.md substitution 1.

use serde::{Deserialize, Serialize};

/// Link and endpoint parameters of the modeled cluster.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Link bandwidth in bits per second (paper: 5 Gbps).
    pub bandwidth_bps: f64,
    /// One-way message latency in seconds (per hop).
    pub latency_s: f64,
    /// Effective parallelism of PS service: how many link-equivalents
    /// of bandwidth the PS round can use concurrently. 1 models a single
    /// serialized NIC; the paper cluster behaves like ~7 (four per-node
    /// NICs carrying flows in parallel plus push/pull overlap — backed
    /// out from the measured 3× relative throughput of ResNet101 on 16
    /// workers in Fig. 1a; see EXPERIMENTS.md).
    pub ps_parallelism: f64,
}

impl NetworkModel {
    /// The paper's cluster fabric: 5 Gbps NIC, ~0.5 ms latency over the
    /// docker-swarm overlay.
    pub fn paper_cluster() -> Self {
        NetworkModel {
            bandwidth_bps: 5.0e9,
            latency_s: 0.5e-3,
            ps_parallelism: 7.0,
        }
    }

    /// Time to move `bytes` point-to-point.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        self.latency_s + (bytes as f64 * 8.0) / self.bandwidth_bps
    }

    /// One full PS synchronization for `n` workers and a model of
    /// `model_bytes`: all workers push through the server's shared
    /// ingress, then pull through its egress (the PS bandwidth wall the
    /// paper's §III-E discussion references).
    pub fn ps_sync_time(&self, model_bytes: u64, n: usize) -> f64 {
        let serialized =
            (n as u64 * model_bytes) as f64 * 8.0 / (self.bandwidth_bps * self.ps_parallelism);
        2.0 * (self.latency_s + serialized)
    }

    /// One full synchronization against a **K-shard PS group**: each
    /// worker splits its `model_bytes` push into K ranges and fans them
    /// out concurrently, so the server-side ingress congestion term of
    /// [`ps_sync_time`](Self::ps_sync_time) divides by K — but never
    /// below the floor of a single worker's own transfer (a worker still
    /// serializes its whole model through its own NIC, so `k >= n`
    /// shards cannot beat that). Each extra shard costs one extra
    /// request dispatch worth of latency that pipelining does not fully
    /// hide, which is what makes K = 1 win for small models and many
    /// shards lose for tiny clusters.
    ///
    /// `sharded_ps_sync_time(m, n, 1) == ps_sync_time(m, n)` exactly —
    /// the cost-model mirror of the wire-level K = 1 byte identity.
    pub fn sharded_ps_sync_time(&self, model_bytes: u64, n: usize, k: usize) -> f64 {
        assert!(k >= 1, "need at least one shard");
        let eff = self.bandwidth_bps * self.ps_parallelism;
        let congested = (n as u64 * model_bytes) as f64 * 8.0 / (k as f64 * eff);
        let floor = model_bytes as f64 * 8.0 / eff;
        let serialized = congested.max(floor);
        2.0 * (self.latency_s + serialized) + (k as f64 - 1.0) * self.latency_s
    }

    /// The model size (bytes) above which a K-shard PS beats the single
    /// PS for `n` workers under this model: the point where the saved
    /// ingress serialization `2·(n·M/eff)·(1 − 1/K)` outgrows the
    /// `(K−1)·latency` fan-out overhead. Meaningful for `1 < k <= n`
    /// (beyond `n` shards the saving saturates at the single-worker
    /// floor).
    pub fn shard_crossover_bytes(&self, n: usize, k: usize) -> u64 {
        assert!(k > 1, "crossover is defined against the K = 1 baseline");
        let eff = self.bandwidth_bps * self.ps_parallelism;
        // 2·(n·M·8/eff)·(k−1)/k = (k−1)·latency  ⇒  M = k·latency·eff/(16·n)
        (k as f64 * self.latency_s * eff / (16.0 * n as f64)) as u64
    }

    /// One bucketed-pipeline synchronization (DESIGN.md §12): the push
    /// streams bucket-by-bucket *during* the remaining backward pass,
    /// so the wall-clock cost of the round is the larger of the two
    /// overlapped phases — the backward tail still computing
    /// (`compute_tail_s`) and the full PS round — instead of their sum.
    /// The serialized baseline pays `compute_tail_s +
    /// ps_sync_time(...)`; pipelining saves the smaller term.
    ///
    /// The bucket granularity itself does not appear: with buckets much
    /// smaller than the model the pipeline's fill/drain stubs are one
    /// bucket's transfer each, which the latency term already dwarfs at
    /// paper scale.
    pub fn pipelined_sync_time(&self, model_bytes: u64, n: usize, compute_tail_s: f64) -> f64 {
        compute_tail_s.max(self.ps_sync_time(model_bytes, n))
    }

    /// The model size (bytes) at which a PS round exactly fills a
    /// backward tail of `compute_tail_s` seconds — the crossover of the
    /// two [`pipelined_sync_time`](Self::pipelined_sync_time) regimes,
    /// mirroring [`shard_crossover_bytes`](Self::shard_crossover_bytes).
    /// Below it the push hides entirely under compute (overlap saves
    /// the whole sync, the job is compute-bound); above it compute
    /// hides under the push (overlap saves the whole tail, the job is
    /// at the PS bandwidth wall and only sharding or compression —
    /// not more overlap — buys further speedup). Returns 0 when the
    /// tail is too short to cover even the two latency hops.
    pub fn overlap_crossover_bytes(&self, n: usize, compute_tail_s: f64) -> u64 {
        let eff = self.bandwidth_bps * self.ps_parallelism;
        // 2·(latency + n·M·8/eff) = T  ⇒  M = (T/2 − latency)·eff/(8·n)
        let m = (compute_tail_s / 2.0 - self.latency_s) * eff / (8.0 * n as f64);
        if m > 0.0 {
            m as u64
        } else {
            0
        }
    }

    /// Partial PS round: `pushers` upload, `pullers` download.
    pub fn ps_partial_sync_time(&self, model_bytes: u64, pushers: usize, pullers: usize) -> f64 {
        let eff = self.bandwidth_bps * self.ps_parallelism;
        let up = (pushers as u64 * model_bytes) as f64 * 8.0 / eff;
        let down = (pullers as u64 * model_bytes) as f64 * 8.0 / eff;
        2.0 * self.latency_s + up + down
    }

    /// Bandwidth-optimal ring allreduce: `2(N−1)/N · M` bytes per worker
    /// plus `2(N−1)` latency hops (§III-E's "bandwidth-optimal" remark).
    pub fn ring_allreduce_time(&self, model_bytes: u64, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let volume = 2.0 * (n as f64 - 1.0) / n as f64 * model_bytes as f64 * 8.0;
        volume / self.bandwidth_bps + 2.0 * (n as f64 - 1.0) * self.latency_s
    }

    /// The 1-bit-per-worker flags allgather of Alg. 1 line 12 — latency
    /// dominated; the paper measured ≈2–4 ms.
    pub fn flags_allgather_time(&self, n: usize) -> f64 {
        // parallel exchange: two latency hops plus negligible payload
        2.0 * self.latency_s + (n as f64 * 8.0) / self.bandwidth_bps
    }

    /// Per-iteration data-injection traffic time (§III-E): the shared
    /// samples ride P2P links in parallel with, at worst, one serialized
    /// hop each way.
    pub fn injection_time(&self, injected_bytes: u64) -> f64 {
        self.p2p_time(injected_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm() -> NetworkModel {
        NetworkModel::paper_cluster()
    }

    #[test]
    fn p2p_is_latency_plus_serialization() {
        let t = nm().p2p_time(5_000_000_000 / 8); // exactly 1 second of payload
        assert!((t - 1.0005).abs() < 1e-6);
    }

    #[test]
    fn ps_sync_scales_linearly_with_workers() {
        let m = 100_000_000; // 100 MB model
        let t8 = nm().ps_sync_time(m, 8);
        let t16 = nm().ps_sync_time(m, 16);
        assert!(t16 / t8 > 1.9 && t16 / t8 < 2.1, "PS wall scales with N");
    }

    #[test]
    fn ring_allreduce_is_nearly_n_independent() {
        let m = 100_000_000;
        let t4 = nm().ring_allreduce_time(m, 4);
        let t16 = nm().ring_allreduce_time(m, 16);
        // volume term: 2(N-1)/N approaches 2; ratio stays near 1
        assert!(
            t16 / t4 < 1.4,
            "ring allreduce is bandwidth-optimal: {t4} vs {t16}"
        );
    }

    #[test]
    fn ring_beats_ps_at_scale() {
        let m = 500_000_000; // VGG11-scale
        assert!(nm().ring_allreduce_time(m, 16) < nm().ps_sync_time(m, 16));
    }

    #[test]
    fn flags_allgather_matches_paper_2_to_4_ms() {
        let t = nm().flags_allgather_time(16);
        assert!(t > 0.5e-3 && t < 5e-3, "flags op ≈ couple of ms, got {t}");
    }

    #[test]
    fn single_worker_ring_is_free() {
        assert_eq!(nm().ring_allreduce_time(1_000_000, 1), 0.0);
    }

    #[test]
    fn sharded_k1_equals_monolithic_exactly() {
        for m in [1_000u64, 5_000_000, 507_000_000] {
            for n in [2usize, 8, 16] {
                assert_eq!(nm().sharded_ps_sync_time(m, n, 1), nm().ps_sync_time(m, n));
            }
        }
    }

    #[test]
    fn sharding_wins_at_the_congested_point() {
        // VGG11-scale on 16 workers: the paper's PS bandwidth wall
        let m = 507_000_000;
        let t1 = nm().sharded_ps_sync_time(m, 16, 1);
        let t2 = nm().sharded_ps_sync_time(m, 16, 2);
        let t4 = nm().sharded_ps_sync_time(m, 16, 4);
        assert!(t4 < t2 && t2 < t1, "t4={t4} t2={t2} t1={t1}");
        assert!(t1 / t4 > 3.0, "4 shards ≈ 4× the congested ingress");
    }

    #[test]
    fn tiny_models_prefer_one_shard() {
        // the flags-scale payload: fan-out dispatch overhead dominates
        let m = 1_000;
        assert!(nm().sharded_ps_sync_time(m, 16, 4) > nm().sharded_ps_sync_time(m, 16, 1));
    }

    #[test]
    fn oversharding_saturates_at_the_worker_uplink_floor() {
        let m = 507_000_000;
        let n = 4;
        let eff = nm().bandwidth_bps * nm().ps_parallelism;
        let floor = m as f64 * 8.0 / eff;
        // k = n already hits the floor; more shards only add overhead
        let t = nm().sharded_ps_sync_time(m, n, 8);
        assert!(t >= 2.0 * floor, "cannot beat one worker's own transfer");
        assert!(nm().sharded_ps_sync_time(m, n, 8) > nm().sharded_ps_sync_time(m, n, 4));
    }

    #[test]
    fn crossover_separates_the_regimes() {
        let n = 16;
        let k = 4;
        let cross = nm().shard_crossover_bytes(n, k);
        assert!(cross > 0);
        let below = cross / 2;
        let above = cross * 2;
        assert!(
            nm().sharded_ps_sync_time(below, n, k) > nm().sharded_ps_sync_time(below, n, 1),
            "below the crossover the single PS wins"
        );
        assert!(
            nm().sharded_ps_sync_time(above, n, k) < nm().sharded_ps_sync_time(above, n, 1),
            "above the crossover the shard group wins"
        );
    }

    #[test]
    fn pipelined_sync_is_the_max_of_the_overlapped_phases() {
        let m = 100_000_000u64;
        let n = 8;
        let sync = nm().ps_sync_time(m, n);
        for tail in [sync / 4.0, sync, 4.0 * sync] {
            let t = nm().pipelined_sync_time(m, n, tail);
            assert_eq!(t, tail.max(sync));
            // never worse than serial, and the saving is the hidden term
            let serial = tail + sync;
            assert!((serial - t - tail.min(sync)).abs() < 1e-12);
        }
    }

    #[test]
    fn overlap_crossover_separates_compute_and_comm_bound_regimes() {
        let n = 16;
        let tail = 0.1; // a ~100 ms backward tail
        let cross = nm().overlap_crossover_bytes(n, tail);
        assert!(cross > 0);
        // below the crossover the push hides under compute...
        assert!(nm().ps_sync_time(cross / 2, n) < tail);
        assert_eq!(nm().pipelined_sync_time(cross / 2, n, tail), tail);
        // ...above it the job sits at the PS bandwidth wall
        assert!(nm().ps_sync_time(cross * 2, n) > tail);
        assert!(nm().pipelined_sync_time(cross * 2, n, tail) > tail);
    }

    #[test]
    fn degenerate_overlap_crossover_is_zero() {
        // a tail shorter than the two latency hops can hide nothing
        assert_eq!(nm().overlap_crossover_bytes(16, 1e-6), 0);
    }

    #[test]
    fn vgg11_overlap_cannot_fix_the_bandwidth_wall() {
        // paper §I: 507 MB VGG11 on 5 Gbps is comm-bound; overlap only
        // hides the compute tail, leaving the sync time itself exposed
        let m = 507_000_000;
        let sync = nm().ps_sync_time(m, 2);
        assert_eq!(nm().pipelined_sync_time(m, 2, 0.1), sync);
    }

    #[test]
    fn vgg11_ps_sync_dominates_compute() {
        // paper §I: 507 MB VGG11 on 5 Gbps made 2-worker throughput < 1×.
        // one sync for 2 workers must exceed a typical ~100 ms GPU step.
        let t = nm().ps_sync_time(507_000_000, 2);
        assert!(t > 0.1, "VGG11 sync {t}s must dwarf a compute step");
    }
}
