//! Simulated cluster clock.
//!
//! Each worker accumulates modeled compute and communication time on its
//! own lane; synchronization points merge lanes to the maximum (everyone
//! waits for the straggler) before adding the collective's cost —
//! exactly the `t_it = t_c + t_s` accounting of §II-A.

use serde::{Deserialize, Serialize};

/// Per-worker simulated clocks for one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterClock {
    lanes: Vec<f64>,
}

impl ClusterClock {
    /// A clock with `n` worker lanes at t = 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        ClusterClock {
            lanes: vec![0.0; n],
        }
    }

    /// Number of lanes.
    pub fn num_workers(&self) -> usize {
        self.lanes.len()
    }

    /// Advance worker `w` by `dt` seconds of local work.
    pub fn advance(&mut self, w: usize, dt: f64) {
        debug_assert!(dt >= 0.0, "time cannot go backwards");
        self.lanes[w] += dt;
    }

    /// Advance every worker by `dt` (uniform local work).
    pub fn advance_all(&mut self, dt: f64) {
        for l in &mut self.lanes {
            *l += dt;
        }
    }

    /// Blocking collective: all lanes jump to `max(lanes) + comm_time`.
    pub fn barrier(&mut self, comm_time: f64) {
        let t = self.elapsed() + comm_time;
        for l in &mut self.lanes {
            *l = t;
        }
    }

    /// Partial barrier over `participants` only (FedAvg with C < 1):
    /// the participants synchronize among themselves, others keep their
    /// lanes.
    pub fn partial_barrier(&mut self, participants: &[usize], comm_time: f64) {
        let t = participants
            .iter()
            .map(|&w| self.lanes[w])
            .fold(0.0f64, f64::max)
            + comm_time;
        for &w in participants {
            self.lanes[w] = t;
        }
    }

    /// Worker `w`'s current simulated time.
    pub fn lane(&self, w: usize) -> f64 {
        self.lanes[w]
    }

    /// Cluster elapsed time: the slowest lane.
    pub fn elapsed(&self) -> f64 {
        self.lanes.iter().copied().fold(0.0, f64::max)
    }

    /// Fastest lane (used by SSP staleness reasoning).
    pub fn min_lane(&self) -> f64 {
        self.lanes.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_advance_independently() {
        let mut c = ClusterClock::new(3);
        c.advance(0, 1.0);
        c.advance(1, 2.0);
        assert_eq!(c.lane(0), 1.0);
        assert_eq!(c.lane(1), 2.0);
        assert_eq!(c.lane(2), 0.0);
        assert_eq!(c.elapsed(), 2.0);
        assert_eq!(c.min_lane(), 0.0);
    }

    #[test]
    fn barrier_waits_for_straggler() {
        let mut c = ClusterClock::new(2);
        c.advance(0, 1.0);
        c.advance(1, 5.0);
        c.barrier(0.5);
        assert_eq!(c.lane(0), 5.5);
        assert_eq!(c.lane(1), 5.5);
    }

    #[test]
    fn partial_barrier_leaves_others_alone() {
        let mut c = ClusterClock::new(3);
        c.advance(0, 1.0);
        c.advance(1, 3.0);
        c.advance(2, 10.0);
        c.partial_barrier(&[0, 1], 1.0);
        assert_eq!(c.lane(0), 4.0);
        assert_eq!(c.lane(1), 4.0);
        assert_eq!(c.lane(2), 10.0);
    }

    #[test]
    fn advance_all_is_uniform() {
        let mut c = ClusterClock::new(2);
        c.advance_all(0.25);
        assert_eq!(c.lane(0), 0.25);
        assert_eq!(c.lane(1), 0.25);
    }
}
