//! Collective operations over fabric endpoints.
//!
//! All collectives are SPMD: every worker thread calls the same function
//! with its own endpoint, and the call blocks until the collective
//! completes on that worker. Tags isolate training steps (and, for the
//! ring, phases within a step), so a fast worker entering step `i+1`
//! cannot corrupt a slow worker still finishing step `i`.
//!
//! Every collective returns `Result<_, TransportError>`: a crashed ring
//! neighbour surfaces as `PeerUnreachable`/`RecvTimeout` at the caller
//! instead of aborting the process.

use crate::error::TransportError;
use crate::fabric::Payload;
use crate::transport::Transport;

/// Maximum phases a single collective may use within one step tag.
pub const TAG_STRIDE: u64 = 256;

/// Phase reserved for the flags allgather (kept clear of the ring
/// allreduce phases 0..2N−1 so both can run within one step).
pub const FLAGS_PHASE: u64 = 120;

/// Tag for `phase` of the collective running at training step `step`.
/// Phases 0..2N−1 are used by the reduction collectives in this module,
/// [`FLAGS_PHASE`] by the flags allgather; the trainer uses high phase
/// numbers (≥ 200) for its own worker-to-worker traffic (data
/// injection) within the same step.
pub fn phase_tag(step: u64, phase: u64) -> u64 {
    debug_assert!(phase < TAG_STRIDE);
    step * TAG_STRIDE + phase
}

/// Inverse of [`phase_tag`]: the training step a tag belongs to. Used by
/// a recovering server to classify traffic from rounds it has not
/// reached yet.
pub fn tag_step(tag: u64) -> u64 {
    tag / TAG_STRIDE
}

/// Allgather of one synchronization bit per worker (Alg. 1 line 12).
///
/// Returns the full flags array indexed by worker id. Total traffic is
/// `(N−1)` bits' worth of messages per worker, matching the paper's
/// negligible-overhead claim.
///
/// # Errors
/// Propagates transport faults; [`TransportError::Protocol`] on a
/// non-flags payload at the flags tag.
pub fn allgather_flags<T: Transport>(
    ep: &mut T,
    n_workers: usize,
    step: u64,
    my_bit: u8,
) -> Result<Vec<u8>, TransportError> {
    let me = ep.id();
    debug_assert!(me < n_workers, "server must not join the flags allgather");
    let tag = phase_tag(step, FLAGS_PHASE);
    for w in 0..n_workers {
        if w != me {
            ep.send(w, tag, Payload::Flags(vec![my_bit]))?;
        }
    }
    let mut flags = vec![0u8; n_workers];
    flags[me] = my_bit;
    for _ in 0..n_workers - 1 {
        let m = ep.recv_tagged(None, tag)?;
        if let Payload::Flags(bits) = m.payload {
            flags[m.from] = bits[0];
        } else {
            return Err(TransportError::Protocol(
                "unexpected payload in flags allgather".into(),
            ));
        }
    }
    Ok(flags)
}

/// Near-equal chunk boundaries (first `len % n` chunks get one extra).
fn chunks(len: usize, n: usize) -> Vec<(usize, usize)> {
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut s = 0;
    for i in 0..n {
        let l = base + usize::from(i < extra);
        out.push((s, s + l));
        s += l;
    }
    out
}

/// Bandwidth-optimal ring allreduce (sum) in place.
///
/// `N−1` scatter-reduce phases followed by `N−1` allgather phases, each
/// worker exchanging one `len/N` chunk with its ring neighbours per
/// phase — the collective §III-E suggests swapping in for the PS.
///
/// # Errors
/// Propagates transport faults; [`TransportError::Protocol`] on an
/// unexpected payload kind mid-ring.
pub fn ring_allreduce<T: Transport>(
    ep: &mut T,
    n_workers: usize,
    step: u64,
    data: &mut [f32],
) -> Result<(), TransportError> {
    let me = ep.id();
    debug_assert!(me < n_workers);
    if n_workers == 1 {
        return Ok(());
    }
    let bounds = chunks(data.len(), n_workers);
    let next = (me + 1) % n_workers;
    let prev = (me + n_workers - 1) % n_workers;
    // scatter-reduce: after phase p, chunk (me - p) holds partial sums
    for p in 0..n_workers - 1 {
        let send_chunk = (me + n_workers - p) % n_workers;
        let recv_chunk = (me + n_workers - p - 1) % n_workers;
        let (s, e) = bounds[send_chunk];
        ep.send(
            next,
            phase_tag(step, p as u64),
            Payload::Grads(data[s..e].to_vec()),
        )?;
        let m = ep.recv_tagged(Some(prev), phase_tag(step, p as u64))?;
        if let Payload::Grads(incoming) = m.payload {
            let (rs, re) = bounds[recv_chunk];
            debug_assert_eq!(incoming.len(), re - rs);
            for (d, v) in data[rs..re].iter_mut().zip(&incoming) {
                *d += v;
            }
        } else {
            return Err(TransportError::Protocol(
                "unexpected payload in ring scatter-reduce".into(),
            ));
        }
    }
    // allgather: circulate the fully-reduced chunks
    for p in 0..n_workers - 1 {
        let send_chunk = (me + 1 + n_workers - p) % n_workers;
        let recv_chunk = (me + n_workers - p) % n_workers;
        let (s, e) = bounds[send_chunk];
        ep.send(
            next,
            phase_tag(step, (n_workers - 1 + p) as u64),
            Payload::Grads(data[s..e].to_vec()),
        )?;
        let m = ep.recv_tagged(Some(prev), phase_tag(step, (n_workers - 1 + p) as u64))?;
        if let Payload::Grads(incoming) = m.payload {
            let (rs, re) = bounds[recv_chunk];
            data[rs..re].copy_from_slice(&incoming);
        } else {
            return Err(TransportError::Protocol(
                "unexpected payload in ring allgather".into(),
            ));
        }
    }
    Ok(())
}

/// Simple root-based allreduce (sum): everyone sends to worker 0, which
/// reduces and broadcasts. The PS-like baseline the ring is compared to.
///
/// # Errors
/// Propagates transport faults.
pub fn root_allreduce<T: Transport>(
    ep: &mut T,
    n_workers: usize,
    step: u64,
    data: &mut [f32],
) -> Result<(), TransportError> {
    let me = ep.id();
    if n_workers == 1 {
        return Ok(());
    }
    let up = phase_tag(step, 0);
    let down = phase_tag(step, 1);
    if me == 0 {
        for _ in 0..n_workers - 1 {
            let m = ep.recv_tagged(None, up)?;
            if let Payload::Grads(v) = m.payload {
                for (d, x) in data.iter_mut().zip(&v) {
                    *d += x;
                }
            }
        }
        for w in 1..n_workers {
            ep.send(w, down, Payload::Grads(data.to_vec()))?;
        }
    } else {
        ep.send(0, up, Payload::Grads(data.to_vec()))?;
        let m = ep.recv_tagged(Some(0), down)?;
        if let Payload::Grads(v) = m.payload {
            data.copy_from_slice(&v);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Endpoint, Fabric};
    use std::thread;

    fn run_workers<F>(n: usize, f: F) -> Vec<Vec<f32>>
    where
        F: Fn(&mut Endpoint, usize) -> Vec<f32> + Send + Sync + Copy + 'static,
    {
        let eps = Fabric::new(n);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let id = ep.id();
                    f(&mut ep, id)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn flags_allgather_agrees_everywhere() {
        let results = run_workers(4, |ep, id| {
            let bit = u8::from(id % 2 == 0);
            allgather_flags(ep, 4, 3, bit)
                .unwrap()
                .into_iter()
                .map(f32::from)
                .collect()
        });
        for r in &results {
            assert_eq!(r, &vec![1.0, 0.0, 1.0, 0.0]);
        }
    }

    #[test]
    fn ring_allreduce_sums_vectors() {
        // worker w contributes [w, w, ...]; sum = n(n-1)/2
        let n = 4;
        let results = run_workers(n, move |ep, id| {
            let mut v = vec![id as f32; 10];
            ring_allreduce(ep, n, 0, &mut v).unwrap();
            v
        });
        for r in &results {
            assert_eq!(r, &vec![6.0; 10], "0+1+2+3 = 6 everywhere");
        }
    }

    #[test]
    fn ring_allreduce_handles_uneven_chunks() {
        // length 7 with 3 workers: chunks 3/2/2
        let n = 3;
        let results = run_workers(n, move |ep, id| {
            let mut v: Vec<f32> = (0..7).map(|i| (i * (id + 1)) as f32).collect();
            ring_allreduce(ep, n, 5, &mut v).unwrap();
            v
        });
        let expected: Vec<f32> = (0..7).map(|i| (i * 6) as f32).collect(); // ×(1+2+3)
        for r in &results {
            assert_eq!(r, &expected);
        }
    }

    #[test]
    fn ring_consecutive_steps_do_not_interfere() {
        let n = 3;
        let results = run_workers(n, move |ep, _| {
            let mut out = Vec::new();
            for step in 0..5 {
                let mut v = vec![1.0f32; 4];
                ring_allreduce(ep, n, step, &mut v).unwrap();
                out.extend(v);
            }
            out
        });
        for r in &results {
            assert!(r.iter().all(|&x| x == 3.0), "every step sums to N");
        }
    }

    #[test]
    fn root_allreduce_matches_ring() {
        let n = 4;
        let results = run_workers(n, move |ep, id| {
            let mut v = vec![(id + 1) as f32; 6];
            root_allreduce(ep, n, 9, &mut v).unwrap();
            v
        });
        for r in &results {
            assert_eq!(r, &vec![10.0; 6]);
        }
    }

    #[test]
    fn single_worker_collectives_are_identity() {
        let results = run_workers(1, |ep, _| {
            let mut v = vec![5.0f32; 3];
            ring_allreduce(ep, 1, 0, &mut v).unwrap();
            root_allreduce(ep, 1, 1, &mut v).unwrap();
            let flags = allgather_flags(ep, 1, 2, 1).unwrap();
            assert_eq!(flags, vec![1]);
            v
        });
        assert_eq!(results[0], vec![5.0; 3]);
    }

    #[test]
    fn dead_ring_neighbour_is_an_error_not_a_panic() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        drop(b); // rank 1 crashed before the collective
        let mut v = vec![1.0f32; 4];
        let err = ring_allreduce(&mut a, 2, 0, &mut v).unwrap_err();
        assert_eq!(err, TransportError::PeerUnreachable { peer: 1 });
    }
}
