//! Property-based tests of the collectives: for arbitrary worker counts
//! and payloads, every collective returns the same mathematically
//! correct result on every worker, and the server protocols preserve
//! averaging semantics.

use proptest::prelude::*;
use selsync_comm::collectives::{allgather_flags, ring_allreduce, root_allreduce};
use selsync_comm::fabric::{Endpoint, Fabric};
use selsync_comm::ps::{run_round_server, send_shutdown, sync_round, SyncRequest};
use std::thread;

fn run_workers<F, R>(n: usize, f: F) -> Vec<R>
where
    F: Fn(&mut Endpoint, usize) -> R + Send + Sync + Copy + 'static,
    R: Send + 'static,
{
    let eps = Fabric::new(n);
    let handles: Vec<_> = eps
        .into_iter()
        .map(|mut ep| {
            thread::spawn(move || {
                let id = ep.id();
                f(&mut ep, id)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_allreduce_equals_elementwise_sum(
        n in 2usize..6,
        len in 1usize..40,
        seed in 0u64..1000,
    ) {
        let results = run_workers(n, move |ep, id| {
            // deterministic per-worker data derived from (seed, id)
            let mut v: Vec<f32> = (0..len)
                .map(|i| ((seed as usize + id * 31 + i * 7) % 13) as f32 - 6.0)
                .collect();
            ring_allreduce(ep, n, seed, &mut v).unwrap();
            v
        });
        let expected: Vec<f32> = (0..len)
            .map(|i| {
                (0..n)
                    .map(|id| ((seed as usize + id * 31 + i * 7) % 13) as f32 - 6.0)
                    .sum()
            })
            .collect();
        for r in &results {
            for (a, b) in r.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn ring_and_root_agree(n in 2usize..6, len in 1usize..30, seed in 0u64..500) {
        let ring = run_workers(n, move |ep, id| {
            let mut v = vec![(id + 1) as f32 + seed as f32; len];
            ring_allreduce(ep, n, 0, &mut v).unwrap();
            v
        });
        let root = run_workers(n, move |ep, id| {
            let mut v = vec![(id + 1) as f32 + seed as f32; len];
            root_allreduce(ep, n, 0, &mut v).unwrap();
            v
        });
        for (a, b) in ring[0].iter().zip(&root[0]) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn flags_allgather_is_consistent_for_any_bit_pattern(
        n in 1usize..8,
        pattern in 0u32..256,
    ) {
        let results = run_workers(n, move |ep, id| {
            let bit = ((pattern >> id) & 1) as u8;
            allgather_flags(ep, n, 0, bit).unwrap()
        });
        let expected: Vec<u8> = (0..n).map(|id| ((pattern >> id) & 1) as u8).collect();
        for r in &results {
            prop_assert_eq!(r, &expected);
        }
    }

    #[test]
    fn ps_param_round_returns_exact_mean(n in 1usize..6, base in -100.0f32..100.0) {
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let server = thread::spawn(move || run_round_server(server_ep, n, vec![0.0]).unwrap());
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let id = ep.id();
                    let v = sync_round(
                        &mut ep,
                        n,
                        0,
                        SyncRequest::PushParams(vec![base + id as f32]),
                    )
                    .unwrap();
                    send_shutdown(&mut ep, n, 1).unwrap();
                    v[0]
                })
            })
            .collect();
        let mean = base + (n - 1) as f32 / 2.0;
        for h in handles {
            let got = h.join().unwrap();
            prop_assert!((got - mean).abs() < 1e-3, "{got} vs {mean}");
        }
        let global = server.join().unwrap();
        prop_assert!((global[0] - mean).abs() < 1e-3);
    }
}
