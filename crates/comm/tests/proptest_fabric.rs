//! Property-based tests of the fabric: tagged receive is loss-free
//! under arbitrary interleavings, byte accounting is exact, and the
//! tag algebra never collides across steps.

use proptest::prelude::*;
use selsync_comm::collectives::{phase_tag, FLAGS_PHASE, TAG_STRIDE};
use selsync_comm::fabric::{Fabric, Payload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tagged_receive_recovers_any_send_order(order in prop::collection::vec(0usize..6, 6)) {
        // sender emits 6 messages with tags given by `order` (with
        // duplicates); receiver asks for them grouped by tag value and
        // must get every message exactly once
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for (i, &tag) in order.iter().enumerate() {
            b.send(0, tag as u64, Payload::Control(i as u64)).unwrap();
        }
        let mut received = Vec::new();
        let mut tags_sorted = order.clone();
        tags_sorted.sort_unstable();
        for &tag in &tags_sorted {
            let m = a.recv_tagged(Some(1), tag as u64).unwrap();
            prop_assert_eq!(m.tag, tag as u64);
            if let Payload::Control(i) = m.payload {
                received.push(i as usize);
            }
        }
        received.sort_unstable();
        prop_assert_eq!(received, (0..order.len()).collect::<Vec<_>>());
    }

    #[test]
    fn byte_accounting_is_exact(
        sizes in prop::collection::vec(0usize..200, 1..20),
    ) {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut expected = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            let p = Payload::Params(vec![0.0; s]);
            expected += p.wire_bytes();
            b.send(0, i as u64, p).unwrap();
        }
        for i in 0..sizes.len() {
            let _ = a.recv_tagged(Some(1), i as u64).unwrap();
        }
        prop_assert_eq!(a.stats().total_bytes(), expected);
        prop_assert_eq!(a.stats().total_messages(), sizes.len() as u64);
    }

    #[test]
    fn phase_tags_never_collide_across_steps(
        s1 in 0u64..10_000,
        s2 in 0u64..10_000,
        p1 in 0u64..TAG_STRIDE,
        p2 in 0u64..TAG_STRIDE,
    ) {
        let t1 = phase_tag(s1, p1);
        let t2 = phase_tag(s2, p2);
        if s1 != s2 || p1 != p2 {
            prop_assert_ne!(t1, t2, "tags are injective in (step, phase)");
        } else {
            prop_assert_eq!(t1, t2);
        }
    }

    #[test]
    fn flags_phase_is_clear_of_ring_phases(n in 1u64..60) {
        // the ring uses phases 0..2n-2; the flags allgather must not land
        // inside that range for any supported cluster size
        prop_assert!(FLAGS_PHASE >= 2 * n - 1 || n > 60);
        prop_assert!(FLAGS_PHASE < 200, "and must stay clear of the trainer's phases");
    }
}
