//! The model side of a replica: reconstruct a model from a spec + flat
//! parameters, and answer batched predict calls through the
//! allocation-free `Workspace` path.

use selsync_core::workload::{AnyModel, Workload};
use selsync_nn::flat::set_flat_params;
use selsync_nn::models::{Mlp, ModelKind};
use selsync_nn::Workspace;
use std::fmt;

/// How to rebuild the served model's architecture. The checkpoint holds
/// only the flat parameter vector, so the architecture travels as CLI
/// flags (`--model`, `--mlp-dims`, `--data-scale`) and must match what
/// the trainer ran — enforced by the parameter-count check in
/// [`PredictEngine::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSpec {
    /// One of the four paper workloads at a data scale (the scale fixes
    /// the class count through the workload builder, exactly as the
    /// trainer's own model construction does).
    Kind {
        /// Which paper workload.
        kind: ModelKind,
        /// Data scale the trainer used (`--data` in the harnesses).
        data_scale: usize,
    },
    /// An MLP with explicit layer widths (tests, overhead harnesses).
    Mlp {
        /// Layer widths, input first.
        dims: Vec<usize>,
    },
}

impl ModelSpec {
    /// Parse a `--model` name. MLP widths arrive separately
    /// (`--mlp-dims`), so `mlp` here yields an error directing the
    /// caller to supply them.
    pub fn parse(
        model: &str,
        mlp_dims: Option<&[usize]>,
        data_scale: usize,
    ) -> Result<Self, String> {
        match model {
            "mlp" => match mlp_dims {
                Some(dims) if dims.len() >= 2 => Ok(ModelSpec::Mlp {
                    dims: dims.to_vec(),
                }),
                _ => Err("--model mlp requires --mlp-dims w0,w1,... (>= 2 widths)".to_string()),
            },
            "resnet" => Ok(ModelSpec::Kind {
                kind: ModelKind::ResNetMini,
                data_scale,
            }),
            "vgg" => Ok(ModelSpec::Kind {
                kind: ModelKind::VggMini,
                data_scale,
            }),
            "alexnet" => Ok(ModelSpec::Kind {
                kind: ModelKind::AlexNetMini,
                data_scale,
            }),
            "transformer" => Ok(ModelSpec::Kind {
                kind: ModelKind::TransformerMini,
                data_scale,
            }),
            other => Err(format!(
                "unknown model '{other}' (mlp | resnet | vgg | alexnet | transformer)"
            )),
        }
    }

    /// Instantiate the architecture (seeded init; the caller overwrites
    /// the parameters from the checkpoint).
    pub fn build(&self, seed: u64) -> AnyModel {
        match self {
            ModelSpec::Mlp { dims } => AnyModel::Mlp(Mlp::new(dims, seed)),
            ModelSpec::Kind { kind, data_scale } => {
                Workload::for_kind(*kind, *data_scale, seed).build_model()
            }
        }
    }
}

/// Why a predict call or parameter swap was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The flat parameter vector does not match the architecture.
    ParamCount {
        /// Parameters the architecture has.
        expected: usize,
        /// Parameters supplied.
        got: usize,
    },
    /// The request's data length is not a whole number of `dims` rows.
    BadShape {
        /// Flattened feature values supplied.
        data_len: usize,
        /// Features per sample implied by the request dims.
        feat: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ParamCount { expected, got } => {
                write!(
                    f,
                    "parameter count mismatch: model has {expected}, got {got}"
                )
            }
            EngineError::BadShape { data_len, feat } => {
                write!(
                    f,
                    "{data_len} values is not a whole number of {feat}-feature rows"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// One replica's inference engine: the model plus its private arena.
pub struct PredictEngine {
    model: AnyModel,
    ws: Workspace,
    classes: usize,
    num_params: usize,
}

impl PredictEngine {
    /// Build the architecture from `spec` and load `params` into it.
    ///
    /// # Errors
    /// [`EngineError::ParamCount`] when the checkpoint's parameter
    /// vector does not fit the architecture — the spec and the trainer
    /// disagree, and serving garbage would be worse than refusing.
    pub fn new(spec: &ModelSpec, seed: u64, params: &[f32]) -> Result<Self, EngineError> {
        let mut model = spec.build(seed);
        let num_params = model.as_visitor().num_params();
        if params.len() != num_params {
            return Err(EngineError::ParamCount {
                expected: num_params,
                got: params.len(),
            });
        }
        set_flat_params(model.as_model(), params);
        let classes = model.as_model().num_classes();
        Ok(PredictEngine {
            model,
            ws: Workspace::new(),
            classes,
            num_params,
        })
    }

    /// Logits per row.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Trainable parameter count of the architecture.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Swap in a new parameter generation. Copies into the existing
    /// parameter tensors — no allocation, and strictly between batches
    /// (the replica loop never calls this mid-predict).
    ///
    /// # Errors
    /// [`EngineError::ParamCount`] on a length mismatch (e.g. the
    /// trainer redeployed a different architecture); the old weights
    /// stay in place.
    pub fn set_params(&mut self, params: &[f32]) -> Result<(), EngineError> {
        if params.len() != self.num_params {
            return Err(EngineError::ParamCount {
                expected: self.num_params,
                got: params.len(),
            });
        }
        set_flat_params(self.model.as_model(), params);
        Ok(())
    }

    /// Run one warmup batch of `rows` zero samples shaped `dims`,
    /// sizing the arena so subsequent batches of up to `rows` rows are
    /// allocation-free.
    pub fn warmup(&mut self, rows: usize, dims: &[usize]) {
        let feat: usize = dims.iter().product();
        if rows == 0 || feat == 0 {
            return;
        }
        let zeros = vec![0.0; rows * feat];
        // a warmup over zeros cannot fail the shape check
        let _ = self.predict(&zeros, dims);
    }

    /// Logits for a batch: `data` holds `rows` samples of shape `dims`
    /// back-to-back; the reply holds `rows × classes` values in request
    /// order. Temporaries come from the arena — after [`Self::warmup`]
    /// at the largest row count, steady-state calls allocate nothing
    /// there (asserted by `tests/steady_state.rs`).
    ///
    /// # Errors
    /// [`EngineError::BadShape`] when `data` is empty or not a whole
    /// number of `dims` rows.
    pub fn predict(&mut self, data: &[f32], dims: &[usize]) -> Result<Vec<f32>, EngineError> {
        let feat: usize = dims.iter().product();
        // an empty dims list would alias "6 scalars" (empty product = 1)
        if dims.is_empty() || feat == 0 || data.is_empty() || !data.len().is_multiple_of(feat) {
            return Err(EngineError::BadShape {
                data_len: data.len(),
                feat,
            });
        }
        let rows = data.len() / feat;
        let mut shape = Vec::with_capacity(dims.len() + 1);
        shape.push(rows);
        shape.extend_from_slice(dims);
        let mut x = self.ws.take(&shape[..]);
        x.as_mut_slice().copy_from_slice(data);
        let y = self.model.as_model().predict_ws(&x, &mut self.ws);
        let out = y.as_slice().to_vec();
        self.ws.give(x);
        self.ws.give(y);
        Ok(out)
    }

    /// The arena's allocation counter (flat across steady-state predict
    /// calls — the serving-tier analogue of `steady_state_alloc.rs`).
    pub fn allocations(&self) -> u64 {
        self.ws.allocations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_nn::flat::flat_params;

    fn mlp_spec() -> ModelSpec {
        ModelSpec::Mlp {
            dims: vec![6, 10, 4],
        }
    }

    fn mlp_params(seed: u64) -> Vec<f32> {
        flat_params(&Mlp::new(&[6, 10, 4], seed))
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(
            ModelSpec::parse("mlp", Some(&[4, 2]), 64).unwrap(),
            ModelSpec::Mlp { dims: vec![4, 2] }
        );
        assert!(ModelSpec::parse("mlp", None, 64).is_err());
        assert!(ModelSpec::parse("mlp", Some(&[4]), 64).is_err());
        assert_eq!(
            ModelSpec::parse("resnet", None, 64).unwrap(),
            ModelSpec::Kind {
                kind: ModelKind::ResNetMini,
                data_scale: 64
            }
        );
        assert!(ModelSpec::parse("nope", None, 64).is_err());
    }

    #[test]
    fn engine_rejects_wrong_param_count() {
        let err = match PredictEngine::new(&mlp_spec(), 0, &[0.0; 3]) {
            Ok(_) => panic!("3 parameters must not satisfy a [6,10,4] MLP"),
            Err(e) => e,
        };
        assert!(matches!(err, EngineError::ParamCount { got: 3, .. }));
    }

    #[test]
    fn predict_matches_direct_model_bit_exactly() {
        use selsync_nn::models::Model;
        let params = mlp_params(5);
        let mut engine = PredictEngine::new(&mlp_spec(), 0, &params).unwrap();
        // the engine's seed differs from the params' seed on purpose:
        // the checkpoint parameters must fully determine the output
        let mut reference = Mlp::new(&[6, 10, 4], 5);
        let data: Vec<f32> = (0..12).map(|i| (i as f32 * 0.7).sin()).collect();
        let got = engine.predict(&data, &[6]).unwrap();
        let mut ws = Workspace::new();
        let x = selsync_tensor::Tensor::from_vec(data, [2, 6]);
        let want = reference.predict_ws(&x, &mut ws);
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(engine.classes(), 4);
    }

    #[test]
    fn predict_rejects_ragged_rows() {
        let params = mlp_params(1);
        let mut engine = PredictEngine::new(&mlp_spec(), 0, &params).unwrap();
        assert!(engine.predict(&[0.0; 7], &[6]).is_err());
        assert!(engine.predict(&[], &[6]).is_err());
        assert!(engine.predict(&[0.0; 6], &[]).is_err());
    }

    #[test]
    fn set_params_swaps_output_and_rejects_mismatch() {
        let a = mlp_params(1);
        let b = mlp_params(2);
        let mut engine = PredictEngine::new(&mlp_spec(), 0, &a).unwrap();
        let x: Vec<f32> = (0..6).map(|i| i as f32 * 0.3).collect();
        let ya = engine.predict(&x, &[6]).unwrap();
        engine.set_params(&b).unwrap();
        let yb = engine.predict(&x, &[6]).unwrap();
        assert_ne!(ya, yb, "new generation must change the logits");
        engine.set_params(&a).unwrap();
        let ya2 = engine.predict(&x, &[6]).unwrap();
        assert_eq!(
            ya.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ya2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "swapping back must be bit-exact"
        );
        assert!(engine.set_params(&[0.0; 2]).is_err());
    }
}
