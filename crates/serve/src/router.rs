//! The router rank: batch client requests, dispatch least-loaded to
//! live replicas, split replies back per request, and keep the replica
//! group healthy (heartbeat liveness, eviction, re-dispatch of a dead
//! replica's in-flight batches).

use crate::batcher::{Batch, Batcher, BatcherConfig, QueuedRequest};
use crate::protocol::{
    Ranks, CONTROL_TAG, CTRL_CLIENT_DONE, CTRL_HEARTBEAT, CTRL_SHUTDOWN_REPLICA,
};
use crate::timer;
use selsync_comm::{Payload, Transport, TransportError};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of replica ranks (`0..replicas`; this rank is `replicas`).
    pub replicas: usize,
    /// Number of client ranks (`replicas+1 ..`).
    pub clients: usize,
    /// Batcher: flush at this many pending rows.
    pub max_batch: usize,
    /// Batcher: flush the oldest request after this long.
    pub deadline: Duration,
    /// Expected replica heartbeat interval.
    pub heartbeat: Duration,
    /// Evict a replica after this many silent heartbeat intervals.
    pub max_missed: u32,
}

/// What the router did over its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterReport {
    /// Client requests answered.
    pub served_requests: u64,
    /// Sample rows answered.
    pub served_rows: u64,
    /// Batches dispatched (re-dispatches included).
    pub batches: u64,
    /// Replica ranks evicted for silence, in eviction order.
    pub evicted: Vec<usize>,
    /// Batches re-dispatched off dead replicas.
    pub requeued_batches: u64,
    /// Batches answered per replica rank.
    pub per_replica_batches: Vec<u64>,
}

struct InFlight {
    replica: usize,
    batch: Batch,
}

/// Least-loaded live replica, round-robin from `cursor` on ties.
fn pick_replica(alive: &[bool], load: &[usize], cursor: &mut usize) -> Option<usize> {
    let n = alive.len();
    let mut best: Option<usize> = None;
    for off in 0..n {
        let r = (*cursor + off) % n;
        if !alive[r] {
            continue;
        }
        match best {
            None => best = Some(r),
            Some(b) if load[r] < load[b] => best = Some(r),
            Some(_) => {}
        }
    }
    if let Some(b) = best {
        *cursor = (b + 1) % n;
    }
    best
}

/// Serve until every client has reported done and all work has drained,
/// then shut the replica group down.
///
/// # Errors
/// [`TransportError::Protocol`] when every replica is dead with work
/// still queued (nothing can serve it), or a fatal transport failure.
pub fn run_router<T: Transport>(
    mut ep: T,
    cfg: &RouterConfig,
) -> Result<RouterReport, TransportError> {
    let ranks = Ranks::new(cfg.replicas);
    let mut batcher = Batcher::new(BatcherConfig {
        max_batch: cfg.max_batch,
        deadline: cfg.deadline,
    });
    let mut report = RouterReport {
        served_requests: 0,
        served_rows: 0,
        batches: 0,
        evicted: Vec::new(),
        requeued_batches: 0,
        per_replica_batches: vec![0; cfg.replicas],
    };
    let dead_after = cfg.heartbeat * cfg.max_missed.max(1);
    let mut alive = vec![true; cfg.replicas];
    let mut last_seen: Vec<Instant> = vec![timer::now(); cfg.replicas];
    let mut load = vec![0usize; cfg.replicas];
    let mut cursor = 0usize;
    let mut inflight: BTreeMap<u64, InFlight> = BTreeMap::new();
    let mut next_batch_id: u64 = 0;
    let mut clients_done = vec![false; cfg.clients];

    // dispatch one batch, failing over past replicas whose endpoint is
    // already gone (in-process crash); heartbeat silence catches the rest
    #[allow(clippy::too_many_arguments)]
    fn dispatch<T: Transport>(
        ep: &mut T,
        batch: Batch,
        id: u64,
        alive: &mut [bool],
        load: &mut [usize],
        cursor: &mut usize,
        inflight: &mut BTreeMap<u64, InFlight>,
        report: &mut RouterReport,
    ) -> Result<(), TransportError> {
        loop {
            let Some(r) = pick_replica(alive, load, cursor) else {
                return Err(TransportError::Protocol(
                    "no live replicas left to serve queued batches".to_string(),
                ));
            };
            let payload = Payload::Predict {
                data: batch.concat_data(),
                dims: batch.dims.clone(),
            };
            match ep.send(r, id, payload) {
                Ok(()) => {
                    load[r] += 1;
                    report.batches += 1;
                    report.per_replica_batches[r] += 1;
                    inflight.insert(id, InFlight { replica: r, batch });
                    return Ok(());
                }
                Err(TransportError::PeerUnreachable { .. }) => {
                    alive[r] = false;
                    report.evicted.push(r);
                }
                Err(e) => return Err(e),
            }
        }
    }

    loop {
        let now = timer::now();
        // flush the deadline-due batch, if any
        if let Some(b) = batcher.poll(now) {
            let id = next_batch_id;
            next_batch_id += 1;
            dispatch(
                &mut ep,
                b,
                id,
                &mut alive,
                &mut load,
                &mut cursor,
                &mut inflight,
                &mut report,
            )?;
        }
        // liveness sweep: evict silent replicas, re-dispatch their work
        for r in 0..cfg.replicas {
            if alive[r] && now.duration_since(last_seen[r]) > dead_after {
                alive[r] = false;
                report.evicted.push(r);
                let orphaned: Vec<u64> = inflight
                    .iter()
                    .filter(|(_, inf)| inf.replica == r)
                    .map(|(id, _)| *id)
                    .collect();
                for id in orphaned {
                    // lint:allow(unwrap-in-prod): the id was collected from
                    // the map two lines up and nothing removed it since
                    let inf = inflight.remove(&id).unwrap();
                    report.requeued_batches += 1;
                    dispatch(
                        &mut ep,
                        inf.batch,
                        id,
                        &mut alive,
                        &mut load,
                        &mut cursor,
                        &mut inflight,
                        &mut report,
                    )?;
                }
            }
        }
        // drained and every client done → shut the group down
        if clients_done.iter().all(|d| *d) && batcher.is_empty() && inflight.is_empty() {
            break;
        }
        // pace receives by the nearer of batch deadline and heartbeat
        let tick = batcher
            .time_to_deadline(now)
            .unwrap_or(cfg.heartbeat)
            .min(cfg.heartbeat)
            .max(Duration::from_millis(1));
        let m = match ep.recv_deadline(None, None, tick) {
            Ok(m) => m,
            Err(TransportError::RecvTimeout { .. }) => continue,
            Err(e) => return Err(e),
        };
        if ranks.is_client(m.from) {
            match m.payload {
                Payload::Predict { data, dims } => {
                    let feat: usize = dims.iter().product();
                    if dims.is_empty() || feat == 0 || data.is_empty() || data.len() % feat != 0 {
                        // malformed request: fail it immediately rather
                        // than poisoning a batch
                        let _ = ep.send(
                            m.from,
                            m.tag,
                            Payload::Logits {
                                rows: Vec::new(),
                                classes: 0,
                            },
                        );
                        continue;
                    }
                    let rows = data.len() / feat;
                    let req = QueuedRequest {
                        client: m.from,
                        tag: m.tag,
                        data,
                        rows,
                    };
                    for b in batcher.push(req, dims, timer::now()) {
                        let id = next_batch_id;
                        next_batch_id += 1;
                        dispatch(
                            &mut ep,
                            b,
                            id,
                            &mut alive,
                            &mut load,
                            &mut cursor,
                            &mut inflight,
                            &mut report,
                        )?;
                    }
                }
                Payload::Control(c) if c == CTRL_CLIENT_DONE => {
                    let idx = m.from - cfg.replicas - 1;
                    if idx < clients_done.len() {
                        clients_done[idx] = true;
                    }
                }
                // explicit so new wire variants fail here at compile
                // time instead of being dropped
                Payload::Params(_)
                | Payload::SharedParams(_)
                | Payload::Grads(_)
                | Payload::Flags(_)
                | Payload::Samples { .. }
                | Payload::Control(_)
                | Payload::ShardMap(_)
                | Payload::ShardPush(_)
                | Payload::ShardPull(_)
                | Payload::Logits { .. }
                | Payload::Bucket { .. }
                | Payload::SparseGrad { .. }
                | Payload::SignGrad { .. }
                | Payload::LowRank { .. } => {}
            }
        } else if ranks.is_replica(m.from) {
            last_seen[m.from] = timer::now();
            match m.payload {
                Payload::Logits { rows, classes } => {
                    load[m.from] = load[m.from].saturating_sub(1);
                    // a reply for a batch requeued after eviction (the
                    // "dead" replica was merely slow) is dropped: the
                    // re-dispatch owns the reply now
                    let Some(inf) = inflight.remove(&m.tag) else {
                        continue;
                    };
                    let complete = rows.len() == inf.batch.rows * classes && classes > 0;
                    let mut offset = 0usize;
                    for req in &inf.batch.requests {
                        let body = if complete {
                            let take = req.rows * classes;
                            let slice = rows[offset..offset + take].to_vec();
                            offset += take;
                            slice
                        } else {
                            // replica rejected the batch: fail every
                            // member request with an empty reply
                            Vec::new()
                        };
                        report.served_requests += 1;
                        report.served_rows += req.rows as u64;
                        // a vanished client only loses its own reply
                        let _ = ep.send(
                            req.client,
                            req.tag,
                            Payload::Logits {
                                rows: body,
                                classes,
                            },
                        );
                    }
                }
                Payload::Control(c) if c == CTRL_HEARTBEAT => {}
                // explicit so new wire variants fail here at compile
                // time instead of being dropped
                Payload::Params(_)
                | Payload::SharedParams(_)
                | Payload::Grads(_)
                | Payload::Flags(_)
                | Payload::Samples { .. }
                | Payload::Control(_)
                | Payload::ShardMap(_)
                | Payload::ShardPush(_)
                | Payload::ShardPull(_)
                | Payload::Predict { .. }
                | Payload::Bucket { .. }
                | Payload::SparseGrad { .. }
                | Payload::SignGrad { .. }
                | Payload::LowRank { .. } => {}
            }
        }
        // traffic from this rank itself is impossible; ignore anything else
    }
    for (r, live) in alive.iter().enumerate() {
        if *live {
            let _ = ep.send(r, CONTROL_TAG, Payload::Control(CTRL_SHUTDOWN_REPLICA));
        }
    }
    Ok(report)
}
