//! # selsync-serve
//!
//! Closes the loop the ROADMAP calls "serve it to millions of users":
//! a high-throughput inference tier over the same fabric the trainer
//! uses. A **router** rank batches client predict requests (flush at
//! `max_batch` rows or a deadline) and dispatches them least-loaded to
//! a group of **replica** ranks; replicas run the model through the
//! allocation-free `Workspace` predict path and watch the trainer's
//! SSV2 checkpoint for new generations, swapping parameters atomically
//! *between* batches — a reload never mixes weights within one batch,
//! and in-flight requests finish on the old weights.
//!
//! Module map (DESIGN.md §9):
//!
//! * [`timer`] — the crate's single wall-clock source;
//! * [`protocol`] — rank layout, control codes, reply fingerprints;
//! * [`batcher`] — the pure batch-or-deadline state machine;
//! * [`engine`] — model reconstruction + workspace-backed predict;
//! * [`reload`] — checkpoint generation watcher (off the hot path);
//! * [`replica`] — the serving loop of one replica rank;
//! * [`router`] — dispatch, replica liveness, reply splitting;
//! * [`client`] — a closed-loop load generator / example client.

// The unsafe-outside-kernels invariant (selsync-lint), compiler-enforced:
// SIMD and socket code live in crates/tensor and crates/net only.
#![deny(unsafe_code)]

pub mod batcher;
pub mod client;
pub mod engine;
pub mod protocol;
pub mod reload;
pub mod replica;
pub mod router;
pub mod timer;

pub use batcher::{Batch, Batcher, BatcherConfig, QueuedRequest};
pub use client::{request_payload, run_client, ClientConfig, ClientReport, Reply};
pub use engine::{EngineError, ModelSpec, PredictEngine};
pub use protocol::{logits_fingerprint, Ranks};
pub use reload::{spawn_watcher, PublishedParams, ReloadHandle};
pub use replica::{run_replica, ReplicaConfig, ReplicaReport};
pub use router::{run_router, RouterConfig, RouterReport};
