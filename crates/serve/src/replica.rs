//! The serving loop of one replica rank: answer router batches through
//! the workspace predict path, heartbeat the router, and swap in new
//! parameter generations strictly between batches.

use crate::engine::PredictEngine;
use crate::protocol::{CONTROL_TAG, CTRL_HEARTBEAT, CTRL_SHUTDOWN_REPLICA};
use crate::reload::{apply_latest, ReloadHandle};
use crate::timer;
use selsync_comm::{Payload, Transport, TransportError};
use std::time::Duration;

/// Replica tuning.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The router's rank.
    pub router: usize,
    /// Heartbeat interval (the router evicts after `max_missed` silent
    /// intervals, so this must be well under that product).
    pub heartbeat: Duration,
    /// Warmup batch rows — the router's `max_batch`, so steady-state
    /// batches never outgrow the arena.
    pub warmup_rows: usize,
    /// Warmup per-sample dims (the served model's input shape); empty
    /// skips the warmup pass.
    pub warmup_dims: Vec<usize>,
    /// Chaos plan: exit abruptly (simulated crash) after serving this
    /// many batches.
    pub crash_after_batches: Option<u64>,
}

/// What one replica did over its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaReport {
    /// Batches answered.
    pub served_batches: u64,
    /// Sample rows answered.
    pub served_rows: u64,
    /// Parameter generations swapped in.
    pub reloads: u64,
    /// Arena allocation count right after the warmup pass.
    pub alloc_after_warmup: u64,
    /// Arena allocation count at exit — equals `alloc_after_warmup` in
    /// a steady-state run (the serving-tier allocation-free claim).
    pub alloc_final: u64,
    /// True when the fault plan crashed this replica mid-service.
    pub crashed: bool,
}

/// Serve until the router sends a shutdown (or the fault plan crashes
/// us). `reload` is the checkpoint watcher; `None` serves the initial
/// weights forever.
///
/// # Errors
/// Fatal transport failures only; timeouts are the heartbeat pace and
/// an unreachable router during a reply is fatal (nothing to serve
/// without a router).
pub fn run_replica<T: Transport>(
    mut ep: T,
    engine: &mut PredictEngine,
    reload: Option<&ReloadHandle>,
    cfg: &ReplicaConfig,
) -> Result<ReplicaReport, TransportError> {
    if !cfg.warmup_dims.is_empty() {
        engine.warmup(cfg.warmup_rows.max(1), &cfg.warmup_dims);
    }
    let mut report = ReplicaReport {
        served_batches: 0,
        served_rows: 0,
        reloads: 0,
        alloc_after_warmup: engine.allocations(),
        alloc_final: 0,
        crashed: false,
    };
    // announce liveness immediately so the router's clock starts fresh
    ep.send(cfg.router, CONTROL_TAG, Payload::Control(CTRL_HEARTBEAT))?;
    let mut last_hb = timer::now();
    loop {
        // parameter swaps happen here and only here — between batches,
        // so an in-flight batch always finishes on the weights it
        // started with
        if let Some(h) = reload {
            if apply_latest(h, engine) {
                report.reloads += 1;
            }
        }
        let now = timer::now();
        if now.duration_since(last_hb) >= cfg.heartbeat {
            let _ = ep.send(cfg.router, CONTROL_TAG, Payload::Control(CTRL_HEARTBEAT));
            last_hb = now;
        }
        let wait = cfg
            .heartbeat
            .saturating_sub(now.duration_since(last_hb))
            .max(Duration::from_millis(1));
        match ep.recv_deadline(Some(cfg.router), None, wait) {
            Ok(m) => match m.payload {
                Payload::Predict { data, dims } => {
                    let rows = match engine.predict(&data, &dims) {
                        Ok(logits) => logits,
                        Err(e) => {
                            // malformed batch: reply empty so the router
                            // can fail the member requests instead of
                            // timing them out
                            eprintln!("replica {}: batch {} rejected: {e}", ep.id(), m.tag);
                            Vec::new()
                        }
                    };
                    let served = (rows.len() / engine.classes().max(1)) as u64;
                    ep.send(
                        cfg.router,
                        m.tag,
                        Payload::Logits {
                            rows,
                            classes: engine.classes(),
                        },
                    )?;
                    report.served_batches += 1;
                    report.served_rows += served;
                    if let Some(at) = cfg.crash_after_batches {
                        if report.served_batches >= at {
                            report.crashed = true;
                            report.alloc_final = engine.allocations();
                            return Ok(report);
                        }
                    }
                }
                Payload::Control(c) if c == CTRL_SHUTDOWN_REPLICA => break,
                // explicit so new wire variants fail here at compile
                // time instead of being dropped
                Payload::Params(_)
                | Payload::SharedParams(_)
                | Payload::Grads(_)
                | Payload::Flags(_)
                | Payload::Samples { .. }
                | Payload::Control(_)
                | Payload::ShardMap(_)
                | Payload::ShardPush(_)
                | Payload::ShardPull(_)
                | Payload::Logits { .. }
                | Payload::Bucket { .. }
                | Payload::SparseGrad { .. }
                | Payload::SignGrad { .. }
                | Payload::LowRank { .. } => {}
            },
            Err(TransportError::RecvTimeout { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    report.alloc_final = engine.allocations();
    Ok(report)
}
