//! The dynamic batcher: a pure batch-or-deadline state machine.
//!
//! Requests queue until either the pending row count reaches
//! `max_batch` (flush immediately — the throughput path) or the oldest
//! queued request has waited `deadline` (flush on time — the latency
//! path). The router drives it with explicit `Instant`s from
//! [`crate::timer`], so the machine itself never reads the clock and
//! unit tests can replay any timing deterministically.
//!
//! All requests in one batch share their per-sample `dims`; a request
//! with different dims flushes the pending batch first and starts a new
//! one (a serving group normally hosts one model, so this is the rare
//! path, not an error).

use std::time::{Duration, Instant};

/// One client request parked in the batcher.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedRequest {
    /// Client rank to route the reply to.
    pub client: usize,
    /// The client's request id (reply tag).
    pub tag: u64,
    /// Flattened sample features, rows back-to-back.
    pub data: Vec<f32>,
    /// Number of samples in `data`.
    pub rows: usize,
}

/// A flushed batch, ready to dispatch to a replica.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Per-sample feature dimensions shared by every request.
    pub dims: Vec<usize>,
    /// The member requests, in arrival order.
    pub requests: Vec<QueuedRequest>,
    /// Total sample rows across the requests.
    pub rows: usize,
}

impl Batch {
    /// Concatenate the member requests' features into one flat buffer
    /// (the replica-bound `Predict` body).
    pub fn concat_data(&self) -> Vec<f32> {
        let total: usize = self.requests.iter().map(|r| r.data.len()).sum();
        let mut out = Vec::with_capacity(total);
        for r in &self.requests {
            out.extend_from_slice(&r.data);
        }
        out
    }
}

/// Batcher tuning: the `--max-batch` / `--deadline-ms` pair.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Flush as soon as this many rows are pending.
    pub max_batch: usize,
    /// Flush once the oldest pending request has waited this long.
    pub deadline: Duration,
}

/// The batch-or-deadline state machine.
#[derive(Debug)]
pub struct Batcher {
    cfg: BatcherConfig,
    dims: Vec<usize>,
    pending: Vec<QueuedRequest>,
    rows: usize,
    oldest: Option<Instant>,
}

impl Batcher {
    /// An empty batcher.
    pub fn new(cfg: BatcherConfig) -> Self {
        assert!(cfg.max_batch > 0, "max_batch must be at least 1");
        Batcher {
            cfg,
            dims: Vec::new(),
            pending: Vec::new(),
            rows: 0,
            oldest: None,
        }
    }

    /// Queue a request observed at `now`, returning every batch the
    /// push caused to flush: a dims change flushes the old batch, and
    /// reaching `max_batch` rows flushes the new one, so up to two
    /// batches can emerge from a single push.
    pub fn push(&mut self, req: QueuedRequest, dims: Vec<usize>, now: Instant) -> Vec<Batch> {
        let mut out = Vec::new();
        if !self.pending.is_empty() && self.dims != dims {
            out.extend(self.flush());
        }
        if self.pending.is_empty() {
            self.dims = dims;
            self.oldest = Some(now);
        }
        self.rows += req.rows;
        self.pending.push(req);
        if self.rows >= self.cfg.max_batch {
            out.extend(self.flush());
        }
        out
    }

    /// Flush the pending batch if its deadline has passed at `now`.
    pub fn poll(&mut self, now: Instant) -> Option<Batch> {
        match self.oldest {
            Some(t0) if now.duration_since(t0) >= self.cfg.deadline => self.flush(),
            _ => None,
        }
    }

    /// Unconditionally flush whatever is pending.
    pub fn flush(&mut self) -> Option<Batch> {
        if self.pending.is_empty() {
            return None;
        }
        self.oldest = None;
        let rows = self.rows;
        self.rows = 0;
        Some(Batch {
            dims: self.dims.clone(),
            requests: std::mem::take(&mut self.pending),
            rows,
        })
    }

    /// Time remaining until the pending batch's deadline (zero if
    /// already due), or `None` when nothing is pending — the router's
    /// receive-timeout pacing hint.
    pub fn time_to_deadline(&self, now: Instant) -> Option<Duration> {
        self.oldest
            .map(|t0| (t0 + self.cfg.deadline).saturating_duration_since(now))
    }

    /// True when no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Pending sample rows.
    pub fn pending_rows(&self) -> usize {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tag: u64, rows: usize, feat: usize) -> QueuedRequest {
        QueuedRequest {
            client: 9,
            tag,
            data: vec![tag as f32; rows * feat],
            rows,
        }
    }

    fn cfg(max_batch: usize, deadline_ms: u64) -> BatcherConfig {
        BatcherConfig {
            max_batch,
            deadline: Duration::from_millis(deadline_ms),
        }
    }

    #[test]
    fn flushes_at_max_batch_rows() {
        let mut b = Batcher::new(cfg(4, 1000));
        let t0 = Instant::now();
        assert!(b.push(req(0, 1, 2), vec![2], t0).is_empty());
        assert!(b.push(req(1, 2, 2), vec![2], t0).is_empty());
        let batches = b.push(req(2, 1, 2), vec![2], t0);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].rows, 4);
        assert_eq!(batches[0].requests.len(), 3);
        assert!(b.is_empty());
        assert_eq!(b.time_to_deadline(t0), None);
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let mut b = Batcher::new(cfg(8, 5));
        let t0 = Instant::now();
        assert!(b.push(req(0, 1, 3), vec![3], t0).is_empty());
        // before the deadline: nothing
        assert!(b.poll(t0 + Duration::from_millis(4)).is_none());
        assert_eq!(
            b.time_to_deadline(t0 + Duration::from_millis(4)),
            Some(Duration::from_millis(1))
        );
        // at the deadline: the partial batch flushes
        let batch = b.poll(t0 + Duration::from_millis(5)).expect("due");
        assert_eq!(batch.rows, 1);
        assert!(b.is_empty());
    }

    #[test]
    fn deadline_measured_from_oldest_request() {
        let mut b = Batcher::new(cfg(8, 10));
        let t0 = Instant::now();
        b.push(req(0, 1, 1), vec![1], t0);
        b.push(req(1, 1, 1), vec![1], t0 + Duration::from_millis(8));
        // 10ms after the *first* push the batch is due, even though the
        // second request is only 2ms old
        let batch = b.poll(t0 + Duration::from_millis(10)).expect("due");
        assert_eq!(batch.requests.len(), 2);
    }

    #[test]
    fn dims_change_flushes_old_batch_first() {
        let mut b = Batcher::new(cfg(4, 1000));
        let t0 = Instant::now();
        b.push(req(0, 1, 2), vec![2], t0);
        let batches = b.push(req(1, 1, 6), vec![2, 3], t0);
        assert_eq!(batches.len(), 1, "old-dims batch flushed");
        assert_eq!(batches[0].dims, vec![2]);
        assert_eq!(b.pending_rows(), 1, "new-dims request now pending");
        let due = b.poll(t0 + Duration::from_secs(2)).expect("due");
        assert_eq!(due.dims, vec![2, 3]);
    }

    #[test]
    fn oversized_request_flushes_alone() {
        let mut b = Batcher::new(cfg(4, 1000));
        let t0 = Instant::now();
        let batches = b.push(req(0, 9, 1), vec![1], t0);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].rows, 9, "a request may exceed max_batch");
    }

    #[test]
    fn concat_preserves_arrival_order() {
        let mut b = Batcher::new(cfg(3, 1000));
        let t0 = Instant::now();
        b.push(req(7, 1, 2), vec![2], t0);
        let batches = b.push(req(8, 2, 2), vec![2], t0);
        let data = batches[0].concat_data();
        assert_eq!(data, vec![7.0, 7.0, 8.0, 8.0, 8.0, 8.0]);
    }

    #[test]
    fn max_batch_one_flushes_every_push() {
        let mut b = Batcher::new(cfg(1, 1000));
        let t0 = Instant::now();
        for tag in 0..3 {
            let batches = b.push(req(tag, 1, 1), vec![1], t0);
            assert_eq!(batches.len(), 1);
            assert_eq!(batches[0].requests[0].tag, tag);
        }
    }
}
