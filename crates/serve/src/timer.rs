//! The serving tier's single clock source.
//!
//! Batch deadlines, heartbeat pacing, and replica liveness all read
//! wall-clock time from this one function, so the nondet-time lint can
//! confine `Instant::now()` to a single audited module (allowlisted,
//! like the transport watchdogs) while the batcher and router remain
//! pure functions of the `Instant`s handed to them — which is what lets
//! their state machines be unit-tested with synthetic clocks.

use std::time::Instant;

/// The current instant — the only `Instant::now()` in the crate.
pub fn now() -> Instant {
    Instant::now()
}
