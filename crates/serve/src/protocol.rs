//! Serving-tier wire conventions: rank layout, control codes, and the
//! reply fingerprint used by tests and the example client.
//!
//! A serving fabric of size `R + 1 + C` is laid out as:
//!
//! * ranks `0..R` — replicas,
//! * rank `R` — the router,
//! * ranks `R+1..` — clients.
//!
//! Clients send [`Payload::Predict`](selsync_comm::Payload) to the
//! router with the tag carrying a client-local request id; the router
//! forwards concatenated batches to replicas with the tag carrying a
//! router-local batch id, and replies route back under the original
//! request id. Control traffic (heartbeats, shutdown, client-done)
//! travels as `Payload::Control` under [`CONTROL_TAG`] so it can never
//! collide with a request or batch id.

/// Tag reserved for control traffic. Request ids count up from zero, so
/// a near-`u64::MAX` constant cannot collide with them.
pub const CONTROL_TAG: u64 = u64::MAX - 16;

/// Control code: replica → router liveness beacon.
pub const CTRL_HEARTBEAT: u64 = 0x5345_0001;
/// Control code: router → replica "drain and exit".
pub const CTRL_SHUTDOWN_REPLICA: u64 = 0x5345_0002;
/// Control code: client → router "no more requests from me".
pub const CTRL_CLIENT_DONE: u64 = 0x5345_0003;

/// The serving fabric's rank layout: replicas first, then the router,
/// then clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ranks {
    /// Number of replica ranks (`0..replicas`).
    pub replicas: usize,
}

impl Ranks {
    /// Layout for `replicas` replica ranks.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0, "a serving group needs at least one replica");
        Ranks { replicas }
    }

    /// The router's rank.
    pub fn router(&self) -> usize {
        self.replicas
    }

    /// Is `rank` a replica?
    pub fn is_replica(&self, rank: usize) -> bool {
        rank < self.replicas
    }

    /// Is `rank` a client?
    pub fn is_client(&self, rank: usize) -> bool {
        rank > self.replicas
    }

    /// Number of client ranks in a fabric of `fabric_size`.
    pub fn clients(&self, fabric_size: usize) -> usize {
        fabric_size.saturating_sub(self.replicas + 1)
    }
}

/// FNV-1a fingerprint over the IEEE-754 bit patterns of a logits
/// vector. Bit-exact — two replies fingerprint equal iff every float is
/// bit-identical, which is how the rolling-reload test proves a batch
/// never mixes weight generations.
pub fn logits_fingerprint(rows: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in rows {
        for b in v.to_bits().to_be_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_layout() {
        let r = Ranks::new(3);
        assert_eq!(r.router(), 3);
        assert!(r.is_replica(0) && r.is_replica(2) && !r.is_replica(3));
        assert!(!r.is_client(3) && r.is_client(4));
        assert_eq!(r.clients(6), 2);
        assert_eq!(r.clients(3), 0);
    }

    #[test]
    fn fingerprint_is_bit_sensitive() {
        let a = logits_fingerprint(&[1.0, 2.0, 3.0]);
        let b = logits_fingerprint(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_ne!(a, logits_fingerprint(&[1.0, 2.0, 3.0000002]));
        // -0.0 == 0.0 under PartialEq but must fingerprint differently
        assert_ne!(logits_fingerprint(&[0.0]), logits_fingerprint(&[-0.0]));
        assert_ne!(logits_fingerprint(&[]), logits_fingerprint(&[0.0]));
    }
}
