//! Rolling checkpoint reload: watch the trainer's SSV2 checkpoint path
//! for new generations off the hot path, and publish loaded parameter
//! buffers for the replica loop to swap in between batches.
//!
//! The watcher thread polls [`probe_state_generation`] — a header-only
//! read, O(sections) bytes — and only when the generation changes does
//! it pay for a full [`load_state_with_fallback`]. The loaded buffer is
//! published behind an `Arc` into a single-slot mailbox; the replica
//! loop takes the latest generation at a batch boundary and swaps it
//! into the model with a no-allocation parameter copy. In-flight
//! batches therefore always finish on the weights they started with,
//! and a batch never mixes generations.
//!
//! Torn in-progress writes are harmless by construction: the trainer's
//! `save_state` renames atomically, the probe CRC-checks the meta
//! section, and the loader falls back to the retained `.prev`
//! generation — a failed probe or load just means "try again next
//! poll".

use crate::engine::PredictEngine;
use selsync_core::checkpoint::{load_state_with_fallback, probe_state_generation, StateGeneration};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// A parameter generation published by the watcher.
#[derive(Debug, Clone)]
pub struct PublishedParams {
    /// The flat parameter buffer, shared with the watcher's load.
    pub params: Arc<Vec<f32>>,
    /// Training step recorded in the checkpoint.
    pub step: u64,
    /// Sync rounds recorded in the checkpoint.
    pub syncs: u64,
    /// Whether the loader fell back to the `.prev` generation.
    pub fell_back: bool,
}

/// Handle on the watcher thread: take published generations, stop it.
pub struct ReloadHandle {
    latest: Arc<Mutex<Option<PublishedParams>>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<u64>>,
}

impl ReloadHandle {
    /// Take the most recently published generation, if any arrived
    /// since the last take. Newer publications overwrite older unseen
    /// ones — the replica only ever wants the latest.
    pub fn take_latest(&self) -> Option<PublishedParams> {
        match self.latest.lock() {
            Ok(mut slot) => slot.take(),
            Err(_) => None, // watcher panicked mid-publish; treat as empty
        }
    }

    /// Stop and join the watcher, returning how many generations it
    /// published.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        match self.thread.take() {
            Some(t) => t.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for ReloadHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Spawn the checkpoint watcher for `path`. `initial` is the generation
/// already loaded into the engine (so the watcher does not immediately
/// re-publish it); `poll` is the probe interval.
pub fn spawn_watcher(path: PathBuf, initial: StateGeneration, poll: Duration) -> ReloadHandle {
    let latest: Arc<Mutex<Option<PublishedParams>>> = Arc::new(Mutex::new(None));
    let stop = Arc::new(AtomicBool::new(false));
    let slot = Arc::clone(&latest);
    let stop_flag = Arc::clone(&stop);
    let thread = thread::spawn(move || {
        let mut last_probe = initial;
        let mut last_loaded = (initial.step, initial.syncs);
        let mut published = 0u64;
        while !stop_flag.load(Ordering::Relaxed) {
            thread::sleep(poll);
            let gen = match probe_state_generation(&path) {
                Ok(g) => g,
                // missing file / torn write / probe races the trainer's
                // rename: nothing to do until the next poll
                Err(_) => continue,
            };
            if gen == last_probe {
                continue;
            }
            last_probe = gen;
            let (state, fell_back) = match load_state_with_fallback(&path) {
                Ok(v) => v,
                Err(_) => continue,
            };
            if (state.step, state.syncs) == last_loaded {
                // the fallback generation is what we already serve
                continue;
            }
            last_loaded = (state.step, state.syncs);
            let update = PublishedParams {
                params: Arc::new(state.params),
                step: state.step,
                syncs: state.syncs,
                fell_back,
            };
            if let Ok(mut s) = slot.lock() {
                *s = Some(update);
                published += 1;
            }
        }
        published
    });
    ReloadHandle {
        latest,
        stop,
        thread: Some(thread),
    }
}

/// Apply the watcher's latest generation to `engine`, if one arrived.
/// Returns `true` when a swap happened. Called by the replica loop
/// strictly between batches. A parameter-count mismatch (trainer
/// redeployed a different architecture) is reported to stderr and the
/// old weights keep serving.
pub fn apply_latest(handle: &ReloadHandle, engine: &mut PredictEngine) -> bool {
    match handle.take_latest() {
        Some(p) => match engine.set_params(&p.params) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("reload skipped (step {}): {e}", p.step);
                false
            }
        },
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_core::checkpoint::{prev_path, save_state, TrainState};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "selsync_serve_reload_{}_{name}",
            std::process::id()
        ));
        p
    }

    fn state(step: u64, params: Vec<f32>) -> TrainState {
        TrainState {
            step,
            ..TrainState::fresh(0, params)
        }
    }

    fn wait_for_publish(h: &ReloadHandle) -> PublishedParams {
        for _ in 0..200 {
            if let Some(p) = h.take_latest() {
                return p;
            }
            thread::sleep(Duration::from_millis(5));
        }
        panic!("watcher never published");
    }

    #[test]
    fn watcher_publishes_new_generations_only() {
        let path = tmp("gen.ckpt");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();
        let gen1 = state(1, vec![1.0; 8]);
        save_state(&path, &gen1).unwrap();
        let initial = probe_state_generation(&path).unwrap();

        let handle = spawn_watcher(path.clone(), initial, Duration::from_millis(5));
        // the already-loaded generation is never re-published
        thread::sleep(Duration::from_millis(40));
        assert!(handle.take_latest().is_none());

        let gen2 = state(2, vec![2.0; 8]);
        save_state(&path, &gen2).unwrap();
        let p = wait_for_publish(&handle);
        assert_eq!(p.step, 2);
        assert_eq!(&*p.params, &vec![2.0; 8]);
        assert!(!p.fell_back);

        // a take drains the slot; the same generation is not re-served
        thread::sleep(Duration::from_millis(40));
        assert!(handle.take_latest().is_none());

        assert_eq!(handle.stop(), 1);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();
    }

    #[test]
    fn corrupt_rewrite_falls_back_without_publishing_garbage() {
        let path = tmp("torn.ckpt");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();
        let gen1 = state(5, vec![5.0; 4]);
        save_state(&path, &gen1).unwrap();
        let initial = probe_state_generation(&path).unwrap();
        let handle = spawn_watcher(path.clone(), initial, Duration::from_millis(5));

        // scribble garbage over the checkpoint: the probe rejects it,
        // so nothing is published and the old weights keep serving
        std::fs::write(&path, b"garbage").unwrap();
        thread::sleep(Duration::from_millis(50));
        assert!(handle.take_latest().is_none());

        // the next valid generation recovers the pipeline
        let gen2 = state(6, vec![6.0; 4]);
        save_state(&path, &gen2).unwrap();
        let p = wait_for_publish(&handle);
        assert_eq!(p.step, 6);
        handle.stop();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();
    }
}
