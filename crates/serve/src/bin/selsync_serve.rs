//! `selsync_serve` — multi-process inference serving: run one rank of a
//! router + replica-group + client deployment over the TCP fabric.
//!
//! Rank layout (fixed, see `selsync_serve::protocol::Ranks`): replicas
//! are ranks `0..R`, the router is rank `R`, clients are `R+1..`. All
//! ranks take the same `--peers` list in rank order.
//!
//! ```sh
//! P="127.0.0.1:7200,127.0.0.1:7201,127.0.0.1:7202,127.0.0.1:7203"
//! selsync_serve --role replica --rank 0 --replicas 2 --peers $P \
//!               --checkpoint run.ckpt --model mlp --mlp-dims 16,32,8 --dims 16 &
//! selsync_serve --role replica --rank 1 --replicas 2 --peers $P \
//!               --checkpoint run.ckpt --model mlp --mlp-dims 16,32,8 --dims 16 &
//! selsync_serve --role router  --rank 2 --replicas 2 --peers $P --deadline-ms 5 &
//! selsync_serve --role client  --rank 3 --replicas 2 --peers $P --requests 500 --dims 16
//! wait
//! ```
//!
//! Replicas watch `--checkpoint` for new generations (poll + header
//! probe) and swap parameters between batches — restartless rolling
//! reload. The router evicts replicas that stop heartbeating and
//! re-dispatches their in-flight batches to survivors.
//!
//! EXIT CODES: 0 ok (including a fault-plan crash) / 1 serving or
//! fabric fault / 2 usage error.

use selsync_chaos::{ChaosTransport, FaultPlan};
use selsync_core::checkpoint::{load_state_with_fallback, probe_state_generation, StateGeneration};
use selsync_net::{TcpEndpoint, TcpFabricConfig};
use selsync_serve::{
    run_client, run_replica, run_router, spawn_watcher, ClientConfig, ModelSpec, PredictEngine,
    Ranks, ReplicaConfig, RouterConfig,
};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "\
selsync_serve — run one rank of a router + replica-group serving job

USAGE:
  selsync_serve --role router|replica|client --rank N --replicas R
                --peers host:port,...   [role flags]

COMMON:
  --role             router | replica | client          (required)
  --rank             this process's rank: replicas 0..R, router R,
                     clients R+1..                      (required)
  --replicas         replica count R                    (required)
  --peers            comma-separated host:port of every rank (required)
  --connect-timeout  seconds to keep redialing peers    (default 60)
  --ready-file PATH  write PATH once the fabric is connected (tests
                     use this to sequence fault injection)

REPLICA:
  --checkpoint FILE  SSV2 trainer checkpoint to serve   (required)
  --model NAME       mlp | resnet | vgg | alexnet | transformer
                     (default mlp)
  --mlp-dims W,W,..  MLP layer widths (required for --model mlp)
  --data-scale N     trainer's data scale for the paper workloads
                     (default 64)
  --seed N           architecture init seed; the checkpoint overwrites
                     every parameter, so this only seeds construction
                     (default 42)
  --dims D[,D..]     per-sample input dims; sizes the warmup batch so
                     steady-state serving is allocation-free (default:
                     no warmup)
  --max-batch N      warmup rows — match the router's (default 8)
  --heartbeat-ms MS  liveness beacon interval           (default 50)
  --reload-poll-ms   checkpoint probe interval; 0 serves the initial
                     generation forever                 (default 20)
  --fault-plan FILE  JSON FaultPlan (selsync-chaos); a scheduled crash
                     for this rank exits abruptly after that many
                     served batches

ROUTER:
  --max-batch N      flush a batch at N pending rows    (default 8)
  --deadline-ms MS   flush the oldest request after MS  (default 5)
  --heartbeat-ms MS  expected replica beacon interval   (default 50)
  --max-missed N     evict after N silent intervals     (default 3)

CLIENT:
  --requests N       total requests to issue            (default 100)
  --concurrency N    closed-loop window size            (default 4)
  --dims D[,D..]     per-sample input dims, one row per request
                     (default 16)
  --spacing-ms MS    pause after each send              (default 0)
  --seed N           request payload seed               (default 1)
  --fixed-input      send the identical payload every request
  --print-replies    one `reply=IDX fp=0x..` line per reply, in
                     arrival order
  --recv-timeout S   seconds before a missing reply is fatal
                     (default 30)
";

struct Args {
    role: String,
    rank: usize,
    replicas: usize,
    peers: Vec<String>,
    connect_timeout: Duration,
    ready_file: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    model: String,
    mlp_dims: Option<Vec<usize>>,
    data_scale: usize,
    seed: u64,
    dims: Vec<usize>,
    max_batch: usize,
    deadline: Duration,
    heartbeat: Duration,
    max_missed: u32,
    reload_poll: Duration,
    fault_plan: Option<PathBuf>,
    requests: u64,
    concurrency: usize,
    spacing: Duration,
    fixed_input: bool,
    print_replies: bool,
    recv_timeout: Duration,
}

fn parse_usize_list(s: &str, flag: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("{flag} expects comma-separated integers, got '{p}'"))
        })
        .collect()
}

#[allow(clippy::too_many_lines)]
fn parse(argv: &[String]) -> Result<Args, String> {
    let mut a = Args {
        role: String::new(),
        rank: usize::MAX,
        replicas: 0,
        peers: Vec::new(),
        connect_timeout: Duration::from_secs(60),
        ready_file: None,
        checkpoint: None,
        model: "mlp".to_string(),
        mlp_dims: None,
        data_scale: 64,
        seed: 42,
        dims: Vec::new(),
        max_batch: 8,
        deadline: Duration::from_millis(5),
        heartbeat: Duration::from_millis(50),
        max_missed: 3,
        reload_poll: Duration::from_millis(20),
        fault_plan: None,
        requests: 100,
        concurrency: 4,
        spacing: Duration::ZERO,
        fixed_input: false,
        print_replies: false,
        recv_timeout: Duration::from_secs(30),
    };
    let mut client_dims_set = false;
    let mut it = argv.iter();
    while let Some(key) = it.next() {
        match key.as_str() {
            "--help" => return Err(USAGE.to_string()),
            "--fixed-input" => {
                a.fixed_input = true;
                continue;
            }
            "--print-replies" => {
                a.print_replies = true;
                continue;
            }
            _ => {}
        }
        let val = it
            .next()
            .ok_or_else(|| format!("missing value for {key}"))?;
        let int = |flag: &str| -> Result<u64, String> {
            val.parse::<u64>()
                .map_err(|_| format!("{flag} must be an integer, got '{val}'"))
        };
        match key.as_str() {
            "--role" => a.role = val.clone(),
            "--rank" => a.rank = int("--rank")? as usize,
            "--replicas" => a.replicas = int("--replicas")? as usize,
            "--peers" => a.peers = val.split(',').map(str::to_string).collect(),
            "--connect-timeout" => {
                a.connect_timeout = Duration::from_secs(int("--connect-timeout")?)
            }
            "--ready-file" => a.ready_file = Some(PathBuf::from(val)),
            "--checkpoint" => a.checkpoint = Some(PathBuf::from(val)),
            "--model" => a.model = val.clone(),
            "--mlp-dims" => a.mlp_dims = Some(parse_usize_list(val, "--mlp-dims")?),
            "--data-scale" => a.data_scale = int("--data-scale")? as usize,
            "--seed" => a.seed = int("--seed")?,
            "--dims" => {
                a.dims = parse_usize_list(val, "--dims")?;
                client_dims_set = true;
            }
            "--max-batch" => a.max_batch = int("--max-batch")? as usize,
            "--deadline-ms" => a.deadline = Duration::from_millis(int("--deadline-ms")?),
            "--heartbeat-ms" => a.heartbeat = Duration::from_millis(int("--heartbeat-ms")?),
            "--max-missed" => a.max_missed = int("--max-missed")? as u32,
            "--reload-poll-ms" => a.reload_poll = Duration::from_millis(int("--reload-poll-ms")?),
            "--fault-plan" => a.fault_plan = Some(PathBuf::from(val)),
            "--requests" => a.requests = int("--requests")?,
            "--concurrency" => a.concurrency = int("--concurrency")? as usize,
            "--spacing-ms" => a.spacing = Duration::from_millis(int("--spacing-ms")?),
            "--recv-timeout" => a.recv_timeout = Duration::from_secs(int("--recv-timeout")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if a.role.is_empty() {
        return Err("--role is required".to_string());
    }
    if a.rank == usize::MAX {
        return Err("--rank is required".to_string());
    }
    if a.replicas == 0 {
        return Err("--replicas is required (>= 1)".to_string());
    }
    if a.peers.is_empty() {
        return Err("--peers is required".to_string());
    }
    if a.rank >= a.peers.len() {
        return Err(format!(
            "--rank {} out of range for {} peers",
            a.rank,
            a.peers.len()
        ));
    }
    if a.peers.len() < a.replicas + 2 {
        return Err(
            "--peers must list every replica, the router, and at least one client".to_string(),
        );
    }
    if a.role == "client" && !client_dims_set {
        a.dims = vec![16];
    }
    if a.max_batch == 0 {
        return Err("--max-batch must be at least 1".to_string());
    }
    Ok(a)
}

fn fatal(msg: &str) -> ! {
    eprintln!("fatal: {msg}");
    std::process::exit(1);
}

fn run_replica_role(ep: TcpEndpoint, a: &Args) -> i32 {
    let Some(ckpt) = a.checkpoint.clone() else {
        eprintln!("fatal: --checkpoint is required for --role replica");
        return 2;
    };
    let spec = match ModelSpec::parse(&a.model, a.mlp_dims.as_deref(), a.data_scale) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fatal: {e}");
            return 2;
        }
    };
    let (state, fell_back) = match load_state_with_fallback(&ckpt) {
        Ok(v) => v,
        Err(e) => fatal(&format!("cannot load checkpoint {}: {e}", ckpt.display())),
    };
    if fell_back {
        eprintln!(
            "[rank {}] primary checkpoint damaged, serving .prev",
            a.rank
        );
    }
    let mut engine = match PredictEngine::new(&spec, a.seed, &state.params) {
        Ok(e) => e,
        Err(e) => fatal(&format!("checkpoint does not fit --model: {e}")),
    };
    let initial = probe_state_generation(&ckpt).unwrap_or(StateGeneration {
        step: state.step,
        syncs: state.syncs,
        file_len: 0,
    });
    let watcher = if a.reload_poll.is_zero() {
        None
    } else {
        Some(spawn_watcher(ckpt, initial, a.reload_poll))
    };
    let plan = a.fault_plan.as_ref().map(|p| match FaultPlan::load(p) {
        Ok(plan) => plan,
        Err(e) => fatal(&format!("bad --fault-plan: {e}")),
    });
    let cfg = ReplicaConfig {
        router: Ranks::new(a.replicas).router(),
        heartbeat: a.heartbeat,
        warmup_rows: a.max_batch,
        warmup_dims: a.dims.clone(),
        crash_after_batches: plan.as_ref().and_then(|p| p.crash_step(a.rank)),
    };
    let result = match plan {
        Some(plan) => {
            let mut cep = ChaosTransport::new(ep, plan);
            let r = run_replica(&mut cep, &mut engine, watcher.as_ref(), &cfg);
            if !matches!(r, Ok(ref rep) if rep.crashed) {
                drop(cep); // flush queued frames; process::exit skips destructors
            }
            r
        }
        None => {
            let mut inner = ep;
            let r = run_replica(&mut inner, &mut engine, watcher.as_ref(), &cfg);
            if !matches!(r, Ok(ref rep) if rep.crashed) {
                inner.close(); // a simulated crash deliberately skips the flush
            }
            r
        }
    };
    if let Some(w) = watcher {
        w.stop();
    }
    match result {
        Ok(rep) => {
            println!(
                "role=replica rank={} served_batches={} served_rows={} reloads={} \
                 alloc_after_warmup={} alloc_final={} crashed={}",
                a.rank,
                rep.served_batches,
                rep.served_rows,
                rep.reloads,
                rep.alloc_after_warmup,
                rep.alloc_final,
                u8::from(rep.crashed)
            );
            0
        }
        Err(e) => {
            eprintln!("fatal: replica {}: {e}", a.rank);
            1
        }
    }
}

fn run_router_role(ep: TcpEndpoint, a: &Args) -> i32 {
    let cfg = RouterConfig {
        replicas: a.replicas,
        clients: a.peers.len() - a.replicas - 1,
        max_batch: a.max_batch,
        deadline: a.deadline,
        heartbeat: a.heartbeat,
        max_missed: a.max_missed,
    };
    let mut inner = ep;
    let result = run_router(&mut inner, &cfg);
    inner.close();
    match result {
        Ok(rep) => {
            let evicted = if rep.evicted.is_empty() {
                "-".to_string()
            } else {
                rep.evicted
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            };
            println!(
                "role=router rank={} served_requests={} served_rows={} batches={} \
                 requeued={} evicted={}",
                a.rank,
                rep.served_requests,
                rep.served_rows,
                rep.batches,
                rep.requeued_batches,
                evicted
            );
            for (r, n) in rep.per_replica_batches.iter().enumerate() {
                println!("replica_batches_{r}={n}");
            }
            0
        }
        Err(e) => {
            eprintln!("fatal: router: {e}");
            1
        }
    }
}

fn run_client_role(ep: TcpEndpoint, a: &Args) -> i32 {
    let cfg = ClientConfig {
        router: Ranks::new(a.replicas).router(),
        requests: a.requests,
        concurrency: a.concurrency,
        dims: a.dims.clone(),
        spacing: a.spacing,
        seed: a.seed,
        fixed_input: a.fixed_input,
        recv_timeout: a.recv_timeout,
    };
    let mut inner = ep;
    let result = run_client(&mut inner, &cfg);
    inner.close();
    match result {
        Ok(rep) => {
            let lat_us: Vec<u128> = rep.replies.iter().map(|r| r.latency.as_micros()).collect();
            let mean_us = if lat_us.is_empty() {
                0
            } else {
                lat_us.iter().sum::<u128>() / lat_us.len() as u128
            };
            println!(
                "role=client rank={} completed={} mean_latency_us={mean_us}",
                a.rank, rep.completed
            );
            if a.print_replies {
                for r in &rep.replies {
                    println!("reply={} fp=0x{:016x}", r.request, r.fingerprint);
                }
            }
            0
        }
        Err(e) => {
            eprintln!("fatal: client {}: {e}", a.rank);
            1
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let a = match parse(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if argv.contains(&"--help".to_string()) {
                0
            } else {
                2
            });
        }
    };
    let mut fabric = TcpFabricConfig::new(a.rank, a.peers.clone());
    fabric.connect_timeout = a.connect_timeout;
    eprintln!(
        "[rank {}] {} dialing {} peers on {}...",
        a.rank,
        a.role,
        a.peers.len(),
        a.peers[a.rank]
    );
    let ep = match TcpEndpoint::connect(fabric) {
        Ok(ep) => ep,
        Err(e) => fatal(&format!("fabric setup failed: {e}")),
    };
    if let Some(rf) = &a.ready_file {
        if let Err(e) = std::fs::write(rf, b"ready\n") {
            eprintln!("[rank {}] cannot write --ready-file: {e}", a.rank);
        }
    }
    let code = match a.role.as_str() {
        "replica" => run_replica_role(ep, &a),
        "router" => run_router_role(ep, &a),
        "client" => run_client_role(ep, &a),
        other => {
            eprintln!("unknown --role '{other}' (router | replica | client)");
            2
        }
    };
    std::process::exit(code);
}
