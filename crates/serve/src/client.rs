//! A closed-loop load-generating client: keep `concurrency` requests
//! outstanding against the router, fingerprint every reply, and record
//! per-request latency for the bench tier.

use crate::protocol::{logits_fingerprint, CONTROL_TAG, CTRL_CLIENT_DONE};
use crate::timer;
use selsync_comm::{Payload, Transport, TransportError};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The router's rank.
    pub router: usize,
    /// Total requests to issue.
    pub requests: u64,
    /// Requests kept outstanding at once (closed loop).
    pub concurrency: usize,
    /// Per-sample feature dims of every request (one row each).
    pub dims: Vec<usize>,
    /// Pause after each send — shapes arrival rate so the batcher's
    /// deadline path is actually exercised.
    pub spacing: Duration,
    /// Seeds the deterministic request payloads.
    pub seed: u64,
    /// Send the identical payload every time (the reload test wants
    /// replies that differ only by parameter generation).
    pub fixed_input: bool,
    /// Give up if no reply arrives for this long (a hang here means the
    /// serving group lost a request — fail loudly, never spin).
    pub recv_timeout: Duration,
}

/// One answered request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Request id (0-based issue order).
    pub request: u64,
    /// FNV-1a fingerprint of the logits bits (0 for an empty reply).
    pub fingerprint: u64,
    /// Send-to-reply latency.
    pub latency: Duration,
}

/// What the client observed, replies in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReport {
    /// Requests answered (== `cfg.requests` on success).
    pub completed: u64,
    /// Every reply, in arrival order.
    pub replies: Vec<Reply>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic request payload: values in roughly [-1, 1), fully
/// determined by (seed, request id) — or by seed alone under
/// `fixed_input`. Public so the reload process test and the bench tier
/// can reproduce the exact bytes a client sends.
pub fn request_payload(seed: u64, request: u64, len: usize) -> Vec<f32> {
    let mut state = seed ^ request.wrapping_mul(0x2545_f491_4f6c_dd1d);
    (0..len)
        .map(|_| {
            let bits = splitmix64(&mut state) >> 40; // 24 mantissa-safe bits
            (bits as f32) / ((1u64 << 23) as f32) - 1.0
        })
        .collect()
}

/// Run the closed loop to completion and tell the router we are done.
///
/// # Errors
/// [`TransportError::RecvTimeout`] when a reply never arrives — the
/// serving group dropped a request, which the tests treat as fatal.
pub fn run_client<T: Transport>(
    mut ep: T,
    cfg: &ClientConfig,
) -> Result<ClientReport, TransportError> {
    let feat: usize = cfg.dims.iter().product();
    let mut report = ClientReport {
        completed: 0,
        replies: Vec::with_capacity(cfg.requests as usize),
    };
    let mut outstanding: BTreeMap<u64, Instant> = BTreeMap::new();
    let mut next_request: u64 = 0;
    while report.completed < cfg.requests {
        // fill the window
        while next_request < cfg.requests && outstanding.len() < cfg.concurrency.max(1) {
            let input_id = if cfg.fixed_input { 0 } else { next_request };
            let data = request_payload(cfg.seed, input_id, feat);
            ep.send(
                cfg.router,
                next_request,
                Payload::Predict {
                    data,
                    dims: cfg.dims.clone(),
                },
            )?;
            outstanding.insert(next_request, timer::now());
            next_request += 1;
            if !cfg.spacing.is_zero() {
                std::thread::sleep(cfg.spacing);
            }
        }
        let m = ep.recv_deadline(Some(cfg.router), None, cfg.recv_timeout)?;
        match m.payload {
            Payload::Logits { rows, .. } => {
                let Some(sent) = outstanding.remove(&m.tag) else {
                    continue; // duplicate or stray reply
                };
                report.replies.push(Reply {
                    request: m.tag,
                    fingerprint: if rows.is_empty() {
                        0
                    } else {
                        logits_fingerprint(&rows)
                    },
                    latency: timer::now().duration_since(sent),
                });
                report.completed += 1;
            }
            // explicit so new wire variants fail here at compile time
            // instead of being dropped
            Payload::Params(_)
            | Payload::SharedParams(_)
            | Payload::Grads(_)
            | Payload::Flags(_)
            | Payload::Samples { .. }
            | Payload::Control(_)
            | Payload::ShardMap(_)
            | Payload::ShardPush(_)
            | Payload::ShardPull(_)
            | Payload::Predict { .. }
            | Payload::Bucket { .. }
            | Payload::SparseGrad { .. }
            | Payload::SignGrad { .. }
            | Payload::LowRank { .. } => {}
        }
    }
    ep.send(cfg.router, CONTROL_TAG, Payload::Control(CTRL_CLIENT_DONE))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_request_is_deterministic_and_bounded() {
        let a = request_payload(42, 7, 64);
        let b = request_payload(42, 7, 64);
        assert_eq!(a, b);
        let c = request_payload(42, 8, 64);
        assert_ne!(a, c, "different requests get different payloads");
        for v in &a {
            assert!(*v >= -1.0 && *v < 1.5, "value {v} out of range");
        }
    }

    #[test]
    fn fixed_input_means_identical_payloads() {
        assert_eq!(request_payload(9, 0, 16), request_payload(9, 0, 16));
    }
}
