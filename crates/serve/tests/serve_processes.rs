//! Process-level serving acceptance: real `selsync_serve` OS processes
//! on localhost TCP. Run with `--test-threads=1` (ci.sh does) — each
//! test spawns a full serving group and the port allocator assumes one
//! group at a time.
//!
//! Two properties close the serving story:
//!
//! 1. **Replica crash transparency** — SIGKILL one of two replicas
//!    mid-stream; the router evicts it on heartbeat silence, re-dispatches
//!    its in-flight batches, and the client still gets every reply.
//! 2. **Reload atomicity** — rewrite the checkpoint mid-stream under a
//!    fixed input; every reply fingerprints to exactly generation A or
//!    generation B (never a mix), the switch is a single monotone
//!    boundary, and the replica's arena allocation count is flat across
//!    the swap.

use selsync_core::checkpoint::{prev_path, save_state, TrainState};
use selsync_nn::flat::flat_params;
use selsync_nn::models::Mlp;
use selsync_serve::{logits_fingerprint, request_payload, ModelSpec, PredictEngine};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Reserve distinct loopback ports below the ephemeral range; base
/// disjoint from the dist (23000), ps-failover (25000) and chaos
/// (27000) suites so concurrent test binaries cannot collide.
fn free_ports(n: usize) -> Vec<String> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static PORT_CURSOR: AtomicUsize = AtomicUsize::new(0);
    let base = 20000 + (std::process::id() as usize % 1900);
    let mut held = Vec::new();
    let mut addrs = Vec::new();
    while addrs.len() < n {
        let port = base + PORT_CURSOR.fetch_add(1, Ordering::Relaxed) % 1900;
        if let Ok(l) = TcpListener::bind(("127.0.0.1", port as u16)) {
            addrs.push(format!("127.0.0.1:{port}"));
            held.push(l);
        }
    }
    addrs
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("selsync_serve_{}_{name}", std::process::id()));
    p
}

fn spawn_rank(role: &str, rank: usize, replicas: usize, peers: &str, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_selsync_serve"))
        .args([
            "--role",
            role,
            "--rank",
            &rank.to_string(),
            "--replicas",
            &replicas.to_string(),
            "--peers",
            peers,
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn selsync_serve")
}

/// Extract `key=value` from stdout (pairs may share a line).
fn field(stdout: &str, key: &str) -> String {
    stdout
        .lines()
        .flat_map(|l| l.split_whitespace())
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing {key} in output:\n{stdout}"))
        .to_string()
}

fn wait_for_file(path: &Path, budget: Duration) {
    let deadline = Instant::now() + budget;
    while !path.exists() {
        assert!(
            Instant::now() < deadline,
            "ready file {} never appeared",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn finish(child: Child) -> (i32, String, String) {
    let out = child.wait_with_output().unwrap();
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const MLP_DIMS: &str = "16,32,8";

fn write_checkpoint(path: &Path, step: u64, seed: u64) -> Vec<f32> {
    let params = flat_params(&Mlp::new(&[16, 32, 8], seed));
    let state = TrainState {
        step,
        ..TrainState::fresh(0, params.clone())
    };
    save_state(path, &state).expect("write serving checkpoint");
    params
}

#[test]
fn sigkill_one_replica_router_serves_every_request_from_survivor() {
    let ckpt = tmp("kill.ckpt");
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(prev_path(&ckpt)).ok();
    write_checkpoint(&ckpt, 1, 11);
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    let ready = tmp("kill.ready");
    std::fs::remove_file(&ready).ok();
    let ready_s = ready.to_str().unwrap().to_string();

    let peers = free_ports(4).join(",");
    let replica_flags: &[&str] = &[
        "--checkpoint",
        &ckpt_s,
        "--model",
        "mlp",
        "--mlp-dims",
        MLP_DIMS,
        "--dims",
        "16",
        "--max-batch",
        "4",
        "--heartbeat-ms",
        "20",
        "--reload-poll-ms",
        "0",
    ];
    let r0 = spawn_rank("replica", 0, 2, &peers, replica_flags);
    let r1 = spawn_rank("replica", 1, 2, &peers, replica_flags);
    let router = spawn_rank(
        "router",
        2,
        2,
        &peers,
        &[
            "--max-batch",
            "4",
            "--deadline-ms",
            "2",
            "--heartbeat-ms",
            "50",
            "--max-missed",
            "3",
        ],
    );
    let client = spawn_rank(
        "client",
        3,
        2,
        &peers,
        &[
            "--requests",
            "600",
            "--concurrency",
            "2",
            "--dims",
            "16",
            "--spacing-ms",
            "1",
            "--seed",
            "7",
            "--recv-timeout",
            "60",
            "--ready-file",
            &ready_s,
        ],
    );

    // the client's ready file means the whole fabric is connected and
    // the request stream has started; give it a beat, then SIGKILL
    // replica 0 with no warning — possibly mid-batch
    wait_for_file(&ready, Duration::from_secs(30));
    std::thread::sleep(Duration::from_millis(150));
    let mut r0 = r0;
    r0.kill().expect("SIGKILL replica 0");

    let (_c0, _o0, _e0) = finish(r0);
    let (c1, o1, e1) = finish(r1);
    let (cr, or, er) = finish(router);
    let (cc, oc, ec) = finish(client);

    assert_eq!(cc, 0, "client must exit clean:\n{ec}");
    assert_eq!(
        field(&oc, "completed"),
        "600",
        "every request must be answered despite the crash"
    );
    assert_eq!(cr, 0, "router must exit clean:\n{er}");
    let evicted = field(&or, "evicted");
    assert!(
        evicted.split(',').any(|r| r == "0"),
        "router must evict the killed replica, got evicted={evicted}"
    );
    assert_eq!(c1, 0, "surviving replica must exit clean:\n{e1}");
    let survivor_batches: u64 = field(&o1, "served_batches").parse().unwrap();
    assert!(
        survivor_batches > 0,
        "the survivor must have carried the load"
    );
    // the survivor's serving stayed allocation-free through the failover
    assert_eq!(
        field(&o1, "alloc_after_warmup"),
        field(&o1, "alloc_final"),
        "survivor allocated outside warmup:\n{o1}"
    );
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(prev_path(&ckpt)).ok();
    std::fs::remove_file(&ready).ok();
}

#[test]
fn rolling_reload_never_mixes_generations_within_a_reply() {
    let ckpt = tmp("reload.ckpt");
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(prev_path(&ckpt)).ok();
    let params_a = write_checkpoint(&ckpt, 1, 21);
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    let ready = tmp("reload.ready");
    std::fs::remove_file(&ready).ok();
    let ready_s = ready.to_str().unwrap().to_string();

    // precompute the generation-A and generation-B fingerprints of the
    // client's fixed single-row payload, exactly as a replica computes
    // them (same engine, same workspace path)
    let spec = ModelSpec::Mlp {
        dims: vec![16, 32, 8],
    };
    let input = request_payload(9, 0, 16);
    let mut engine = PredictEngine::new(&spec, 0, &params_a).unwrap();
    let fp_a = logits_fingerprint(&engine.predict(&input, &[16]).unwrap());
    let params_b = flat_params(&Mlp::new(&[16, 32, 8], 22));
    engine.set_params(&params_b).unwrap();
    let fp_b = logits_fingerprint(&engine.predict(&input, &[16]).unwrap());
    assert_ne!(fp_a, fp_b, "the two generations must be distinguishable");

    let peers = free_ports(3).join(",");
    let replica = spawn_rank(
        "replica",
        0,
        1,
        &peers,
        &[
            "--checkpoint",
            &ckpt_s,
            "--model",
            "mlp",
            "--mlp-dims",
            MLP_DIMS,
            "--dims",
            "16",
            "--max-batch",
            "4",
            "--heartbeat-ms",
            "20",
            "--reload-poll-ms",
            "10",
        ],
    );
    let router = spawn_rank(
        "router",
        1,
        1,
        &peers,
        &[
            "--max-batch",
            "4",
            "--deadline-ms",
            "2",
            "--heartbeat-ms",
            "50",
            "--max-missed",
            "3",
        ],
    );
    let client = spawn_rank(
        "client",
        2,
        1,
        &peers,
        &[
            "--requests",
            "600",
            "--concurrency",
            "4",
            "--dims",
            "16",
            "--spacing-ms",
            "1",
            "--seed",
            "9",
            "--fixed-input",
            "--print-replies",
            "--recv-timeout",
            "60",
            "--ready-file",
            &ready_s,
        ],
    );

    // rewrite the checkpoint mid-stream: generation B lands while
    // requests are in flight on generation A
    wait_for_file(&ready, Duration::from_secs(30));
    std::thread::sleep(Duration::from_millis(150));
    let state_b = TrainState {
        step: 2,
        ..TrainState::fresh(0, params_b.clone())
    };
    save_state(&ckpt, &state_b).expect("rewrite checkpoint mid-stream");

    let (crep, orep, erep) = finish(replica);
    let (cr, _or, er) = finish(router);
    let (cc, oc, ec) = finish(client);

    assert_eq!(cc, 0, "client must exit clean:\n{ec}");
    assert_eq!(field(&oc, "completed"), "600");
    assert_eq!(cr, 0, "router must exit clean:\n{er}");
    assert_eq!(crep, 0, "replica must exit clean:\n{erep}");

    // every reply is exactly generation A or generation B — a reply
    // computed from a half-swapped parameter vector would fingerprint
    // to neither
    let fps: Vec<u64> = oc
        .lines()
        .filter(|l| l.starts_with("reply="))
        .map(|l| {
            let hex = field(l, "fp");
            u64::from_str_radix(hex.trim_start_matches("0x"), 16).unwrap()
        })
        .collect();
    assert_eq!(fps.len(), 600, "one fingerprint per reply");
    for (i, fp) in fps.iter().enumerate() {
        assert!(
            *fp == fp_a || *fp == fp_b,
            "reply {i} fingerprints to neither generation: 0x{fp:016x} \
             (A=0x{fp_a:016x} B=0x{fp_b:016x})"
        );
    }
    // the swap is atomic between batches and replies arrive in batch
    // order from the single replica, so the generation switches exactly
    // once: after the first B reply, no A reply may follow
    let first_b = fps.iter().position(|fp| *fp == fp_b);
    let first_b = first_b.expect("generation B must reach the client before the stream ends");
    assert!(
        fps[first_b..].iter().all(|fp| *fp == fp_b),
        "generation A reply observed after the swap to B"
    );
    assert!(first_b > 0, "some replies must predate the swap");

    // the replica applied at least one reload and its arena stayed flat
    // across the parameter swap
    let reloads: u64 = field(&orep, "reloads").parse().unwrap();
    assert!(reloads >= 1, "the replica never applied the new generation");
    assert_eq!(
        field(&orep, "alloc_after_warmup"),
        field(&orep, "alloc_final"),
        "reload allocated in the serving arena:\n{orep}"
    );
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(prev_path(&ckpt)).ok();
    std::fs::remove_file(&ready).ok();
}
