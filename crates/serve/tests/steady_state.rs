//! Serving-tier allocation discipline, the analogue of the training
//! tier's `crates/nn/tests/steady_state_alloc.rs`: after one warmup
//! batch at the largest row count, every steady-state predict call —
//! including smaller and varying batch sizes, and across parameter
//! reloads — takes all of its temporaries from the workspace arena
//! without allocating.

use selsync_nn::flat::flat_params;
use selsync_nn::models::Mlp;
use selsync_serve::{ModelSpec, PredictEngine};

fn engine(dims: &[usize], seed: u64) -> PredictEngine {
    let params = flat_params(&Mlp::new(dims, seed));
    PredictEngine::new(
        &ModelSpec::Mlp {
            dims: dims.to_vec(),
        },
        0,
        &params,
    )
    .expect("params fit the spec by construction")
}

#[test]
fn steady_state_predict_is_allocation_free() {
    let mut e = engine(&[16, 32, 8], 3);
    e.warmup(8, &[16]);
    let baseline = e.allocations();
    assert!(baseline > 0, "warmup must have populated the arena");
    // vary the batch size every call — the router's deadline path
    // produces partial batches, so flat allocations must hold for
    // every rows <= warmup rows, not just the warmup size
    for step in 0..32u32 {
        let rows = 1 + (step as usize % 8);
        let data = vec![0.25; rows * 16];
        let out = e.predict(&data, &[16]).expect("well-shaped batch");
        assert_eq!(out.len(), rows * 8);
        assert_eq!(
            e.allocations(),
            baseline,
            "predict with {rows} rows allocated at step {step}"
        );
    }
}

#[test]
fn parameter_reload_does_not_allocate_in_the_arena() {
    let dims = [16, 32, 8];
    let gen_a = flat_params(&Mlp::new(&dims, 1));
    let gen_b = flat_params(&Mlp::new(&dims, 2));
    let mut e = engine(&dims, 1);
    e.warmup(8, &[16]);
    let baseline = e.allocations();
    let data = vec![0.5; 4 * 16];
    for swap in 0..6 {
        let params = if swap % 2 == 0 { &gen_b } else { &gen_a };
        e.set_params(params).expect("matching parameter count");
        e.predict(&data, &[16]).expect("well-shaped batch");
        assert_eq!(
            e.allocations(),
            baseline,
            "reload {swap} perturbed the arena"
        );
    }
}
