//! Exponentially weighted moving averages.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Classic recursive EWMA: `s ← (1−α)·s + α·x`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f32,
    value: Option<f32>,
}

impl Ewma {
    /// An EWMA with smoothing factor `alpha ∈ (0, 1]`.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Feed a sample; returns the updated smoothed value.
    pub fn update(&mut self, x: f32) -> f32 {
        let v = match self.value {
            None => x,
            Some(s) => (1.0 - self.alpha) * s + self.alpha * x,
        };
        self.value = Some(v);
        v
    }

    /// Current smoothed value, if any sample has been fed.
    pub fn value(&self) -> Option<f32> {
        self.value
    }
}

/// Windowed EWMA: keeps the last `window` samples and recomputes the
/// exponentially weighted mean over them on every update.
///
/// This is the form the paper's `RelativeGradChange` uses ("EWMA with a
/// window-size of 25 iterations and a smoothing factor of N/100", §III-A)
/// and why the Fig. 8a overhead grows with window size: each update costs
/// O(window).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowedEwma {
    alpha: f32,
    capacity: usize,
    window: VecDeque<f32>,
}

impl WindowedEwma {
    /// A windowed EWMA over the last `window` samples with factor `alpha`.
    pub fn new(window: usize, alpha: f32) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        WindowedEwma {
            alpha,
            capacity: window,
            window: VecDeque::with_capacity(window),
        }
    }

    /// Feed a sample and recompute the weighted mean over the window
    /// (newest samples weighted highest).
    pub fn update(&mut self, x: f32) -> f32 {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
        // lint:allow(unwrap-in-prod): the push_back directly above makes
        // the window non-empty, so value() always returns Some
        self.value().expect("window is non-empty after a push")
    }

    /// Weighted mean over the current window contents.
    pub fn value(&self) -> Option<f32> {
        if self.window.is_empty() {
            return None;
        }
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        let mut weight = 1.0f64;
        // iterate newest → oldest with geometric weights (1−α)^k
        for &x in self.window.iter().rev() {
            num += weight * x as f64;
            den += weight;
            weight *= (1.0 - self.alpha) as f64;
        }
        Some((num / den) as f32)
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no samples have been fed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The configured window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_sample_passes_through() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.update(5.0), 5.0);
    }

    #[test]
    fn ewma_recursion() {
        let mut e = Ewma::new(0.5);
        e.update(0.0);
        assert_eq!(e.update(10.0), 5.0);
        assert_eq!(e.update(10.0), 7.5);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.16); // paper's 16-worker factor
        for _ in 0..200 {
            e.update(3.0);
        }
        assert!((e.value().unwrap() - 3.0).abs() < 1e-5);
    }

    #[test]
    fn windowed_matches_plain_on_constant() {
        let mut w = WindowedEwma::new(25, 0.16);
        for _ in 0..100 {
            w.update(2.0);
        }
        assert!((w.value().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn windowed_weights_favor_recent() {
        let mut w = WindowedEwma::new(10, 0.5);
        for _ in 0..10 {
            w.update(0.0);
        }
        let v = w.update(10.0);
        assert!(v > 4.0, "newest sample carries the largest weight, got {v}");
    }

    #[test]
    fn windowed_forgets_beyond_capacity() {
        let mut w = WindowedEwma::new(3, 0.5);
        w.update(100.0);
        for _ in 0..3 {
            w.update(1.0);
        }
        assert_eq!(w.len(), 3);
        assert!((w.value().unwrap() - 1.0).abs() < 1e-6, "the 100 fell out");
    }

    #[test]
    fn windowed_smooths_less_with_small_alpha() {
        // smaller alpha → flatter weights → more smoothing of a spike
        let run = |alpha: f32| {
            let mut w = WindowedEwma::new(25, alpha);
            for _ in 0..25 {
                w.update(1.0);
            }
            w.update(26.0)
        };
        assert!(run(0.9) > run(0.1), "high alpha reacts harder to the spike");
    }

    #[test]
    fn bounded_by_input_range() {
        let mut w = WindowedEwma::new(25, 0.16);
        for i in 0..100 {
            let v = w.update((i % 7) as f32);
            assert!((0.0..=6.0).contains(&v));
        }
    }
}
