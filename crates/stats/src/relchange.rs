//! The relative gradient change Δ(g_i) of Eqn. (2) — SelSync's
//! significance signal.
//!
//! On every iteration the worker feeds the squared L2 norm of its local
//! gradient; the tracker smooths the series with a windowed EWMA and
//! reports
//!
//! ```text
//! Δ(g_i) = | (E[‖∇F_i‖²] − E[‖∇F_{i−1}‖²]) / E[‖∇F_{i−1}‖²] |
//! ```
//!
//! the relative change between the smoothed norms of consecutive steps.

use crate::ewma::WindowedEwma;
use serde::{Deserialize, Serialize};

/// Tracker producing Δ(g_i) per iteration (Alg. 1 line 8).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelativeGradChange {
    smoother: WindowedEwma,
    prev: Option<f32>,
    max_seen: f32,
    steps: u64,
}

impl RelativeGradChange {
    /// The paper's default window (25 iterations, §IV-B).
    pub const DEFAULT_WINDOW: usize = 25;

    /// A tracker with the given EWMA window and smoothing factor.
    /// The paper sets the factor to `N/100` for an `N`-worker cluster.
    pub fn new(window: usize, alpha: f32) -> Self {
        RelativeGradChange {
            smoother: WindowedEwma::new(window, alpha),
            prev: None,
            max_seen: 0.0,
            steps: 0,
        }
    }

    /// Paper defaults for an `n_workers` cluster: window 25,
    /// α = N/100 clamped into (0, 1].
    pub fn paper_defaults(n_workers: usize) -> Self {
        let alpha = (n_workers as f32 / 100.0).clamp(0.01, 1.0);
        Self::new(Self::DEFAULT_WINDOW, alpha)
    }

    /// Feed this step's squared gradient norm; returns Δ(g_i).
    ///
    /// The first step has no predecessor and returns `f32::INFINITY`, so
    /// any finite δ forces a synchronization on step 0 — matching BSP
    /// initialization.
    pub fn update(&mut self, grad_sqnorm: f32) -> f32 {
        self.steps += 1;
        let smoothed = self.smoother.update(grad_sqnorm);
        let delta = match self.prev {
            None => f32::INFINITY,
            Some(p) if p.abs() > f32::EPSILON => ((smoothed - p) / p).abs(),
            Some(_) => 0.0,
        };
        self.prev = Some(smoothed);
        if delta.is_finite() && delta > self.max_seen {
            self.max_seen = delta;
        }
        delta
    }

    /// Largest finite Δ(g_i) observed so far — the `M` bound of §III-B.
    pub fn max_seen(&self) -> f32 {
        self.max_seen
    }

    /// Iterations processed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current smoothed squared norm.
    pub fn smoothed(&self) -> Option<f32> {
        self.prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_forces_sync() {
        let mut r = RelativeGradChange::new(5, 0.5);
        assert_eq!(r.update(1.0), f32::INFINITY);
    }

    #[test]
    fn constant_norms_give_zero_change() {
        let mut r = RelativeGradChange::new(5, 0.5);
        r.update(4.0);
        for _ in 0..20 {
            let d = r.update(4.0);
            assert!(d.abs() < 1e-6, "constant series has no relative change");
        }
    }

    #[test]
    fn change_is_relative_not_absolute() {
        // doubling from 1→2 and from 100→200 must give similar Δ
        let mut a = RelativeGradChange::new(1, 1.0); // window 1 = no smoothing
        a.update(1.0);
        let da = a.update(2.0);
        let mut b = RelativeGradChange::new(1, 1.0);
        b.update(100.0);
        let db = b.update(200.0);
        assert!((da - 1.0).abs() < 1e-6);
        assert!((da - db).abs() < 1e-6);
    }

    #[test]
    fn smoothing_dampens_single_spikes() {
        let mut smooth = RelativeGradChange::new(25, 0.16);
        let mut raw = RelativeGradChange::new(1, 1.0);
        for _ in 0..30 {
            smooth.update(1.0);
            raw.update(1.0);
        }
        let ds = smooth.update(10.0);
        let dr = raw.update(10.0);
        assert!(
            ds < dr,
            "windowed EWMA should dampen the spike: {ds} vs {dr}"
        );
        assert!(ds < 2.0, "smoothed spike is mild");
        assert!(dr > 5.0, "raw spike is huge");
    }

    #[test]
    fn max_seen_tracks_extremum() {
        let mut r = RelativeGradChange::new(1, 1.0);
        r.update(1.0);
        r.update(2.0); // Δ = 1
        r.update(2.2); // Δ = 0.1
        r.update(6.6); // Δ = 2
        assert!((r.max_seen() - 2.0).abs() < 1e-5);
        assert_eq!(r.steps(), 4);
    }

    #[test]
    fn decaying_gradients_give_decaying_delta() {
        // geometric decay: Δ settles near the decay rate then stays flat —
        // the "gradients saturate" behaviour of Fig. 3/5
        let mut r = RelativeGradChange::new(1, 1.0);
        let mut norms = 100.0f32;
        r.update(norms);
        let mut deltas = Vec::new();
        for _ in 0..50 {
            norms *= 0.95;
            deltas.push(r.update(norms));
        }
        for d in &deltas {
            assert!((d - 0.05).abs() < 1e-3, "relative change equals decay rate");
        }
    }

    #[test]
    fn zero_norm_previous_is_handled() {
        let mut r = RelativeGradChange::new(1, 1.0);
        r.update(0.0);
        let d = r.update(0.0);
        assert_eq!(d, 0.0, "0/0 treated as no change, not NaN");
    }
}
