//! LSSR — the local-to-synchronous step ratio of Eqn. (4):
//!
//! ```text
//! LSSR = steps_local / (steps_local + steps_bsp)
//! ```
//!
//! LSSR 0 is pure BSP; LSSR 1 is pure local-SGD; communication reduction
//! relative to BSP for the same step count is `1 / (1 − LSSR)`.

use serde::{Deserialize, Serialize};

/// Counter of local vs. synchronized steps for one training run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LssrCounter {
    /// Steps applied with local SGD only.
    pub local_steps: u64,
    /// Steps that invoked the aggregation op.
    pub sync_steps: u64,
}

impl LssrCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one local-only step.
    pub fn record_local(&mut self) {
        self.local_steps += 1;
    }

    /// Record one synchronized step.
    pub fn record_sync(&mut self) {
        self.sync_steps += 1;
    }

    /// Total steps recorded.
    pub fn total(&self) -> u64 {
        self.local_steps + self.sync_steps
    }

    /// LSSR per Eqn. (4); 0 for an empty counter.
    pub fn lssr(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.local_steps as f64 / total as f64
        }
    }

    /// Communication-reduction factor vs. BSP, `1/(1−LSSR)`;
    /// `f64::INFINITY` for pure local training.
    pub fn comm_reduction(&self) -> f64 {
        let l = self.lssr();
        if l >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - l)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsp_has_lssr_zero() {
        let mut c = LssrCounter::new();
        for _ in 0..100 {
            c.record_sync();
        }
        assert_eq!(c.lssr(), 0.0);
        assert_eq!(c.comm_reduction(), 1.0);
    }

    #[test]
    fn pure_local_has_lssr_one() {
        let mut c = LssrCounter::new();
        for _ in 0..50 {
            c.record_local();
        }
        assert_eq!(c.lssr(), 1.0);
        assert_eq!(c.comm_reduction(), f64::INFINITY);
    }

    #[test]
    fn paper_example_point_nine_is_10x() {
        // "LSSR of 0.9 implies a communication reduction of 10× over BSP"
        let mut c = LssrCounter::new();
        for _ in 0..90 {
            c.record_local();
        }
        for _ in 0..10 {
            c.record_sync();
        }
        assert!((c.lssr() - 0.9).abs() < 1e-12);
        assert!((c.comm_reduction() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_counter_is_safe() {
        let c = LssrCounter::new();
        assert_eq!(c.lssr(), 0.0);
        assert_eq!(c.total(), 0);
    }
}
