//! Numerically stable running statistics (Welford's algorithm) and the
//! gradient signal-to-noise ratio the paper's §III-A cites as an
//! indicator of statistical efficiency (KungFu, Pollux, AdaScale).

use serde::{Deserialize, Serialize};

/// Streaming mean/variance over scalars (Welford).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one sample.
    pub fn update(&mut self, x: f32) {
        self.count += 1;
        let delta = x as f64 - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x as f64 - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

/// Gradient signal-to-noise tracker: feeds per-step gradient norms and
/// estimates `mean² / variance` over a recent horizon — high when
/// gradients agree step-to-step (synchronization adds little), low when
/// they are noisy (aggregation denoises), the §III-A statistical-
/// efficiency signal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientSnr {
    horizon: usize,
    window: std::collections::VecDeque<f32>,
}

impl GradientSnr {
    /// Tracker over the last `horizon` steps.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon >= 2, "need at least two samples for a variance");
        GradientSnr {
            horizon,
            window: std::collections::VecDeque::with_capacity(horizon),
        }
    }

    /// Feed one gradient norm; returns the current SNR estimate
    /// (`None` until two samples arrive).
    pub fn update(&mut self, grad_norm: f32) -> Option<f64> {
        if self.window.len() == self.horizon {
            self.window.pop_front();
        }
        self.window.push_back(grad_norm);
        self.snr()
    }

    /// Current SNR over the window.
    pub fn snr(&self) -> Option<f64> {
        if self.window.len() < 2 {
            return None;
        }
        let mut stats = RunningStats::new();
        for &x in &self.window {
            stats.update(x);
        }
        let var = stats.variance();
        if var <= 1e-30 {
            Some(f64::INFINITY)
        } else {
            Some(stats.mean() * stats.mean() / var)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_computation() {
        let xs = [1.0f32, 4.0, 2.0, 8.0, 5.0, 7.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.update(x);
        }
        let mean: f64 = xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64;
        let var: f64 = xs
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let xs: Vec<f32> = (0..100).map(|i| ((i * 37) % 19) as f32).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.update(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..33] {
            a.update(x);
        }
        for &x in &xs[33..] {
            b.update(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.update(3.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
    }

    #[test]
    fn stable_for_large_offsets() {
        // classic catastrophic-cancellation case for naive variance
        let mut s = RunningStats::new();
        for x in [1e8f32, 1e8 + 1.0, 1e8 + 2.0] {
            s.update(x);
        }
        assert!((s.variance() - 2.0 / 3.0) < 0.5, "var {}", s.variance());
    }

    #[test]
    fn snr_high_for_steady_gradients() {
        let mut snr = GradientSnr::new(10);
        let mut last = None;
        for _ in 0..10 {
            last = snr.update(5.0);
        }
        assert_eq!(last, Some(f64::INFINITY), "zero variance → infinite SNR");
    }

    #[test]
    fn snr_low_for_noisy_gradients() {
        let mut noisy = GradientSnr::new(16);
        let mut steady = GradientSnr::new(16);
        for i in 0..16 {
            noisy.update(if i % 2 == 0 { 1.0 } else { 9.0 });
            steady.update(5.0 + 0.01 * (i as f32));
        }
        assert!(steady.snr().unwrap() > 100.0 * noisy.snr().unwrap());
    }

    #[test]
    fn snr_needs_two_samples() {
        let mut snr = GradientSnr::new(4);
        assert_eq!(snr.update(1.0), None);
        assert!(snr.update(2.0).is_some());
    }
}
