//! # selsync-stats
//!
//! Statistical instrumentation from the paper:
//!
//! * EWMA smoothing (plain and windowed — the windowed form is the
//!   `RelativeGradChange` implementation whose overhead Fig. 8a measures);
//! * the relative gradient change Δ(g_i) of Eqn. (2), the signal SelSync
//!   thresholds with δ;
//! * Gaussian kernel density estimation (Figs. 3 and 11);
//! * Hessian top-eigenvalue estimation via power iteration on
//!   finite-difference Hessian-vector products (Fig. 4);
//! * LSSR, the local-to-synchronous step ratio of Eqn. (4);
//! * streaming Welford statistics and the gradient SNR indicator the
//!   paper's §III-A cites (KungFu / Pollux / AdaScale).

// The unsafe-outside-kernels invariant (selsync-lint), compiler-enforced:
// SIMD and socket code live in crates/tensor and crates/net only.
#![deny(unsafe_code)]

pub mod ewma;
pub mod hessian;
pub mod kde;
pub mod lssr;
pub mod relchange;
pub mod welford;

pub use ewma::{Ewma, WindowedEwma};
pub use kde::Kde;
pub use lssr::LssrCounter;
pub use relchange::RelativeGradChange;
pub use welford::{GradientSnr, RunningStats};
