//! Gaussian kernel density estimation, used to regenerate the gradient
//! KDE plots of Fig. 3 and the weight-distribution comparison of Fig. 11.

use serde::{Deserialize, Serialize};

/// A fitted Gaussian KDE over a 1-D sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Kde {
    samples: Vec<f32>,
    bandwidth: f32,
}

impl Kde {
    /// Fit with Silverman's rule-of-thumb bandwidth
    /// `h = 0.9 · min(σ, IQR/1.34) · n^(−1/5)`.
    pub fn fit(samples: &[f32]) -> Self {
        assert!(!samples.is_empty(), "KDE needs samples");
        let n = samples.len() as f32;
        let mean: f32 = samples.iter().sum::<f32>() / n;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
        let sigma = var.sqrt();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = |p: f32| sorted[((p * (sorted.len() - 1) as f32) as usize).min(sorted.len() - 1)];
        let iqr = q(0.75) - q(0.25);
        let spread = if iqr > 0.0 {
            sigma.min(iqr / 1.34)
        } else {
            sigma
        };
        let bandwidth = (0.9 * spread * n.powf(-0.2)).max(1e-6);
        Kde {
            samples: samples.to_vec(),
            bandwidth,
        }
    }

    /// Fit with an explicit bandwidth.
    pub fn with_bandwidth(samples: &[f32], bandwidth: f32) -> Self {
        assert!(!samples.is_empty() && bandwidth > 0.0);
        Kde {
            samples: samples.to_vec(),
            bandwidth,
        }
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f32 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f32) -> f32 {
        const INV_SQRT_2PI: f32 = 0.398_942_3;
        let h = self.bandwidth;
        let mut s = 0.0;
        for &xi in &self.samples {
            let u = (x - xi) / h;
            s += (-0.5 * u * u).exp();
        }
        s * INV_SQRT_2PI / (self.samples.len() as f32 * h)
    }

    /// Evaluate on an even grid of `points` spanning `[lo, hi]` —
    /// returns `(grid, densities)`.
    pub fn grid(&self, lo: f32, hi: f32, points: usize) -> (Vec<f32>, Vec<f32>) {
        assert!(points >= 2 && hi > lo);
        let step = (hi - lo) / (points - 1) as f32;
        let xs: Vec<f32> = (0..points).map(|i| lo + i as f32 * step).collect();
        let ds = xs.iter().map(|&x| self.density(x)).collect();
        (xs, ds)
    }

    /// Sample range padded by 3 bandwidths — a sensible plotting window.
    pub fn support(&self) -> (f32, f32) {
        let lo = self.samples.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = self
            .samples
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        (lo - 3.0 * self.bandwidth, hi + 3.0 * self.bandwidth)
    }
}

/// Total-variation-style distance between two KDEs on a shared grid —
/// used to quantify Fig. 11's "PA tracks BSP, GA drifts" comparison.
pub fn kde_distance(a: &Kde, b: &Kde, points: usize) -> f32 {
    let (alo, ahi) = a.support();
    let (blo, bhi) = b.support();
    let (lo, hi) = (alo.min(blo), ahi.max(bhi));
    let step = (hi - lo) / (points - 1) as f32;
    let mut acc = 0.0;
    for i in 0..points {
        let x = lo + i as f32 * step;
        acc += (a.density(x) - b.density(x)).abs() * step;
    }
    0.5 * acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_integrates_to_one() {
        let samples: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin()).collect();
        let kde = Kde::fit(&samples);
        let (lo, hi) = kde.support();
        let (_, ds) = kde.grid(lo, hi, 2000);
        let integral: f32 = ds.iter().sum::<f32>() * (hi - lo) / 1999.0;
        assert!((integral - 1.0).abs() < 0.02, "∫KDE = {integral}");
    }

    #[test]
    fn density_peaks_at_the_data() {
        let samples = vec![0.0; 50];
        let kde = Kde::with_bandwidth(&samples, 0.1);
        assert!(kde.density(0.0) > kde.density(1.0) * 10.0);
    }

    #[test]
    fn tight_distribution_has_narrower_kde() {
        // the Fig. 3 effect: late-epoch gradients concentrate near zero,
        // so their KDE peak at 0 towers over the early-epoch one
        let early: Vec<f32> = (0..200)
            .map(|i| ((i * 37) % 100) as f32 / 20.0 - 2.5)
            .collect();
        let late: Vec<f32> = (0..200)
            .map(|i| ((i * 37) % 100) as f32 / 500.0 - 0.1)
            .collect();
        let ke = Kde::fit(&early);
        let kl = Kde::fit(&late);
        assert!(kl.density(0.0) > 3.0 * ke.density(0.0));
        assert!(kl.bandwidth() < ke.bandwidth());
    }

    #[test]
    fn identical_samples_have_zero_distance() {
        let s: Vec<f32> = (0..50).map(|i| i as f32 * 0.1).collect();
        let a = Kde::fit(&s);
        let b = Kde::fit(&s);
        assert!(kde_distance(&a, &b, 500) < 1e-6);
    }

    #[test]
    fn distance_separates_shifted_distributions() {
        let a: Vec<f32> = (0..50).map(|i| i as f32 * 0.01).collect();
        let b: Vec<f32> = (0..50).map(|i| 5.0 + i as f32 * 0.01).collect();
        let d = kde_distance(&Kde::fit(&a), &Kde::fit(&b), 500);
        assert!(d > 0.9, "disjoint supports → TV distance ≈ 1, got {d}");
    }

    #[test]
    fn grid_is_even_and_inclusive() {
        let kde = Kde::fit(&[0.0, 1.0]);
        let (xs, ds) = kde.grid(-1.0, 1.0, 5);
        assert_eq!(xs, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
        assert_eq!(ds.len(), 5);
    }
}
