//! Top Hessian-eigenvalue estimation (Fig. 4).
//!
//! The paper validates that first-order gradient variance tracks the
//! largest eigenvalue of the loss Hessian. We estimate that eigenvalue
//! with power iteration on Hessian-vector products computed by central
//! finite differences of the gradient:
//!
//! ```text
//! H·v ≈ (∇F(w + εv) − ∇F(w − εv)) / 2ε
//! ```
//!
//! which only needs a gradient oracle — exactly why the paper calls the
//! first-order proxy "significantly cheaper": one HVP costs two extra
//! backward passes, and the power iteration needs several HVPs per
//! estimate, versus one norm read-out for the proxy.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, StandardNormal};

/// Estimate the largest-magnitude eigenvalue of the Hessian at `params`.
///
/// * `grad_fn` — gradient oracle: given parameters, the loss gradient on
///   a *fixed* mini-batch (fix the batch or the estimate is meaningless).
/// * `iters` — power-iteration steps (5–10 suffice for a trend plot).
/// * `eps` — finite-difference step.
pub fn hessian_top_eigenvalue(
    mut grad_fn: impl FnMut(&[f32]) -> Vec<f32>,
    params: &[f32],
    iters: usize,
    eps: f32,
    seed: u64,
) -> f32 {
    assert!(iters >= 1 && eps > 0.0);
    let n = params.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<f32> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
    normalize(&mut v);
    let mut eig = 0.0f32;
    let mut plus = vec![0.0f32; n];
    let mut minus = vec![0.0f32; n];
    for _ in 0..iters {
        for i in 0..n {
            plus[i] = params[i] + eps * v[i];
            minus[i] = params[i] - eps * v[i];
        }
        let gp = grad_fn(&plus);
        let gm = grad_fn(&minus);
        let mut hv: Vec<f32> = gp
            .iter()
            .zip(&gm)
            .map(|(a, b)| (a - b) / (2.0 * eps))
            .collect();
        // Rayleigh quotient vᵀHv (v is unit)
        eig = v.iter().zip(&hv).map(|(a, b)| a * b).sum();
        let norm = normalize(&mut hv);
        if norm < 1e-12 {
            return 0.0; // flat region: Hv ≈ 0
        }
        v = hv;
    }
    eig
}

fn normalize(v: &mut [f32]) -> f32 {
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic loss F(w) = ½ wᵀ diag(d) w has gradient diag(d)·w and
    /// Hessian diag(d): the top eigenvalue is max(d).
    fn quad_grad(d: &[f32]) -> impl FnMut(&[f32]) -> Vec<f32> + '_ {
        move |w: &[f32]| w.iter().zip(d).map(|(wi, di)| wi * di).collect()
    }

    #[test]
    fn recovers_diagonal_top_eigenvalue() {
        let d = [1.0f32, 7.0, 3.0, 0.5];
        let eig = hessian_top_eigenvalue(quad_grad(&d), &[0.1, 0.2, -0.1, 0.3], 30, 1e-2, 0);
        assert!((eig - 7.0).abs() < 0.1, "estimated {eig}, expected 7");
    }

    #[test]
    fn detects_negative_curvature_magnitude() {
        // H = diag(-10, 1): power iteration converges to |−10|
        let d = [-10.0f32, 1.0];
        let eig = hessian_top_eigenvalue(quad_grad(&d), &[0.5, 0.5], 40, 1e-2, 1);
        assert!((eig.abs() - 10.0).abs() < 0.2, "estimated {eig}");
    }

    #[test]
    fn flat_landscape_reports_zero() {
        let eig = hessian_top_eigenvalue(|_w| vec![0.0; 3], &[1.0, 2.0, 3.0], 5, 1e-2, 2);
        assert_eq!(eig, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = [2.0f32, 5.0, 1.0];
        let w = [0.3, -0.2, 0.7];
        let a = hessian_top_eigenvalue(quad_grad(&d), &w, 10, 1e-2, 3);
        let b = hessian_top_eigenvalue(quad_grad(&d), &w, 10, 1e-2, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn works_through_a_real_model() {
        // end-to-end: eigenvalue of a tiny MLP's loss Hessian is positive
        // and finite near init on a fixed batch
        use selsync_nn::flat::{flat_grads, flat_params, set_flat_params};
        use selsync_nn::loss::softmax_cross_entropy;
        use selsync_nn::models::{Mlp, Model};
        use selsync_nn::module::ParamVisitor;
        use selsync_nn::Input;
        use selsync_tensor::init;

        let mut model = Mlp::new(&[4, 6, 3], 0);
        let mut rng = StdRng::seed_from_u64(9);
        let x = init::randn([8, 4], 1.0, &mut rng);
        let targets = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
        let params = flat_params(&model);
        let grad_fn = |w: &[f32]| {
            set_flat_params(&mut model, w);
            let logits = model.forward(&Input::Dense(x.clone()), true);
            let (_, dl) = softmax_cross_entropy(&logits, &targets);
            model.zero_grad();
            model.backward(&dl);
            flat_grads(&model)
        };
        let eig = hessian_top_eigenvalue(grad_fn, &params, 8, 1e-2, 4);
        assert!(eig.is_finite());
        assert!(
            eig > 0.0,
            "cross-entropy near init has positive curvature, got {eig}"
        );
    }
}
