//! Property-based tests of the statistics crate: KDE axioms, Hessian
//! estimation on random quadratics, EWMA/Welford identities.

use proptest::prelude::*;
use selsync_stats::hessian::hessian_top_eigenvalue;
use selsync_stats::kde::Kde;
use selsync_stats::welford::RunningStats;
use selsync_stats::{Ewma, WindowedEwma};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kde_density_is_nonnegative_everywhere(
        samples in prop::collection::vec(-50.0f32..50.0, 2..60),
        query in -100.0f32..100.0,
    ) {
        let kde = Kde::fit(&samples);
        prop_assert!(kde.density(query) >= 0.0);
        prop_assert!(kde.bandwidth() > 0.0);
    }

    #[test]
    fn kde_integral_is_close_to_one(
        samples in prop::collection::vec(-10.0f32..10.0, 5..50),
    ) {
        let kde = Kde::fit(&samples);
        let (lo, hi) = kde.support();
        let points = 1500;
        let (_, ds) = kde.grid(lo, hi, points);
        let integral: f32 = ds.iter().sum::<f32>() * (hi - lo) / (points - 1) as f32;
        prop_assert!((integral - 1.0).abs() < 0.05, "∫ = {integral}");
    }

    #[test]
    fn hessian_recovers_max_abs_diagonal(
        d in prop::collection::vec(0.5f32..20.0, 2..8),
        seed in 0u64..100,
    ) {
        // F(w) = ½ wᵀ diag(d) w ⇒ top eigenvalue = max(d)
        let grad = |w: &[f32]| -> Vec<f32> {
            w.iter().zip(&d).map(|(wi, di)| wi * di).collect()
        };
        let w0: Vec<f32> = (0..d.len()).map(|i| 0.1 + 0.05 * i as f32).collect();
        let eig = hessian_top_eigenvalue(grad, &w0, 40, 1e-2, seed);
        let top = d.iter().copied().fold(0.0f32, f32::max);
        prop_assert!((eig - top).abs() < 0.05 * top + 0.05, "{eig} vs {top}");
    }

    #[test]
    fn ewma_is_a_convex_combination(
        xs in prop::collection::vec(-100.0f32..100.0, 1..50),
        alpha in 0.01f32..1.0,
    ) {
        let mut e = Ewma::new(alpha);
        let lo = xs.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for &x in &xs {
            let v = e.update(x);
            prop_assert!(v >= lo - 1e-3 && v <= hi + 1e-3);
        }
    }

    #[test]
    fn windowed_ewma_window_one_is_identity(
        xs in prop::collection::vec(-100.0f32..100.0, 1..30),
    ) {
        let mut w = WindowedEwma::new(1, 0.3);
        for &x in &xs {
            prop_assert_eq!(w.update(x), x, "window of one passes samples through");
        }
    }

    #[test]
    fn welford_merge_is_associative_enough(
        xs in prop::collection::vec(-100.0f32..100.0, 3..60),
        split in 1usize..58,
    ) {
        prop_assume!(split < xs.len() - 1);
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.update(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..split] {
            a.update(x);
        }
        for &x in &xs[split..] {
            b.update(x);
        }
        a.merge(&b);
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4);
    }

    #[test]
    fn welford_variance_is_translation_invariant(
        xs in prop::collection::vec(-10.0f32..10.0, 2..40),
        shift in -1000.0f32..1000.0,
    ) {
        let mut base = RunningStats::new();
        let mut shifted = RunningStats::new();
        for &x in &xs {
            base.update(x);
            shifted.update(x + shift);
        }
        prop_assert!((base.variance() - shifted.variance()).abs() < 1e-2);
    }
}
