//! Elastic fault-tolerant training: the SelSync worker loop rebuilt on
//! the `selsync-comm` elastic membership protocol.
//!
//! In elastic mode every step's flags exchange routes through the PS and
//! doubles as a heartbeat ([`selsync_comm::elastic`]). This module adds
//! the training side of the protocol:
//!
//! - **Eviction tolerance**: when the status vector reports a rank dead,
//!   the survivors deterministically *re-partition* the dataset over the
//!   remaining members and keep training — no barrier ever waits on a
//!   corpse.
//! - **Checkpointing**: the server writes the global parameters to disk
//!   (via [`crate::checkpoint`]) after every completed sync round.
//! - **Rejoin**: an evicted or restarted worker warm-starts from the
//!   latest checkpoint (falling back to the parameters carried by the
//!   join grant), resumes at the server-assigned step, and re-enters the
//!   membership.
//!
//! Scheduled crashes ([`ElasticOptions::crash_at`]) are enforced here —
//! the worker goes silent just before the given step — because a
//! transport wrapper cannot kill its owner; the chaos layer only
//! *schedules* crashes.

use crate::checkpoint;
use crate::config::{Aggregation, RunConfig, Strategy, SyncBackend};
use crate::metrics::{EvalRecord, StepRecord};
use crate::trainer::{evaluate, grad_sqnorm, AnyCursor, AnyOptimizer, WorkerOutput};
use crate::workload::{Workload, WorkloadData, SEQ_LEN};
use selsync_comm::elastic::{
    elastic_shutdown, elastic_sync_round, elastic_sync_round_bucketed, heartbeat_round,
    join_request, run_elastic_server, run_elastic_server_from, run_standby_server, ElasticConfig,
    ElasticReport, ServerCrashPoint, ServerState, StandbyOutcome, STATUS_DEAD, STATUS_SYNC,
};
use selsync_comm::{FlatVec, Transport, TransportError};
use selsync_data::{partition_indices, BatchCursor, TextBatchCursor};
use selsync_nn::flat::{clip_grad_norm, flat_params, flat_params_into, set_flat_params};
use selsync_nn::loss::softmax_cross_entropy;
use selsync_stats::{LssrCounter, RelativeGradChange};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Knobs of an elastic run, shared by the server and worker ranks.
#[derive(Debug, Clone)]
pub struct ElasticOptions {
    /// Server-side silence deadline per collection round; must
    /// comfortably exceed one training step.
    pub round_timeout: Duration,
    /// Worker-side wait for a server reply; must exceed
    /// `round_timeout × (max_missed + 1)` so a round stalled on a dying
    /// peer is not mistaken for a dead server.
    pub reply_timeout: Duration,
    /// Consecutive missed rounds before the server evicts a rank.
    pub max_missed: u32,
    /// Worker-side resend attempts after a reply timeout (a lossy
    /// network can eat a heartbeat; the server answers stale resends
    /// with catch-up replies).
    pub comm_retries: u32,
    /// Server: write a crash-consistent v2 state checkpoint here after
    /// every sync. Rejoining workers warm-start from this file, a
    /// restarted PS resumes from it, and each worker mirrors its own
    /// private state next to it (see [`worker_state_path`]).
    pub checkpoint: Option<PathBuf>,
    /// Worker: go silent just before this step (scheduled crash).
    pub crash_at: Option<u64>,
    /// Worker: total budget for re-reaching a silent or unreachable PS
    /// (resend with capped-backoff redials) before failing over to the
    /// standby — or, without one, giving up with the transport error.
    pub ps_patience: Duration,
    /// Cluster runs a hot-standby PS at rank `n_workers + 1`: the server
    /// shadows state to it and workers fail over to it.
    pub standby: bool,
    /// Server: die at a scheduled point (chaos/fault experiments).
    pub server_crash: Option<ServerCrashPoint>,
}

impl Default for ElasticOptions {
    fn default() -> Self {
        ElasticOptions::with_liveness(Duration::from_millis(500), 3)
    }
}

impl ElasticOptions {
    /// Build options with a consistent worker reply deadline derived
    /// from the server's liveness policy.
    pub fn with_liveness(round_timeout: Duration, max_missed: u32) -> Self {
        let reply_timeout = round_timeout * (max_missed + 2);
        ElasticOptions {
            round_timeout,
            reply_timeout,
            max_missed,
            comm_retries: 3,
            checkpoint: None,
            crash_at: None,
            ps_patience: reply_timeout * 3,
            standby: false,
            server_crash: None,
        }
    }

    /// Rank of the hot standby, when configured.
    pub fn standby_rank(&self, n_workers: usize) -> Option<usize> {
        self.standby.then_some(n_workers + 1)
    }
}

/// Where worker `rank` mirrors its private training state (optimizer
/// slots, Δ(g) stream, cursor position) relative to the server's
/// checkpoint path: `<ckpt>.w<rank>`.
pub fn worker_state_path(base: &Path, rank: usize) -> PathBuf {
    let mut name = base
        .file_name()
        .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
    name.push_str(&format!(".w{rank}"));
    base.with_file_name(name)
}

pub(crate) fn validate_elastic(config: &RunConfig, workload: &Workload) {
    assert!(config.n_workers >= 1, "need at least one worker");
    assert!(config.max_steps >= 1, "need at least one step");
    assert_eq!(
        config.backend,
        SyncBackend::ParameterServer,
        "elastic membership is a PS service"
    );
    match config.strategy {
        Strategy::SelSync {
            aggregation: Aggregation::Parameter,
            ..
        }
        | Strategy::Bsp {
            aggregation: Aggregation::Parameter,
        } => {}
        // lint:allow(unwrap-in-prod): startup config validation alongside
        // the assert!s above, rejected before any protocol traffic flows
        _ => panic!("elastic mode supports parameter-averaged SelSync/BSP"),
    }
    assert!(
        config.noniid_labels.is_none() && config.injection.is_none(),
        "elastic re-partitioning is defined for the IID schemes"
    );
    assert!(
        config.compression.is_none(),
        "compression applies to gradient aggregation, not elastic PA"
    );
    assert!(
        !config.wire_compression,
        "wire compression rides on gradient compression, which elastic PA rejects"
    );
    if let Some(bucket) = config.overlap_buckets {
        // elastic PA cannot overlap comm with backward (parameters only
        // exist after the post-heartbeat optimizer step), but the push
        // still ships as Bucket frames: a lossy fabric then retries the
        // cheap frame set instead of wedging on one giant write
        assert!(bucket > 0, "overlap bucket size must be positive");
    }
    let _ = workload;
}

/// Ranks a status vector reports as members (anything but dead — a rank
/// that merely missed a round is still in the membership).
pub(crate) fn alive_ranks(status: &[u8]) -> Vec<usize> {
    status
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s != STATUS_DEAD)
        .map(|(i, _)| i)
        .collect()
}

/// Deterministic repartition of the training set over the current
/// members: every survivor computes the same split from the same status
/// vector, so membership changes never need extra coordination.
fn build_cursor(
    config: &RunConfig,
    workload: &Workload,
    members: &[usize],
    me: usize,
) -> AnyCursor {
    let slot = members
        .binary_search(&me)
        // lint:allow(unwrap-in-prod): every caller passes a membership
        // vector it just observed itself in; a miss is an addressing bug,
        // not a runtime fault
        .expect("repartition: this rank must be a member");
    let partition = partition_indices(
        workload.num_train_units(),
        members.len(),
        slot,
        config.partition,
    );
    match &workload.data {
        WorkloadData::Vision { .. } => {
            AnyCursor::Vision(BatchCursor::new(partition, config.batch_size))
        }
        WorkloadData::Text { .. } => {
            AnyCursor::Text(TextBatchCursor::new(partition, SEQ_LEN, config.batch_size))
        }
    }
}

/// The worker's view of the parameter server, including the failover
/// budget and target. Shared by every round helper so a mid-step
/// failover sticks for the rest of the run.
struct PsLink {
    server: usize,
    standby: Option<usize>,
}

/// Drive one PS round to completion through the failover policy: resend
/// on a lost reply, redial with capped exponential backoff on an
/// unreachable server, and — once the patience budget is spent — switch
/// to the standby rank (at most once) before giving up.
fn round_with_failover<R>(
    link: &mut PsLink,
    opts: &ElasticOptions,
    mut round: impl FnMut(usize) -> Result<R, TransportError>,
) -> Result<R, TransportError> {
    let mut deadline: Option<Instant> = None;
    let mut attempts = 0u32;
    let mut backoff = Duration::from_millis(50);
    loop {
        let err = match round(link.server) {
            Ok(r) => return Ok(r),
            Err(e @ TransportError::RecvTimeout { .. }) => e,
            Err(TransportError::PeerUnreachable { peer }) if peer == link.server => {
                // instant failure: pace the redials
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(1));
                TransportError::PeerUnreachable { peer }
            }
            other => return other,
        };
        attempts += 1;
        let deadline = *deadline.get_or_insert_with(|| Instant::now() + opts.ps_patience);
        if attempts > opts.comm_retries && Instant::now() >= deadline {
            match link.standby.take() {
                Some(sb) => {
                    // fail over: the standby promotes itself on first
                    // contact and answers from the shadowed state
                    link.server = sb;
                    attempts = 0;
                    backoff = Duration::from_millis(50);
                }
                None => return Err(err),
            }
        }
    }
}

fn heartbeat_retry<T: Transport>(
    ep: &mut T,
    link: &mut PsLink,
    step: u64,
    bit: u8,
    opts: &ElasticOptions,
) -> Result<Vec<u8>, TransportError> {
    round_with_failover(link, opts, |server| {
        heartbeat_round(ep, server, step, bit, opts.reply_timeout)
    })
}

fn sync_retry<T: Transport>(
    ep: &mut T,
    link: &mut PsLink,
    step: u64,
    params: &[f32],
    bucket: Option<usize>,
    opts: &ElasticOptions,
) -> Result<FlatVec, TransportError> {
    round_with_failover(link, opts, |server| match bucket {
        // bucketed push (DESIGN.md §12): each retry resends the complete
        // frame set, which the server assembles idempotently
        Some(b) => elastic_sync_round_bucketed(ep, server, step, params, b, opts.reply_timeout),
        None => elastic_sync_round(ep, server, step, params.to_vec(), opts.reply_timeout),
    })
}

/// The worker's session onto its parameter service — a single
/// monolithic PS ([`MonoSession`]) or a K-shard group
/// (`crate::shard::ShardSession`) — so the elastic training loop is one
/// code path regardless of how the service is deployed. At K = 1 the
/// sharded implementation performs the identical message sequence, which
/// is what makes the bit-identity guarantee a structural property rather
/// than a testing accident.
pub(crate) trait PsSession {
    /// This worker's logical id (its index in status vectors).
    fn me(&self) -> usize;
    /// One flags/heartbeat round; returns the membership status vector.
    fn heartbeat(&mut self, step: u64, bit: u8) -> Result<Vec<u8>, TransportError>;
    /// One parameter-averaging round; returns the new global vector.
    fn sync(&mut self, step: u64, params: &[f32]) -> Result<FlatVec, TransportError>;
    /// Announce a clean finish to the service.
    fn shutdown(&mut self, step: u64) -> Result<(), TransportError>;
}

/// [`PsSession`] over the monolithic single-PS deployment: rank
/// `n_workers`, with the PR 3 failover policy toward its hot standby.
pub(crate) struct MonoSession<'a, T: Transport> {
    ep: &'a mut T,
    link: PsLink,
    opts: &'a ElasticOptions,
    /// `Some(B)` ships parameter pushes as B-value Bucket frames
    /// (DESIGN.md §12) instead of one monolithic vector.
    bucket: Option<usize>,
}

impl<'a, T: Transport> MonoSession<'a, T> {
    pub(crate) fn new(
        ep: &'a mut T,
        n_workers: usize,
        opts: &'a ElasticOptions,
        bucket: Option<usize>,
    ) -> Self {
        let link = PsLink {
            server: n_workers,
            standby: opts.standby_rank(n_workers),
        };
        MonoSession {
            ep,
            link,
            opts,
            bucket,
        }
    }
}

impl<T: Transport> PsSession for MonoSession<'_, T> {
    fn me(&self) -> usize {
        self.ep.id()
    }

    fn heartbeat(&mut self, step: u64, bit: u8) -> Result<Vec<u8>, TransportError> {
        heartbeat_retry(&mut *self.ep, &mut self.link, step, bit, self.opts)
    }

    fn sync(&mut self, step: u64, params: &[f32]) -> Result<FlatVec, TransportError> {
        sync_retry(
            &mut *self.ep,
            &mut self.link,
            step,
            params,
            self.bucket,
            self.opts,
        )
    }

    fn shutdown(&mut self, step: u64) -> Result<(), TransportError> {
        elastic_shutdown(&mut *self.ep, self.link.server, step)
    }
}

/// Run the elastic parameter server for one experiment. Blocks until
/// every member has finished or been evicted; returns the membership
/// history and final global parameters.
///
/// # Errors
/// Propagates unrecoverable transport faults; dying *workers* are not
/// errors — they are evicted and reported in the [`ElasticReport`].
pub fn run_elastic_server_rank<T: Transport>(
    ep: T,
    config: &RunConfig,
    workload: &Workload,
    opts: &ElasticOptions,
) -> Result<ElasticReport, TransportError> {
    validate_elastic(config, workload);
    assert_eq!(
        ep.id(),
        config.n_workers,
        "the PS listens on rank n_workers"
    );
    let init = flat_params(workload.build_model().as_visitor());
    let cfg = server_elastic_config(config, opts);
    run_elastic_server(
        ep,
        config.n_workers,
        init,
        &cfg,
        server_checkpoint_writer(config, opts),
    )
}

/// Restart the elastic PS from a recovered [`checkpoint::TrainState`]
/// (the durable image of its last completed sync): training continues
/// from that sync boundary, reconciling workers wherever the crash left
/// them (see [`selsync_comm::elastic::run_elastic_server_from`]).
///
/// # Errors
/// As [`run_elastic_server_rank`].
pub fn run_elastic_server_rank_from<T: Transport>(
    ep: T,
    config: &RunConfig,
    workload: &Workload,
    opts: &ElasticOptions,
    state: &checkpoint::TrainState,
) -> Result<ElasticReport, TransportError> {
    validate_elastic(config, workload);
    assert_eq!(
        ep.id(),
        config.n_workers,
        "the PS listens on rank n_workers"
    );
    assert_eq!(
        state.alive.len(),
        config.n_workers,
        "checkpoint membership must match the configured worker count"
    );
    let mut cfg = server_elastic_config(config, opts);
    // the workers' in-flight rounds died with the old PS: hold off
    // liveness judgements until their resends can possibly arrive.
    // Two reply windows, not one — a resend written into the dying
    // kernel socket before the reset surfaces is silently lost, and
    // the worker only notices one full reply timeout later.
    cfg.resume_grace = opts.reply_timeout * 2 + opts.round_timeout;
    run_elastic_server_from(
        ep,
        ServerState {
            step: state.step,
            syncs: state.syncs,
            global: state.params.clone(),
            alive: state.alive.clone(),
            done: state.done.clone(),
            evictions: state.evictions.clone(),
            joins: state.joins.clone(),
        },
        &cfg,
        server_checkpoint_writer(config, opts),
    )
}

/// Run the hot-standby PS rank (`n_workers + 1`): shadow the primary's
/// sync state, promote to a full server if workers fail over here, and
/// keep writing the same checkpoint once promoted.
///
/// # Errors
/// Propagates unrecoverable transport faults.
pub fn run_standby_server_rank<T: Transport>(
    ep: T,
    config: &RunConfig,
    workload: &Workload,
    opts: &ElasticOptions,
) -> Result<StandbyOutcome, TransportError> {
    validate_elastic(config, workload);
    assert_eq!(
        ep.id(),
        config.n_workers + 1,
        "the standby listens on rank n_workers + 1"
    );
    let init = flat_params(workload.build_model().as_visitor());
    let mut cfg = server_elastic_config(config, opts);
    // once promoted, wait out the failover skew: workers switch over one
    // by one as their individual patience budgets run dry
    cfg.resume_grace = opts.ps_patience + opts.reply_timeout;
    // outlive every worker's failover budget before concluding the
    // whole cluster is gone
    let max_silence = (opts.ps_patience + opts.reply_timeout) * 3;
    run_standby_server(
        ep,
        config.n_workers,
        init,
        &cfg,
        max_silence,
        server_checkpoint_writer(config, opts),
    )
}

pub(crate) fn server_elastic_config(config: &RunConfig, opts: &ElasticOptions) -> ElasticConfig {
    ElasticConfig {
        round_timeout: opts.round_timeout,
        max_missed: opts.max_missed,
        standby: opts.standby_rank(config.n_workers),
        crash: opts.server_crash,
        shard_map: None,
        resume_grace: Duration::ZERO,
    }
}

/// The write-ahead checkpoint hook: persist every completed sync round's
/// server state as a v2 checkpoint before any worker can see the round's
/// result. Best effort — a full disk must not take the cluster down.
pub(crate) fn server_checkpoint_writer(
    config: &RunConfig,
    opts: &ElasticOptions,
) -> impl FnMut(&ServerState) {
    let ckpt = opts.checkpoint.clone();
    let seed = config.seed;
    move |state: &ServerState| {
        if let Some(path) = &ckpt {
            let ts = checkpoint::TrainState {
                step: state.step,
                syncs: state.syncs,
                rounds: state.step,
                seed,
                cursor_consumed: 0,
                optim_t: 0,
                params: state.global.clone(),
                alive: state.alive.clone(),
                done: state.done.clone(),
                evictions: state.evictions.clone(),
                joins: state.joins.clone(),
                optim_slots: Vec::new(),
                delta_state: None,
            };
            let _ = checkpoint::save_state(path, &ts);
        }
    }
}

/// Run one elastic worker rank from step 0. Takes the endpoint by
/// mutable reference (unlike the static-membership trainer) so a
/// scheduled crash can later [`rejoin_elastic_worker_rank`] on the same
/// endpoint.
///
/// # Errors
/// [`TransportError::Evicted`] if the server expelled this rank (it may
/// rejoin); other variants on unrecoverable comm faults.
pub fn run_elastic_worker_rank<T: Transport>(
    ep: &mut T,
    config: &RunConfig,
    workload: &Workload,
    opts: &ElasticOptions,
) -> Result<WorkerOutput, TransportError> {
    validate_elastic(config, workload);
    let worker = ep.id();
    assert!(worker < config.n_workers, "worker rank out of range");
    let members: Vec<usize> = (0..config.n_workers).collect();
    let mut sess = MonoSession::new(ep, config.n_workers, opts, config.overlap_buckets);
    elastic_loop(&mut sess, config, workload, opts, None, None, 0, members)
}

/// Re-admit this rank into a running elastic experiment: warm-start from
/// the newest checkpoint (or the parameters in the join grant), resume
/// at the server-assigned step with the granted membership, and train to
/// the end. Returns the resume step alongside the worker output.
///
/// # Errors
/// `RecvTimeout` if the server never grants the join (training already
/// over); otherwise as [`run_elastic_worker_rank`].
pub fn rejoin_elastic_worker_rank<T: Transport>(
    ep: &mut T,
    config: &RunConfig,
    workload: &Workload,
    opts: &ElasticOptions,
) -> Result<(u64, WorkerOutput), TransportError> {
    validate_elastic(config, workload);
    let worker = ep.id();
    assert!(worker < config.n_workers, "worker rank out of range");
    let grant = join_request(ep, config.n_workers, opts.reply_timeout)?;
    let members = alive_ranks(&grant.status);
    let resume_step = grant.resume_step;
    // prefer the on-disk checkpoint the server wrote at the last sync;
    // the grant carries the same state over the wire as a fallback
    let init = opts
        .checkpoint
        .as_ref()
        .and_then(|p| checkpoint::load_state_with_fallback(p).ok())
        .map(|(s, _)| s.params)
        .filter(|v| v.len() == grant.params.len())
        .unwrap_or(grant.params);
    // this rank's private state (optimizer slots, Δ(g) stream) survives
    // in its own mirror file; the parameters above stay authoritative
    let private = opts
        .checkpoint
        .as_ref()
        .and_then(|p| checkpoint::load_state_with_fallback(worker_state_path(p, worker)).ok())
        .map(|(s, _)| s);
    let mut sess = MonoSession::new(ep, config.n_workers, opts, config.overlap_buckets);
    let out = elastic_loop(
        &mut sess,
        config,
        workload,
        opts,
        Some(init),
        private,
        resume_step,
        members,
    )?;
    Ok((resume_step, out))
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub(crate) fn elastic_loop<S: PsSession>(
    sess: &mut S,
    config: &RunConfig,
    workload: &Workload,
    opts: &ElasticOptions,
    init_params: Option<Vec<f32>>,
    private_state: Option<checkpoint::TrainState>,
    start_step: u64,
    mut members: Vec<usize>,
) -> Result<WorkerOutput, TransportError> {
    let worker = sess.me();
    let mut model = workload.build_model();
    if let Some(init) = init_params {
        set_flat_params(model.as_model(), &init);
    }
    let mut opt = AnyOptimizer::new(config.optim, config.lr.at(start_step));
    // without a private checkpoint, a rejoiner restarts its Δ(g) EWMA
    // from scratch: its first step reports an infinite relative change
    // and forces a sync — the conservative behaviour for a returning
    // replica. With one, momentum and the Δ(g) stream pick up where the
    // crashed incarnation's last sync left them.
    let mut relchange = RelativeGradChange::new(config.ewma_window, config.ewma_alpha);
    let mut cursor_consumed = 0u64;
    if let Some(st) = private_state {
        opt.import_state(st.optim_t, st.optim_slots);
        if let Some(d) = st.delta_state {
            relchange = d;
        }
        // the cursor position is recorded for observability but not
        // replayed: the rejoiner re-partitions over current members
        cursor_consumed = st.cursor_consumed;
    }
    let mut cursor = build_cursor(config, workload, &members, worker);
    let mut lssr = LssrCounter::new();
    let mut records = Vec::new();
    let mut evals = Vec::new();
    let mut logical_bytes = 0u64;
    let mut crashed = false;
    // loop-persistent flat-parameter buffer: sync rounds borrow it, so
    // after the first sync the snapshot is allocation-free
    let mut params: Vec<f32> = Vec::new();

    for step in start_step..config.max_steps {
        if opts.crash_at == Some(step) {
            crashed = true;
            break; // go silent: no shutdown, no farewell — a real crash
        }
        opt.set_lr(config.lr.at(step));
        if let Some((slow, delay_us)) = config.straggler {
            if slow == worker {
                std::thread::sleep(Duration::from_micros(delay_us));
            }
        }
        let batch = cursor.next_batch(&workload.data);
        cursor_consumed += 1;
        let logits = model.as_model().forward(&batch.input, true);
        let (loss, dlogits) = softmax_cross_entropy(&logits, &batch.targets);
        model.as_model().zero_grad();
        model.as_model().backward(&dlogits);
        if let Some(max_norm) = config.grad_clip {
            clip_grad_norm(model.as_model(), max_norm);
        }

        let (my_bit, delta_g) = match config.strategy {
            Strategy::SelSync { delta, .. } => {
                let dg = relchange.update(grad_sqnorm(model.as_visitor()));
                (u8::from(dg >= delta), dg)
            }
            _ => (1, f32::NAN), // BSP: raise the flag every step
        };

        // flags round = heartbeat; the reply is the membership status
        let status = sess.heartbeat(step, my_bit)?;
        let now_alive = alive_ranks(&status);
        if now_alive != members {
            // membership changed (eviction or rejoin): every survivor
            // recomputes the same partition of the dataset
            members = now_alive;
            cursor = build_cursor(config, workload, &members, worker);
        }

        // a status vector containing SYNC can only come from the current
        // round (catch-up replies never carry sync bits), so every
        // receiver of one participates in the parameter-averaging round
        let synced = if status.contains(&STATUS_SYNC) {
            opt.step(model.as_model());
            flat_params_into(model.as_visitor(), &mut params);
            logical_bytes += 4 * params.len() as u64;
            let global = sess.sync(step, &params)?;
            set_flat_params(model.as_model(), &global);
            if let Some(base) = &opts.checkpoint {
                // mirror this rank's private state next to the server's
                // checkpoint so a rejoin resumes momentum and Δ(g)
                let (optim_t, optim_slots) = opt.export_state();
                let ts = checkpoint::TrainState {
                    step: step + 1,
                    syncs: lssr.sync_steps + 1,
                    rounds: step + 1,
                    seed: config.seed,
                    cursor_consumed,
                    optim_t,
                    params: global.to_vec(),
                    alive: (0..config.n_workers)
                        .map(|i| members.contains(&i))
                        .collect(),
                    done: vec![false; config.n_workers],
                    evictions: Vec::new(),
                    joins: Vec::new(),
                    optim_slots,
                    delta_state: Some(relchange.clone()),
                };
                let _ = checkpoint::save_state(worker_state_path(base, worker), &ts);
            }
            true
        } else {
            opt.step(model.as_model());
            false
        };

        if synced {
            lssr.record_sync();
        } else {
            lssr.record_local();
        }
        if worker == 0 {
            records.push(StepRecord {
                step,
                loss,
                synced,
                delta_g,
            });
            if (step + 1).is_multiple_of(config.eval_every) || step + 1 == config.max_steps {
                evals.push(EvalRecord {
                    step,
                    epoch: cursor.epoch_progress(),
                    metric: evaluate(&mut model, workload),
                });
            }
        }
    }

    if !crashed {
        sess.shutdown(config.max_steps)?;
    }

    Ok(WorkerOutput {
        worker,
        final_params: flat_params(model.as_visitor()),
        lssr,
        records,
        evals,
        logical_sync_bytes: logical_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_comm::Fabric;
    use selsync_nn::models::ModelKind;
    use std::thread;

    fn elastic_cfg(n_workers: usize, steps: u64, delta: f32) -> RunConfig {
        RunConfig {
            strategy: Strategy::SelSync {
                delta,
                aggregation: Aggregation::Parameter,
            },
            n_workers,
            max_steps: steps,
            eval_every: steps,
            ..RunConfig::quick_defaults()
        }
    }

    fn small_workload() -> Workload {
        Workload::vision(ModelKind::VggMini, 96, 32, 7)
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("selsync_elastic_{}_{name}", std::process::id()));
        p
    }

    /// Remove a checkpoint, its previous generation, and every worker's
    /// private mirror.
    fn cleanup(ckpt: &Path, n_workers: usize) {
        std::fs::remove_file(ckpt).ok();
        std::fs::remove_file(checkpoint::prev_path(ckpt)).ok();
        for w in 0..n_workers {
            let p = worker_state_path(ckpt, w);
            std::fs::remove_file(checkpoint::prev_path(&p)).ok();
            std::fs::remove_file(p).ok();
        }
    }

    /// Run a full fault-free elastic cluster and return the server
    /// report plus worker outputs sorted by rank.
    fn run_cluster(
        cfg: &RunConfig,
        wl: &Workload,
        opts: &ElasticOptions,
    ) -> (ElasticReport, Vec<WorkerOutput>) {
        let mut eps = Fabric::new(cfg.n_workers + 1);
        let server_ep = eps.pop().unwrap();
        let (s_cfg, s_wl, s_opts) = (cfg.clone(), wl.clone(), opts.clone());
        let server =
            thread::spawn(move || run_elastic_server_rank(server_ep, &s_cfg, &s_wl, &s_opts));
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                let (cfg, wl, opts) = (cfg.clone(), wl.clone(), opts.clone());
                thread::spawn(move || run_elastic_worker_rank(&mut ep, &cfg, &wl, &opts))
            })
            .collect();
        let mut outs: Vec<WorkerOutput> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        outs.sort_by_key(|o| o.worker);
        (server.join().unwrap().unwrap(), outs)
    }

    #[test]
    fn fault_free_elastic_run_completes() {
        let n = 3;
        let cfg = elastic_cfg(n, 10, 0.35);
        let wl = small_workload();
        let opts = ElasticOptions::with_liveness(Duration::from_millis(500), 3);
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let (s_cfg, s_wl, s_opts) = (cfg.clone(), wl.clone(), opts.clone());
        let server =
            thread::spawn(move || run_elastic_server_rank(server_ep, &s_cfg, &s_wl, &s_opts));
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                let (cfg, wl, opts) = (cfg.clone(), wl.clone(), opts.clone());
                thread::spawn(move || run_elastic_worker_rank(&mut ep, &cfg, &wl, &opts))
            })
            .collect();
        let outputs: Vec<WorkerOutput> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        let report = server.join().unwrap().unwrap();
        assert!(report.evictions.is_empty());
        assert!(report.joins.is_empty());
        assert!(report.syncs >= 1, "step 0 must sync (Δ = ∞)");
        for o in &outputs {
            assert!(o.final_params.iter().all(|v| v.is_finite()));
            assert_eq!(o.lssr.total(), 10);
        }
        let w0 = outputs.iter().find(|o| o.worker == 0).unwrap();
        assert!(w0.records[0].synced, "first step always synchronizes");
    }

    /// Shipping elastic parameter pushes as Bucket frames must change
    /// nothing but the wire format: same-seed runs end bit-identical.
    #[test]
    fn bucketed_elastic_sync_is_bit_identical_to_monolithic() {
        let n = 2;
        let mut cfg = elastic_cfg(n, 6, 0.0); // δ=0: sync every step
        let wl = small_workload();
        let opts = ElasticOptions::with_liveness(Duration::from_millis(500), 3);
        let (mono_report, mono_outs) = run_cluster(&cfg, &wl, &opts);
        cfg.overlap_buckets = Some(1000);
        let (bucket_report, bucket_outs) = run_cluster(&cfg, &wl, &opts);
        assert_eq!(
            mono_report
                .final_params
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            bucket_report
                .final_params
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "bucketed elastic sync must be bit-identical"
        );
        assert_eq!(mono_report.syncs, bucket_report.syncs);
        for (m, b) in mono_outs.iter().zip(&bucket_outs) {
            assert_eq!(m.final_params, b.final_params);
        }
    }

    #[test]
    fn crash_evicts_and_survivors_finish_with_checkpoint() {
        let n = 3;
        let steps = 12;
        let cfg = elastic_cfg(n, steps, 0.0); // δ=0: sync every step
        let wl = small_workload();
        let ckpt = tmp("crash.bin");
        let mut opts = ElasticOptions::with_liveness(Duration::from_millis(150), 2);
        opts.reply_timeout = Duration::from_secs(5);
        opts.checkpoint = Some(ckpt.clone());
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let (s_cfg, s_wl, s_opts) = (cfg.clone(), wl.clone(), opts.clone());
        let server =
            thread::spawn(move || run_elastic_server_rank(server_ep, &s_cfg, &s_wl, &s_opts));
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                let (cfg, wl) = (cfg.clone(), wl.clone());
                let mut opts = opts.clone();
                if ep.id() == 2 {
                    opts.crash_at = Some(4);
                }
                thread::spawn(move || run_elastic_worker_rank(&mut ep, &cfg, &wl, &opts))
            })
            .collect();
        let outputs: Vec<WorkerOutput> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        let report = server.join().unwrap().unwrap();

        assert_eq!(report.evictions.len(), 1, "exactly the crashed rank dies");
        let (evict_step, evicted) = report.evictions[0];
        assert_eq!(evicted, 2);
        assert!((4..steps).contains(&evict_step));
        // the crashed rank stopped early, the survivors ran every step
        for o in &outputs {
            if o.worker == 2 {
                assert_eq!(o.lssr.total(), 4);
            } else {
                assert_eq!(o.lssr.total(), steps);
                // δ=0 ⇒ the last step synced, so survivors hold the
                // global state bit-for-bit
                assert_eq!(o.final_params, report.final_params);
            }
        }
        // the v2 checkpoint holds the final global state and membership
        let (saved, used_prev) = checkpoint::load_state_with_fallback(&ckpt).unwrap();
        assert!(!used_prev, "current generation must be loadable");
        assert_eq!(saved.params, report.final_params);
        assert_eq!(saved.alive, vec![true, true, false]);
        assert_eq!(saved.evictions, report.evictions);
        cleanup(&ckpt, n);
    }

    #[test]
    fn crashed_worker_rejoins_from_checkpoint_and_finishes() {
        let n = 2;
        let steps = 60;
        let mut cfg = elastic_cfg(n, steps, 0.0);
        cfg.straggler = Some((0, 10_000)); // pace rank 0 at ~10 ms/step
        let wl = small_workload();
        let ckpt = tmp("rejoin.bin");
        let mut opts = ElasticOptions::with_liveness(Duration::from_millis(80), 2);
        opts.reply_timeout = Duration::from_secs(10);
        opts.checkpoint = Some(ckpt.clone());
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let (s_cfg, s_wl, s_opts) = (cfg.clone(), wl.clone(), opts.clone());
        let server =
            thread::spawn(move || run_elastic_server_rank(server_ep, &s_cfg, &s_wl, &s_opts));
        let mut rejoiner_ep = eps.pop().unwrap(); // rank 1
        let mut steady_ep = eps.pop().unwrap(); // rank 0
        let (cfg0, wl0, opts0) = (cfg.clone(), wl.clone(), opts.clone());
        let steady =
            thread::spawn(move || run_elastic_worker_rank(&mut steady_ep, &cfg0, &wl0, &opts0));
        let rejoin = thread::spawn(move || {
            let mut first = opts.clone();
            first.crash_at = Some(3);
            let partial = run_elastic_worker_rank(&mut rejoiner_ep, &cfg, &wl, &first).unwrap();
            assert_eq!(partial.lssr.total(), 3);
            // stay dark long enough to be evicted, then come back
            thread::sleep(Duration::from_millis(400));
            rejoin_elastic_worker_rank(&mut rejoiner_ep, &cfg, &wl, &opts).unwrap()
        });
        let steady_out = steady.join().unwrap().unwrap();
        let (resume_step, rejoined_out) = rejoin.join().unwrap();
        let report = server.join().unwrap().unwrap();

        assert_eq!(report.evictions.len(), 1);
        assert_eq!(report.evictions[0].1, 1);
        assert_eq!(report.joins, vec![(resume_step, 1)]);
        assert!(resume_step > 3, "rejoined after the crash step");
        assert!(resume_step < steps, "rejoined before training ended");
        // correct step count: the rejoiner ran exactly the rest
        assert_eq!(rejoined_out.lssr.total(), steps - resume_step);
        assert_eq!(steady_out.lssr.total(), steps);
        // δ=0 ⇒ both members end on the synced global state
        assert_eq!(steady_out.final_params, report.final_params);
        assert_eq!(rejoined_out.final_params, report.final_params);
        cleanup(&ckpt, n);
    }

    #[test]
    fn ps_mid_sync_crash_resumes_bit_identically() {
        let n = 2;
        let steps = 8;
        let cfg = elastic_cfg(n, steps, 0.0); // δ=0: sync every step
        let wl = small_workload();

        // reference: the same cluster with no faults
        let mut ref_opts = ElasticOptions::with_liveness(Duration::from_millis(400), 3);
        ref_opts.ps_patience = Duration::from_secs(30);
        let (ref_report, ref_outs) = run_cluster(&cfg, &wl, &ref_opts);
        assert!(!ref_report.crashed);

        // faulted run: PS dies mid-sync at step 4, then resumes from the
        // durable checkpoint on the same endpoint
        let ckpt = tmp("ps_resume.bin");
        let mut opts = ref_opts.clone();
        opts.checkpoint = Some(ckpt.clone());
        let mut eps = Fabric::new(n + 1);
        let mut server_ep = eps.pop().unwrap();
        let (s_cfg, s_wl, s_opts, s_ckpt) = (cfg.clone(), wl.clone(), opts.clone(), ckpt.clone());
        let server = thread::spawn(move || {
            let mut crash_opts = s_opts.clone();
            crash_opts.server_crash = Some(ServerCrashPoint::MidSync(4));
            let dead = run_elastic_server_rank(&mut server_ep, &s_cfg, &s_wl, &crash_opts).unwrap();
            assert!(dead.crashed, "the scheduled crash must fire");
            assert_eq!(dead.syncs, 4, "rounds 0..4 completed before the crash");
            // the write-ahead snapshot for round 4 is already durable
            let (state, used_prev) = checkpoint::load_state_with_fallback(&s_ckpt).unwrap();
            assert!(!used_prev);
            assert_eq!(state.step, 4);
            run_elastic_server_rank_from(&mut server_ep, &s_cfg, &s_wl, &s_opts, &state).unwrap()
        });
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                let (cfg, wl, opts) = (cfg.clone(), wl.clone(), opts.clone());
                thread::spawn(move || run_elastic_worker_rank(&mut ep, &cfg, &wl, &opts))
            })
            .collect();
        let mut outs: Vec<WorkerOutput> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        outs.sort_by_key(|o| o.worker);
        let report = server.join().unwrap();

        assert!(!report.crashed);
        assert!(
            report.evictions.is_empty(),
            "recovery must not evict anyone"
        );
        assert_eq!(report.syncs, steps, "every round syncs after resume");
        // bit-identical to the unfailed run from the last sync boundary on
        assert_eq!(report.final_params, ref_report.final_params);
        for (o, r) in outs.iter().zip(&ref_outs) {
            assert_eq!(o.lssr.total(), steps);
            assert_eq!(o.final_params, r.final_params);
        }
        cleanup(&ckpt, n);
    }

    #[test]
    fn workers_promote_standby_after_ps_death() {
        let n = 2;
        let steps = 8;
        let cfg = elastic_cfg(n, steps, 0.0);
        let wl = small_workload();
        let mut opts = ElasticOptions::with_liveness(Duration::from_millis(300), 5);
        opts.reply_timeout = Duration::from_millis(400);
        opts.ps_patience = Duration::from_millis(900);
        opts.standby = true;

        let mut eps = Fabric::new(n + 2);
        let standby_ep = eps.pop().unwrap(); // rank n+1
        let server_ep = eps.pop().unwrap(); // rank n
        let (s_cfg, s_wl, mut s_opts) = (cfg.clone(), wl.clone(), opts.clone());
        s_opts.server_crash = Some(ServerCrashPoint::RoundStart(4));
        let primary = thread::spawn(move || {
            // the endpoint drops with this thread: the PS stays dead
            run_elastic_server_rank(server_ep, &s_cfg, &s_wl, &s_opts).unwrap()
        });
        let (b_cfg, b_wl, b_opts) = (cfg.clone(), wl.clone(), opts.clone());
        let standby = thread::spawn(move || {
            run_standby_server_rank(standby_ep, &b_cfg, &b_wl, &b_opts).unwrap()
        });
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                let (cfg, wl, opts) = (cfg.clone(), wl.clone(), opts.clone());
                thread::spawn(move || run_elastic_worker_rank(&mut ep, &cfg, &wl, &opts))
            })
            .collect();
        let outs: Vec<WorkerOutput> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        let dead = primary.join().unwrap();
        let outcome = standby.join().unwrap();

        assert!(dead.crashed);
        assert_eq!(dead.syncs, 4, "rounds 0..4 completed before the crash");
        let StandbyOutcome::Promoted(report) = outcome else {
            panic!("the standby must be promoted, got {outcome:?}");
        };
        assert!(!report.crashed);
        assert_eq!(report.syncs, steps, "shadowed rounds + promoted rounds");
        assert!(
            report.evictions.is_empty(),
            "failover must not evict anyone"
        );
        for o in &outs {
            assert_eq!(o.lssr.total(), steps);
            // δ=0 ⇒ the last step synced against the promoted standby
            assert_eq!(o.final_params, report.final_params);
        }
    }
}
