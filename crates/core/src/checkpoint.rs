//! Checkpointing: persist run results, model parameters, and — since v2
//! — the *full* training state needed to restart a killed parameter
//! server or rejoin a crashed worker without losing optimizer momentum,
//! δ-threshold history, or elastic membership.
//!
//! Three formats live here:
//!
//! * **Results** serialize as JSON (human-inspectable, matches the
//!   harnesses' JSON rows).
//! * **v1 params** (`SSYN` magic): a bare little-endian `f32` dump, kept
//!   for `--save-params` / warm-start compatibility.
//! * **v2 state** (`SSV2` magic): a self-describing sectioned container
//!   with a CRC32 per section, written crash-consistently — temp file +
//!   `fsync` + atomic rename, with the previous generation retained as
//!   `<name>.prev`. A kill at *any* byte offset of the write sequence
//!   leaves a loadable checkpoint: either the new file is complete and
//!   valid, or [`load_state_with_fallback`] detects the damage via magic
//!   /length/CRC checks and falls back to the previous generation with a
//!   typed [`CheckpointError`] trail — never silently wrong parameters.

use crate::metrics::RunResult;
use selsync_stats::RelativeGradChange;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"SSYN";

/// Magic of the v2 sectioned training-state checkpoint.
pub const STATE_MAGIC: &[u8; 4] = b"SSV2";
/// Current version of the v2 container layout.
pub const STATE_VERSION: u32 = 2;

// Section ids of the v2 container. Unknown ids are skipped on load (a
// newer writer may add sections), required ones are checked after the
// scan so truncation anywhere yields a typed error.
const SEC_META: u32 = 1;
const SEC_PARAMS: u32 = 2;
const SEC_MEMBERSHIP: u32 = 3;
const SEC_HISTORY: u32 = 4;
const SEC_OPTIM: u32 = 5;
const SEC_DELTA: u32 = 6;

/// Why a checkpoint failed to load. Every variant names the damage so
/// recovery code (and humans reading logs) can tell a missing file from
/// a torn write from bit rot.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error (including file-not-found).
    Io(io::Error),
    /// The file does not start with [`STATE_MAGIC`].
    BadMagic { found: [u8; 4] },
    /// The container version is newer than this build understands.
    BadVersion { found: u32 },
    /// The file ends in the middle of `what` — a torn write.
    Truncated { what: &'static str },
    /// A section's stored CRC32 does not match its bytes.
    CrcMismatch { section: u32 },
    /// A required section is absent (torn tail or writer bug).
    MissingSection { section: u32 },
    /// A section parsed but its contents are inconsistent.
    Malformed { section: u32, what: String },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadMagic { found } => {
                write!(f, "not a SSV2 checkpoint (magic {found:?})")
            }
            CheckpointError::BadVersion { found } => {
                write!(f, "unsupported checkpoint version {found}")
            }
            CheckpointError::Truncated { what } => {
                write!(f, "checkpoint truncated while reading {what}")
            }
            CheckpointError::CrcMismatch { section } => {
                write!(f, "checkpoint section {section} failed its CRC32 check")
            }
            CheckpointError::MissingSection { section } => {
                write!(f, "checkpoint is missing required section {section}")
            }
            CheckpointError::Malformed { section, what } => {
                write!(f, "checkpoint section {section} malformed: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The full recoverable training state of one rank.
///
/// The parameter server checkpoints the *global* view (params,
/// membership, sync history) after every sync round; workers checkpoint
/// their *local* view (optimizer slots, δ-tracker) after every synced
/// step. Both use the same container so one loader serves resume,
/// rejoin, and standby promotion.
#[derive(Debug, Clone)]
pub struct TrainState {
    /// Next step/round to execute (everything below it is durable).
    pub step: u64,
    /// Completed synchronization rounds.
    pub syncs: u64,
    /// Completed heartbeat rounds (elastic PS only; equals `step`).
    pub rounds: u64,
    /// Root RNG seed of the run (partitions, injection draws).
    pub seed: u64,
    /// Batches drawn from the current cursor since the last partition
    /// rebuild. Recorded for diagnostics; rejoin rebuilds cursors
    /// deterministically on the membership change, so it is not replayed.
    pub cursor_consumed: u64,
    /// Adam's bias-correction step count (0 for SGD / the PS).
    pub optim_t: u64,
    /// Flat parameters (global on the PS, replica on a worker).
    pub params: Vec<f32>,
    /// Elastic membership: which worker ranks are alive.
    pub alive: Vec<bool>,
    /// Elastic membership: which worker ranks finished cleanly.
    pub done: Vec<bool>,
    /// Eviction history as `(round, rank)` pairs.
    pub evictions: Vec<(u64, usize)>,
    /// Join history as `(round, rank)` pairs.
    pub joins: Vec<(u64, usize)>,
    /// Optimizer slot buffers (SGD velocity, or Adam m ++ v), empty on
    /// the PS.
    pub optim_slots: Vec<Vec<f32>>,
    /// The worker's Δ(g) tracker (EWMA window + previous smoothed norm),
    /// `None` on the PS.
    pub delta_state: Option<RelativeGradChange>,
}

impl TrainState {
    /// A state with only parameters filled in — what a fresh PS would
    /// checkpoint before any rounds have run.
    pub fn fresh(n_workers: usize, params: Vec<f32>) -> Self {
        TrainState {
            step: 0,
            syncs: 0,
            rounds: 0,
            seed: 0,
            cursor_consumed: 0,
            optim_t: 0,
            params,
            alive: vec![true; n_workers],
            done: vec![false; n_workers],
            evictions: Vec::new(),
            joins: Vec::new(),
            optim_slots: Vec::new(),
            delta_state: None,
        }
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3 reflected polynomial) — local implementation, no
// external dependency. Table built at compile time.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 of `bytes` (IEEE, as used by zip/gzip/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// v2 encode
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_section(out: &mut Vec<u8>, id: u32, body: &[u8]) {
    put_u32(out, id);
    put_u64(out, body.len() as u64);
    put_u32(out, crc32(body));
    out.extend_from_slice(body);
}

fn put_f32_slice(out: &mut Vec<u8>, vals: &[f32]) {
    put_u64(out, vals.len() as u64);
    let mut body = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        body.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&body);
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[(u64, usize)]) {
    put_u64(out, pairs.len() as u64);
    for &(step, rank) in pairs {
        put_u64(out, step);
        put_u64(out, rank as u64);
    }
}

/// Serialize a [`TrainState`] to the v2 container bytes. Public so the
/// torn-write tests can sweep kill offsets over the exact byte stream
/// [`save_state`] produces.
pub fn encode_state(state: &TrainState) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(STATE_MAGIC);
    put_u32(&mut out, STATE_VERSION);
    let n_sections = 5 + u32::from(state.delta_state.is_some());
    put_u32(&mut out, n_sections);

    let mut body = Vec::new();
    for v in [
        state.step,
        state.syncs,
        state.rounds,
        state.seed,
        state.cursor_consumed,
        state.optim_t,
    ] {
        put_u64(&mut body, v);
    }
    put_section(&mut out, SEC_META, &body);

    body.clear();
    put_f32_slice(&mut body, &state.params);
    put_section(&mut out, SEC_PARAMS, &body);

    body.clear();
    assert_eq!(state.alive.len(), state.done.len(), "membership vectors");
    put_u64(&mut body, state.alive.len() as u64);
    for (a, d) in state.alive.iter().zip(&state.done) {
        body.push(u8::from(*a) | (u8::from(*d) << 1));
    }
    put_section(&mut out, SEC_MEMBERSHIP, &body);

    body.clear();
    put_pairs(&mut body, &state.evictions);
    put_pairs(&mut body, &state.joins);
    put_section(&mut out, SEC_HISTORY, &body);

    body.clear();
    put_u64(&mut body, state.optim_slots.len() as u64);
    for slot in &state.optim_slots {
        put_f32_slice(&mut body, slot);
    }
    put_section(&mut out, SEC_OPTIM, &body);

    if let Some(delta) = &state.delta_state {
        // lint:allow(unwrap-in-prod): serializing a plain struct of numeric
        // fields (no maps, no non-UTF8) is infallible in serde_json
        let json = serde_json::to_string(delta).expect("δ-tracker serializes");
        put_section(&mut out, SEC_DELTA, json.as_bytes());
    }
    out
}

// ---------------------------------------------------------------------
// v2 decode
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, CheckpointError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32s(&mut self, section: u32) -> Result<Vec<f32>, CheckpointError> {
        let len = self.u64("f32 slice length")? as usize;
        if len > self.buf.len() {
            return Err(CheckpointError::Malformed {
                section,
                what: format!("slice length {len} exceeds section"),
            });
        }
        let body = self.take(len * 4, "f32 slice body")?;
        Ok(body
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn pairs(&mut self, section: u32) -> Result<Vec<(u64, usize)>, CheckpointError> {
        let n = self.u64("pair count")? as usize;
        if n > self.buf.len() {
            return Err(CheckpointError::Malformed {
                section,
                what: format!("pair count {n} exceeds section"),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let step = self.u64("pair step")?;
            let rank = self.u64("pair rank")? as usize;
            out.push((step, rank));
        }
        Ok(out)
    }
}

fn require<'a>(sections: &'a [(u32, &[u8])], id: u32) -> Result<Reader<'a>, CheckpointError> {
    sections
        .iter()
        .find(|(sid, _)| *sid == id)
        .map(|(_, body)| Reader { buf: body, pos: 0 })
        .ok_or(CheckpointError::MissingSection { section: id })
}

/// Parse v2 container bytes back into a [`TrainState`].
///
/// # Errors
/// Typed [`CheckpointError`] on any damage: wrong magic, future version,
/// truncation anywhere, per-section CRC mismatch, missing required
/// section, or inconsistent contents.
pub fn decode_state(bytes: &[u8]) -> Result<TrainState, CheckpointError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = r.take(4, "magic")?;
    if magic != STATE_MAGIC {
        return Err(CheckpointError::BadMagic {
            found: [magic[0], magic[1], magic[2], magic[3]],
        });
    }
    let version = r.u32("version")?;
    if version > STATE_VERSION {
        return Err(CheckpointError::BadVersion { found: version });
    }
    let n_sections = r.u32("section count")?;

    let mut sections: Vec<(u32, &[u8])> = Vec::with_capacity(n_sections as usize);
    for _ in 0..n_sections {
        let id = r.u32("section id")?;
        let len = r.u64("section length")? as usize;
        let stored_crc = r.u32("section crc")?;
        let body = r.take(len, "section body")?;
        if crc32(body) != stored_crc {
            return Err(CheckpointError::CrcMismatch { section: id });
        }
        sections.push((id, body));
    }

    let mut meta = require(&sections, SEC_META)?;
    let step = meta.u64("meta step")?;
    let syncs = meta.u64("meta syncs")?;
    let rounds = meta.u64("meta rounds")?;
    let seed = meta.u64("meta seed")?;
    let cursor_consumed = meta.u64("meta cursor")?;
    let optim_t = meta.u64("meta optim_t")?;

    let params = require(&sections, SEC_PARAMS)?.f32s(SEC_PARAMS)?;

    let mut mem = require(&sections, SEC_MEMBERSHIP)?;
    let n = mem.u64("membership count")? as usize;
    let bits = mem.take(n, "membership bytes")?;
    let alive: Vec<bool> = bits.iter().map(|b| b & 1 != 0).collect();
    let done: Vec<bool> = bits.iter().map(|b| b & 2 != 0).collect();

    let mut hist = require(&sections, SEC_HISTORY)?;
    let evictions = hist.pairs(SEC_HISTORY)?;
    let joins = hist.pairs(SEC_HISTORY)?;

    let mut optim = require(&sections, SEC_OPTIM)?;
    let n_slots = optim.u64("optim slot count")? as usize;
    if n_slots > bytes.len() {
        return Err(CheckpointError::Malformed {
            section: SEC_OPTIM,
            what: format!("slot count {n_slots} exceeds file"),
        });
    }
    let mut optim_slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        optim_slots.push(optim.f32s(SEC_OPTIM)?);
    }

    let delta_state = match sections.iter().find(|(id, _)| *id == SEC_DELTA) {
        Some((_, body)) => {
            let text = std::str::from_utf8(body).map_err(|e| CheckpointError::Malformed {
                section: SEC_DELTA,
                what: e.to_string(),
            })?;
            Some(
                serde_json::from_str(text).map_err(|e| CheckpointError::Malformed {
                    section: SEC_DELTA,
                    what: e.to_string(),
                })?,
            )
        }
        None => None,
    };

    Ok(TrainState {
        step,
        syncs,
        rounds,
        seed,
        cursor_consumed,
        optim_t,
        params,
        alive,
        done,
        evictions,
        joins,
        optim_slots,
        delta_state,
    })
}

// ---------------------------------------------------------------------
// v2 durable file I/O
// ---------------------------------------------------------------------

/// Path of the retained previous generation for `path`.
pub fn prev_path(path: &Path) -> PathBuf {
    sibling(path, "prev")
}

fn tmp_path(path: &Path) -> PathBuf {
    sibling(path, "tmp")
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    path.with_file_name(format!("{name}.{suffix}"))
}

/// Durably write `state` to `path`: encode, write to a temp file,
/// `fsync`, rotate any existing `path` to `path.prev`, then atomically
/// rename the temp file into place. A crash at any byte offset leaves
/// either the old generation at `path`, or the old generation at
/// `path.prev` (with `path` absent or complete) — never a file that
/// parses to wrong state.
///
/// # Errors
/// [`CheckpointError::Io`] on filesystem failure.
pub fn save_state(path: impl AsRef<Path>, state: &TrainState) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let bytes = encode_state(state);
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    if path.exists() {
        fs::rename(path, prev_path(path))?;
    }
    fs::rename(&tmp, path)?;
    // Best-effort directory sync so the renames themselves are durable;
    // not all filesystems allow opening a directory for sync.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Load a v2 checkpoint from `path`, strictly.
///
/// # Errors
/// Typed [`CheckpointError`] on any read or parse failure.
pub fn load_state(path: impl AsRef<Path>) -> Result<TrainState, CheckpointError> {
    let bytes = fs::read(path)?;
    decode_state(&bytes)
}

/// Load a v2 checkpoint, falling back to the retained `.prev` generation
/// when the current file is missing, torn, or corrupt. Returns the state
/// and whether the fallback generation was used.
///
/// # Errors
/// The *primary* file's error when neither generation loads (so logs
/// point at the real damage, not at a possibly-absent `.prev`).
pub fn load_state_with_fallback(
    path: impl AsRef<Path>,
) -> Result<(TrainState, bool), CheckpointError> {
    let path = path.as_ref();
    match load_state(path) {
        Ok(state) => Ok((state, false)),
        Err(primary) => match load_state(prev_path(path)) {
            Ok(state) => Ok((state, true)),
            Err(_) => Err(primary),
        },
    }
}

// ---------------------------------------------------------------------
// v2 generation probing (serving-tier rolling reload)
// ---------------------------------------------------------------------

/// A checkpoint file's generation identity, cheap enough to poll: the
/// serving tier's reload watcher compares successive probes to notice
/// that the trainer atomically renamed a new SSV2 image into place,
/// without reading the (large) parameter section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateGeneration {
    /// `step` from the checkpoint's meta section.
    pub step: u64,
    /// `syncs` from the checkpoint's meta section.
    pub syncs: u64,
    /// Total file length in bytes.
    pub file_len: u64,
}

fn read_exact_probe(
    f: &mut File,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), CheckpointError> {
    f.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated { what }
        } else {
            CheckpointError::Io(e)
        }
    })
}

/// Probe `path` for its generation: validates magic/version, walks the
/// section table reading only headers, and CRC-checks just the 48-byte
/// meta section. Reads O(sections) bytes regardless of model size, so a
/// replica can poll it on a short interval without touching the
/// parameter payload.
///
/// Falls back to the retained `.prev` generation when the current file
/// is missing, torn, or fails its header CRC — the same policy as
/// [`load_state_with_fallback`], so the watcher and the loader agree on
/// which generation is live: a torn in-progress rewrite of the current
/// file surfaces the previous generation instead of stalling the reload
/// loop on an error.
///
/// # Errors
/// The *primary* file's typed [`CheckpointError`] when neither
/// generation probes (missing/unreadable file, bad magic or version,
/// truncation, a corrupt meta section, or a missing meta section) — the
/// same taxonomy as the full loader, so a watcher can log a torn
/// in-progress write distinctly from real damage.
pub fn probe_state_generation(path: impl AsRef<Path>) -> Result<StateGeneration, CheckpointError> {
    let path = path.as_ref();
    match probe_one_generation(path) {
        Ok(gen) => Ok(gen),
        Err(primary) => match probe_one_generation(&prev_path(path)) {
            Ok(gen) => Ok(gen),
            Err(_) => Err(primary),
        },
    }
}

fn probe_one_generation(path: &Path) -> Result<StateGeneration, CheckpointError> {
    let mut f = File::open(path)?;
    let file_len = f.metadata()?.len();
    let mut head = [0u8; 12];
    read_exact_probe(&mut f, &mut head, "header")?;
    if &head[..4] != STATE_MAGIC {
        return Err(CheckpointError::BadMagic {
            found: [head[0], head[1], head[2], head[3]],
        });
    }
    let version = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if version > STATE_VERSION {
        return Err(CheckpointError::BadVersion { found: version });
    }
    let n_sections = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
    for _ in 0..n_sections {
        let mut sh = [0u8; 16];
        read_exact_probe(&mut f, &mut sh, "section header")?;
        let id = u32::from_le_bytes([sh[0], sh[1], sh[2], sh[3]]);
        let len = u64::from_le_bytes([sh[4], sh[5], sh[6], sh[7], sh[8], sh[9], sh[10], sh[11]]);
        let stored_crc = u32::from_le_bytes([sh[12], sh[13], sh[14], sh[15]]);
        if id == SEC_META {
            if len != 48 {
                return Err(CheckpointError::Malformed {
                    section: SEC_META,
                    what: format!("meta section is {len} bytes, expected 48"),
                });
            }
            let mut body = [0u8; 48];
            read_exact_probe(&mut f, &mut body, "meta body")?;
            if crc32(&body) != stored_crc {
                return Err(CheckpointError::CrcMismatch { section: SEC_META });
            }
            let step = u64::from_le_bytes([
                body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
            ]);
            let syncs = u64::from_le_bytes([
                body[8], body[9], body[10], body[11], body[12], body[13], body[14], body[15],
            ]);
            return Ok(StateGeneration {
                step,
                syncs,
                file_len,
            });
        }
        let skip = i64::try_from(len).map_err(|_| CheckpointError::Malformed {
            section: id,
            what: format!("section length {len} overflows a seek"),
        })?;
        f.seek(SeekFrom::Current(skip))?;
    }
    Err(CheckpointError::MissingSection { section: SEC_META })
}

// ---------------------------------------------------------------------
// Results + v1 params (kept for --save-params / warm-start compat)
// ---------------------------------------------------------------------

/// Write a [`RunResult`] as pretty JSON.
pub fn save_result(path: impl AsRef<Path>, result: &RunResult) -> io::Result<()> {
    let file = File::create(path)?;
    serde_json::to_writer_pretty(BufWriter::new(file), result)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Read a [`RunResult`] back from JSON.
pub fn load_result(path: impl AsRef<Path>) -> io::Result<RunResult> {
    let file = File::open(path)?;
    serde_json::from_reader(BufReader::new(file))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Write a flat parameter vector in the v1 binary checkpoint format.
/// The body is assembled into one buffer and written with a single
/// `write_all` (one syscall through the writer instead of one per
/// element).
pub fn save_params(path: impl AsRef<Path>, params: &[f32]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    let mut body = Vec::with_capacity(params.len() * 4);
    for &v in params {
        body.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&body)?;
    w.flush()
}

/// Read a flat parameter vector from the v1 binary checkpoint format.
///
/// # Errors
/// Fails with `InvalidData` on a bad magic, truncated body, or length
/// mismatch.
pub fn load_params(path: impl AsRef<Path>) -> io::Result<Vec<f32>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a SSYN checkpoint",
        ));
    }
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)?;
    let len = u64::from_le_bytes(len_bytes) as usize;
    let mut body = Vec::new();
    r.read_to_end(&mut body)?;
    if body.len() != len * 4 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected {} parameter bytes, found {}", len * 4, body.len()),
        ));
    }
    Ok(body
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RunConfig, Strategy};
    use crate::trainer::run_distributed;
    use crate::workload::Workload;
    use proptest::prelude::*;
    use selsync_nn::models::ModelKind;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("selsync_ckpt_{}_{name}", std::process::id()));
        p
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn sample_state(tag: u64) -> TrainState {
        let mut delta = RelativeGradChange::new(5, 0.3);
        delta.update(1.0 + tag as f32);
        delta.update(2.5);
        TrainState {
            step: 7 + tag,
            syncs: 4,
            rounds: 7 + tag,
            seed: 42,
            cursor_consumed: 13,
            optim_t: 3,
            params: (0..257)
                .map(|i| ((i as f32) * 0.31 + tag as f32).sin())
                .collect(),
            alive: vec![true, false, true],
            done: vec![false, false, true],
            evictions: vec![(3, 1)],
            joins: vec![(5, 1), (6, 2)],
            optim_slots: vec![vec![0.5, -0.25], vec![], vec![1.0; 7]],
            delta_state: Some(delta),
        }
    }

    fn assert_states_equal(a: &TrainState, b: &TrainState) {
        assert_eq!(a.step, b.step);
        assert_eq!(a.syncs, b.syncs);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.cursor_consumed, b.cursor_consumed);
        assert_eq!(a.optim_t, b.optim_t);
        assert_eq!(bits(&a.params), bits(&b.params));
        assert_eq!(a.alive, b.alive);
        assert_eq!(a.done, b.done);
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.joins, b.joins);
        assert_eq!(a.optim_slots.len(), b.optim_slots.len());
        for (x, y) in a.optim_slots.iter().zip(&b.optim_slots) {
            assert_eq!(bits(x), bits(y));
        }
        assert_eq!(
            serde_json::to_string(&a.delta_state).unwrap(),
            serde_json::to_string(&b.delta_state).unwrap()
        );
    }

    #[test]
    fn state_roundtrips_bitwise() {
        let state = sample_state(0);
        let back = decode_state(&encode_state(&state)).unwrap();
        assert_states_equal(&state, &back);
    }

    #[test]
    fn state_without_delta_roundtrips() {
        let mut state = sample_state(1);
        state.delta_state = None;
        let back = decode_state(&encode_state(&state)).unwrap();
        assert!(back.delta_state.is_none());
        assert_states_equal(&state, &back);
    }

    #[test]
    fn save_load_state_via_file() {
        let path = tmp("v2.ckpt");
        let state = sample_state(2);
        save_state(&path, &state).unwrap();
        let back = load_state(&path).unwrap();
        assert_states_equal(&state, &back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let state = sample_state(3);
        let mut bytes = encode_state(&state);
        bytes[0] = b'X';
        assert!(matches!(
            decode_state(&bytes),
            Err(CheckpointError::BadMagic { .. })
        ));
        let mut bytes = encode_state(&state);
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_state(&bytes),
            Err(CheckpointError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        // cut the container at *every* byte offset; no prefix may parse
        // into a state (the full file must, obviously)
        let bytes = encode_state(&sample_state(4));
        for cut in 0..bytes.len() {
            let err = decode_state(&bytes[..cut]);
            assert!(
                err.is_err(),
                "prefix of {cut}/{} bytes must not parse",
                bytes.len()
            );
        }
        assert!(decode_state(&bytes).is_ok());
    }

    #[test]
    fn save_retains_previous_generation_and_fallback_loads_it() {
        let path = tmp("gen.ckpt");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();

        let gen1 = sample_state(10);
        let gen2 = sample_state(20);
        save_state(&path, &gen1).unwrap();
        save_state(&path, &gen2).unwrap();

        // both generations on disk, current wins
        let (cur, fell_back) = load_state_with_fallback(&path).unwrap();
        assert!(!fell_back);
        assert_eq!(cur.step, gen2.step);

        // corrupt the current file -> fallback to gen1, flagged
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (prev, fell_back) = load_state_with_fallback(&path).unwrap();
        assert!(fell_back);
        assert_eq!(prev.step, gen1.step);

        // remove the current file entirely -> still the previous gen
        std::fs::remove_file(&path).unwrap();
        let (prev, fell_back) = load_state_with_fallback(&path).unwrap();
        assert!(fell_back);
        assert_eq!(prev.step, gen1.step);

        // neither generation -> the primary error surfaces
        std::fs::remove_file(prev_path(&path)).unwrap();
        assert!(load_state_with_fallback(&path).is_err());
    }

    #[test]
    fn torn_write_sweep_always_leaves_a_loadable_checkpoint() {
        // Simulate the writer being killed at every byte offset of the
        // gen-2 image, in the worst ordering imaginable: the partial
        // image already renamed over `path` (stronger than the real
        // save, whose rename is atomic). The durable gen-1 must load
        // through the fallback for every torn prefix.
        let gen1 = sample_state(100);
        let gen2 = sample_state(200);
        let image = encode_state(&gen2);
        let path = tmp("torn.ckpt");
        for cut in 0..=image.len() {
            std::fs::write(prev_path(&path), encode_state(&gen1)).unwrap();
            std::fs::write(&path, &image[..cut]).unwrap();
            let (state, fell_back) =
                load_state_with_fallback(&path).unwrap_or_else(|e| panic!("offset {cut}: {e}"));
            if cut == image.len() {
                assert!(!fell_back);
                assert_eq!(state.step, gen2.step);
            } else {
                assert!(fell_back, "torn prefix of {cut} bytes must fall back");
                assert_eq!(state.step, gen1.step);
                assert_eq!(bits(&state.params), bits(&gen1.params));
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();
    }

    proptest! {
        #[test]
        fn prop_state_roundtrips(
            step in 0u64..1000,
            seed in 0u64..=u64::MAX,
            params in proptest::collection::vec(0u32..=u32::MAX, 0..64),
            n_workers in 0usize..8,
            slots in proptest::collection::vec(
                proptest::collection::vec(0u32..=u32::MAX, 0..16), 0..4),
        ) {
            let state = TrainState {
                step,
                syncs: step / 2,
                rounds: step,
                seed,
                cursor_consumed: step % 7,
                optim_t: step % 5,
                params: params.iter().map(|b| f32::from_bits(*b)).collect(),
                alive: (0..n_workers).map(|i| i % 2 == 0).collect(),
                done: (0..n_workers).map(|i| i % 3 == 0).collect(),
                evictions: vec![(step, 1)],
                joins: Vec::new(),
                optim_slots: slots
                    .iter()
                    .map(|s| s.iter().map(|b| f32::from_bits(*b)).collect())
                    .collect(),
                delta_state: None,
            };
            let back = decode_state(&encode_state(&state)).unwrap();
            prop_assert_eq!(bits(&state.params), bits(&back.params));
            prop_assert_eq!(state.step, back.step);
            prop_assert_eq!(state.alive, back.alive);
            prop_assert_eq!(state.done, back.done);
            prop_assert_eq!(state.optim_slots.len(), back.optim_slots.len());
            for (x, y) in state.optim_slots.iter().zip(&back.optim_slots) {
                prop_assert_eq!(bits(x), bits(y));
            }
        }

        #[test]
        fn prop_bit_flips_never_parse_silently(
            flip_at in 0usize..2048,
            flip_mask in 1u16..256,
        ) {
            // flipping any byte anywhere in the container must yield a
            // typed error — or, if it lands in dead space (there is
            // none, but keep the property honest), an identical state
            let state = sample_state(9);
            let mut bytes = encode_state(&state);
            let at = flip_at % bytes.len();
            bytes[at] ^= flip_mask as u8;
            match decode_state(&bytes) {
                Err(_) => {}
                Ok(back) => {
                    // a flip that still parses must not have silently
                    // changed the trained parameters
                    prop_assert_eq!(bits(&state.params), bits(&back.params));
                }
            }
        }

        #[test]
        fn prop_truncations_never_parse(cut_frac in 0.0f64..1.0) {
            let bytes = encode_state(&sample_state(11));
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(decode_state(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn probe_reports_generation_and_tracks_rewrites() {
        let path = tmp("probe.ckpt");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();
        assert!(matches!(
            probe_state_generation(&path),
            Err(CheckpointError::Io(_))
        ));

        let gen1 = sample_state(30);
        save_state(&path, &gen1).unwrap();
        let g1 = probe_state_generation(&path).unwrap();
        assert_eq!(g1.step, gen1.step);
        assert_eq!(g1.syncs, gen1.syncs);
        assert_eq!(g1.file_len, encode_state(&gen1).len() as u64);

        // same state re-saved probes equal; a new generation differs
        save_state(&path, &gen1).unwrap();
        assert_eq!(probe_state_generation(&path).unwrap(), g1);
        let gen2 = sample_state(31);
        save_state(&path, &gen2).unwrap();
        let g2 = probe_state_generation(&path).unwrap();
        assert_ne!(g2, g1);
        assert_eq!(g2.step, gen2.step);

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();
    }

    #[test]
    fn probe_rejects_damage_with_typed_errors() {
        let path = tmp("probe_bad.ckpt");
        let state = sample_state(32);
        let image = encode_state(&state);

        std::fs::write(&path, b"XXXX").unwrap();
        assert!(matches!(
            probe_state_generation(&path),
            Err(CheckpointError::Truncated { .. })
        ));

        let mut bad = image.clone();
        bad[0] = b'Z';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            probe_state_generation(&path),
            Err(CheckpointError::BadMagic { .. })
        ));

        // flip a byte inside the meta body: CRC catches it
        let mut bad = image.clone();
        bad[12 + 16] ^= 0xFF; // first byte of the meta section body
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            probe_state_generation(&path),
            Err(CheckpointError::CrcMismatch { section: 1 })
        ));

        // cut inside the meta body: truncation, not a parse
        std::fs::write(&path, &image[..12 + 16 + 20]).unwrap();
        assert!(matches!(
            probe_state_generation(&path),
            Err(CheckpointError::Truncated { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn probe_falls_back_to_prev_on_torn_header() {
        let path = tmp("probe_torn.ckpt");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();
        let gen1 = sample_state(33);
        let gen2 = sample_state(34);
        save_state(&path, &gen1).unwrap();
        save_state(&path, &gen2).unwrap(); // .prev now holds gen1

        // tear the current file mid-header, as a crash during a rewrite
        // would: the probe must surface the durable .prev generation
        let image = encode_state(&gen2);
        std::fs::write(&path, &image[..7]).unwrap();
        let g = probe_state_generation(&path).unwrap();
        assert_eq!(g.step, gen1.step, "fallback reports the .prev state");
        assert_eq!(g.syncs, gen1.syncs);

        // a meta-CRC failure in the current file falls back the same way
        let mut bad = image.clone();
        bad[12 + 16] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(probe_state_generation(&path).unwrap().step, gen1.step);

        // both generations damaged: the *primary* error is reported
        std::fs::write(prev_path(&path), b"XX").unwrap();
        assert!(matches!(
            probe_state_generation(&path),
            Err(CheckpointError::CrcMismatch { section: 1 })
        ));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();
    }

    #[test]
    fn params_roundtrip_bitwise() {
        let path = tmp("params.bin");
        let params: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin()).collect();
        save_params(&path, &params).unwrap();
        let back = load_params(&path).unwrap();
        assert_eq!(params, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("bad.bin");
        std::fs::write(&path, b"NOPE12345678").unwrap();
        assert!(load_params(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_body_is_rejected() {
        let path = tmp("trunc.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&10u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]); // 3 floats instead of 10
        std::fs::write(&path, bytes).unwrap();
        assert!(load_params(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn result_roundtrip_preserves_run() {
        let wl = Workload::vision(ModelKind::VggMini, 64, 16, 3);
        let cfg = RunConfig {
            strategy: Strategy::LocalOnly,
            n_workers: 2,
            max_steps: 4,
            eval_every: 4,
            ..RunConfig::quick_defaults()
        };
        let r = run_distributed(&cfg, &wl);
        let path = tmp("result.json");
        save_result(&path, &r).unwrap();
        let back = load_result(&path).unwrap();
        assert_eq!(back.steps_run, r.steps_run);
        assert_eq!(back.final_params, r.final_params);
        assert_eq!(back.lssr, r.lssr);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warm_start_resumes_from_checkpoint() {
        let wl = Workload::vision(ModelKind::ResNetMini, 128, 40, 4);
        let cfg = RunConfig {
            strategy: Strategy::Bsp {
                aggregation: crate::config::Aggregation::Parameter,
            },
            n_workers: 2,
            max_steps: 12,
            eval_every: 12,
            ..RunConfig::quick_defaults()
        };
        let first = run_distributed(&cfg, &wl);
        let path = tmp("warm.bin");
        save_params(&path, &first.final_params).unwrap();

        // resume: a warm-started workload must begin where we stopped
        let mut warm = wl.clone();
        warm.init_params = Some(load_params(&path).unwrap());
        let resumed = run_distributed(&cfg, &warm);
        // the second leg of training continues improving (or at least
        // does not regress catastrophically from the checkpoint)
        assert!(
            resumed.final_metric >= first.final_metric - 0.1,
            "resumed {} vs first {}",
            resumed.final_metric,
            first.final_metric
        );
        std::fs::remove_file(&path).ok();
    }
}
