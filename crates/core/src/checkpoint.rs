//! Checkpointing: persist run results and model parameters, and resume
//! training from a saved state (warm start).
//!
//! Results serialize as JSON (human-inspectable, matches the harnesses'
//! JSON rows); parameter vectors use a compact little-endian binary
//! format (`SSYN` magic, u64 length, raw f32s) since they dominate the
//! checkpoint size.

use crate::metrics::RunResult;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SSYN";

/// Write a [`RunResult`] as pretty JSON.
pub fn save_result(path: impl AsRef<Path>, result: &RunResult) -> io::Result<()> {
    let file = File::create(path)?;
    serde_json::to_writer_pretty(BufWriter::new(file), result)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Read a [`RunResult`] back from JSON.
pub fn load_result(path: impl AsRef<Path>) -> io::Result<RunResult> {
    let file = File::open(path)?;
    serde_json::from_reader(BufReader::new(file))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Write a flat parameter vector in the binary checkpoint format.
pub fn save_params(path: impl AsRef<Path>, params: &[f32]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for &v in params {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read a flat parameter vector from the binary checkpoint format.
///
/// # Errors
/// Fails with `InvalidData` on a bad magic, truncated body, or length
/// mismatch.
pub fn load_params(path: impl AsRef<Path>) -> io::Result<Vec<f32>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a SSYN checkpoint",
        ));
    }
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)?;
    let len = u64::from_le_bytes(len_bytes) as usize;
    let mut body = Vec::new();
    r.read_to_end(&mut body)?;
    if body.len() != len * 4 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected {} parameter bytes, found {}", len * 4, body.len()),
        ));
    }
    Ok(body
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RunConfig, Strategy};
    use crate::trainer::run_distributed;
    use crate::workload::Workload;
    use selsync_nn::models::ModelKind;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("selsync_ckpt_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn params_roundtrip_bitwise() {
        let path = tmp("params.bin");
        let params: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin()).collect();
        save_params(&path, &params).unwrap();
        let back = load_params(&path).unwrap();
        assert_eq!(params, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("bad.bin");
        std::fs::write(&path, b"NOPE12345678").unwrap();
        assert!(load_params(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_body_is_rejected() {
        let path = tmp("trunc.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&10u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]); // 3 floats instead of 10
        std::fs::write(&path, bytes).unwrap();
        assert!(load_params(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn result_roundtrip_preserves_run() {
        let wl = Workload::vision(ModelKind::VggMini, 64, 16, 3);
        let cfg = RunConfig {
            strategy: Strategy::LocalOnly,
            n_workers: 2,
            max_steps: 4,
            eval_every: 4,
            ..RunConfig::quick_defaults()
        };
        let r = run_distributed(&cfg, &wl);
        let path = tmp("result.json");
        save_result(&path, &r).unwrap();
        let back = load_result(&path).unwrap();
        assert_eq!(back.steps_run, r.steps_run);
        assert_eq!(back.final_params, r.final_params);
        assert_eq!(back.lssr, r.lssr);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warm_start_resumes_from_checkpoint() {
        let wl = Workload::vision(ModelKind::ResNetMini, 128, 40, 4);
        let cfg = RunConfig {
            strategy: Strategy::Bsp {
                aggregation: crate::config::Aggregation::Parameter,
            },
            n_workers: 2,
            max_steps: 12,
            eval_every: 12,
            ..RunConfig::quick_defaults()
        };
        let first = run_distributed(&cfg, &wl);
        let path = tmp("warm.bin");
        save_params(&path, &first.final_params).unwrap();

        // resume: a warm-started workload must begin where we stopped
        let mut warm = wl.clone();
        warm.init_params = Some(load_params(&path).unwrap());
        let resumed = run_distributed(&cfg, &warm);
        // the second leg of training continues improving (or at least
        // does not regress catastrophically from the checkpoint)
        assert!(
            resumed.final_metric >= first.final_metric - 0.1,
            "resumed {} vs first {}",
            resumed.final_metric,
            first.final_metric
        );
        std::fs::remove_file(&path).ok();
    }
}
