//! The distributed trainer: N worker threads + one parameter-server
//! thread over the `selsync-comm` fabric, running any [`Strategy`].
//!
//! This is a faithful executable of Alg. 1 (for SelSync) and of the
//! baselines' protocols. Every synchronization decision, flags
//! allgather, PS round and injection transfer is a *real* message
//! exchange between *real* threads; only the wall-clock claims are later
//! derived by `crate::timing` from the decision log.

use crate::config::{Aggregation, CompressionKind, OptimKind, RunConfig, Strategy, SyncBackend};
use crate::metrics::{EvalRecord, RunResult, StepRecord};
use crate::workload::{AnyModel, Workload, WorkloadData, SEQ_LEN};
use selsync_comm::bucket::{n_buckets, send_bucket_range};
use selsync_comm::collectives::{allgather_flags, phase_tag, ring_allreduce};
use selsync_comm::fabric::{Fabric, Payload};
use selsync_comm::ps::{
    recv_round_reply, run_round_server, run_ssp_server, send_shutdown, ssp_step, sync_round,
    SyncRequest,
};
use selsync_comm::{Transport, TransportError};
use selsync_data::{
    noniid_label_partition, partition_indices, BatchCursor, InjectionConfig, TextBatchCursor,
};
use selsync_nn::flat::{
    flat_grads, flat_grads_into, flat_params, flat_params_into, set_flat_grads, set_flat_params,
};
use selsync_nn::loss::{accuracy, softmax_cross_entropy, topk_accuracy};
use selsync_nn::models::ModelKind;
use selsync_nn::module::ParamVisitor;
use selsync_nn::{Adam, Batch, Input, Optimizer, Sgd};
use selsync_stats::{LssrCounter, RelativeGradChange};
use selsync_tensor::reduce::sqnorm_slice;
use selsync_tensor::Tensor;
use std::sync::Arc;
use std::thread;

/// Worker-to-worker tag phase used by data-injection sample broadcasts
/// (collectives reserve the low phases).
const INJECT_PHASE: u64 = 250;

/// Tag of the initial pullFromPS round (Alg. 1 line 3).
const INIT_TAG: u64 = u64::MAX;

/// Run one distributed training experiment. Blocks until every worker
/// and the server finish; panics if any thread panicked.
pub fn run_distributed(config: &RunConfig, workload: &Workload) -> RunResult {
    validate(config, workload);
    let n = config.n_workers;
    let mut endpoints = Fabric::new(n + 1);
    // lint:allow(unwrap-in-prod): Fabric::new(n + 1) always returns n + 1
    // endpoints, so the pop cannot come up empty
    let server_ep = endpoints.pop().expect("server endpoint");
    let stats = Arc::clone(server_ep.stats());

    let workload = Arc::new(workload.clone());
    let config = Arc::new(config.clone());

    // the decentralized backend has no server thread; the endpoint is
    // simply parked (workers never address it)
    let server_handle = match config.backend {
        SyncBackend::RingAllReduce => None,
        SyncBackend::ParameterServer => {
            let wl = Arc::clone(&workload);
            let cfg = Arc::clone(&config);
            Some(
                thread::Builder::new()
                    .name("selsync-ps".into())
                    // in-process fabric: a comm fault here means a worker
                    // thread panicked, which join() below reports anyway
                    .spawn(move || {
                        // lint:allow(unwrap-in-prod): in-process harness —
                        // run_distributed documents that it panics on faults
                        run_server_rank(server_ep, &cfg, &wl).expect("parameter server comm fault")
                    })
                    // lint:allow(unwrap-in-prod): thread spawn fails only on
                    // OS resource exhaustion; no recovery path in the harness
                    .expect("spawn PS"),
            )
        }
    };

    let mut handles = Vec::with_capacity(n);
    for ep in endpoints {
        let wl = Arc::clone(&workload);
        let cfg = Arc::clone(&config);
        let worker = ep.id();
        handles.push(
            thread::Builder::new()
                .name(format!("selsync-w{worker}"))
                // lint:allow(unwrap-in-prod): in-process harness —
                // run_distributed documents that it panics on faults
                .spawn(move || run_worker_rank(ep, &cfg, &wl).expect("worker comm fault"))
                // lint:allow(unwrap-in-prod): thread spawn fails only on
                // OS resource exhaustion; no recovery path in the harness
                .expect("spawn worker"),
        );
    }

    let mut outputs: Vec<WorkerOutput> = handles
        .into_iter()
        // lint:allow(unwrap-in-prod): propagating a worker panic is this
        // harness's documented failure mode
        .map(|h| h.join().expect("worker thread panicked"))
        .collect();
    outputs.sort_by_key(|o| o.worker);
    let final_params = match server_handle {
        // lint:allow(unwrap-in-prod): propagating a server panic is this
        // harness's documented failure mode
        Some(h) => h.join().expect("server thread panicked"),
        // decentralized: the "global" state is the replica average
        None => {
            let d = outputs[0].final_params.len();
            let mut avg = vec![0.0f32; d];
            for o in &outputs {
                for (a, v) in avg.iter_mut().zip(&o.final_params) {
                    *a += v;
                }
            }
            for a in &mut avg {
                *a /= outputs.len() as f32;
            }
            avg
        }
    };

    let w0 = outputs.remove(0);
    let mut worker_params = vec![w0.final_params.clone()];
    worker_params.extend(outputs.into_iter().map(|o| o.final_params));

    RunResult {
        final_metric: w0.evals.last().map_or(0.0, |e| e.metric),
        step_records: w0.records,
        evals: w0.evals,
        lssr: w0.lssr,
        final_params,
        worker_params,
        comm_bytes: stats.total_bytes(),
        logical_sync_bytes: w0.logical_sync_bytes,
        steps_run: config.max_steps,
    }
}

fn validate(config: &RunConfig, workload: &Workload) {
    assert!(config.n_workers >= 1, "need at least one worker");
    assert!(config.max_steps >= 1, "need at least one step");
    if config.noniid_labels.is_some() {
        assert!(
            !matches!(workload.data, WorkloadData::Text { .. }),
            "non-IID splits are defined for the vision workloads (§IV-A)"
        );
    }
    if let Strategy::FedAvg { c, e } = config.strategy {
        assert!(c > 0.0 && c <= 1.0, "FedAvg C in (0, 1]");
        assert!(e > 0.0 && e <= 1.0, "FedAvg E in (0, 1]");
    }
    if config.backend == SyncBackend::RingAllReduce {
        assert!(
            !matches!(config.strategy, Strategy::FedAvg { .. } | Strategy::Ssp { .. }),
            "FedAvg participation and SSP staleness are PS services; use SyncBackend::ParameterServer"
        );
    }
    if config.compression.is_some() {
        let grads_agg = match config.strategy {
            Strategy::Bsp { aggregation } | Strategy::SelSync { aggregation, .. } => {
                aggregation == Aggregation::Gradient
            }
            _ => false,
        };
        assert!(
            grads_agg,
            "compression applies to gradient-aggregation syncs only"
        );
    }
    if let Some(bucket) = config.overlap_buckets {
        assert!(bucket > 0, "overlap bucket size must be positive");
        assert!(
            matches!(
                config.strategy,
                Strategy::Bsp {
                    aggregation: Aggregation::Gradient
                }
            ),
            "overlap_buckets pipelines the BSP gradient push; SelSync's \
             sync decision needs the full gradient norm after backward"
        );
        assert_eq!(
            config.backend,
            SyncBackend::ParameterServer,
            "overlap_buckets streams buckets to the PS; the ring is a barrier"
        );
        assert!(
            config.grad_clip.is_none() && config.compression.is_none(),
            "grad clipping and compression are whole-vector transforms; \
             they cannot run while buckets are already on the wire"
        );
    }
    if config.wire_compression {
        assert!(
            config.compression.is_some(),
            "wire_compression ships the configured compression's wire form; \
             set `compression` too"
        );
        assert_eq!(
            config.backend,
            SyncBackend::ParameterServer,
            "compact wire payloads are densified by the PS; the ring \
             reduces dense vectors"
        );
    }
}

/// Per-worker epoch index orders.
fn build_partitions(config: &RunConfig, workload: &Workload) -> Vec<Vec<usize>> {
    let n = config.n_workers;
    let units = workload.num_train_units();
    if let Some(labels_per_worker) = config.noniid_labels {
        if let WorkloadData::Vision { train, .. } = &workload.data {
            return noniid_label_partition(
                &train.labels,
                train.num_classes,
                n,
                labels_per_worker,
                config.seed,
            );
        }
        // lint:allow(unwrap-in-prod): validate() already rejected non-Vision
        // workloads combined with noniid_labels before training starts
        unreachable!("validated above");
    }
    (0..n)
        .map(|w| partition_indices(units, n, w, config.partition))
        .collect()
}

/// What one worker rank produces; [`run_distributed`] merges these into
/// a [`RunResult`], multi-process launchers report them per rank.
pub struct WorkerOutput {
    /// Worker id (`ep.id()`).
    pub worker: usize,
    /// Flat replica parameters after the last step.
    pub final_params: Vec<f32>,
    /// Local/sync step counts.
    pub lssr: LssrCounter,
    /// Per-step decision log (worker 0 only; empty elsewhere).
    pub records: Vec<StepRecord>,
    /// Periodic held-out evaluations (worker 0 only; empty elsewhere).
    pub evals: Vec<EvalRecord>,
    /// Model bytes this worker contributed to syncs (post-compression).
    pub logical_sync_bytes: u64,
}

/// Run the parameter-server role for one experiment over any
/// [`Transport`] — in-process endpoint or a real socket fabric. The
/// server's rank must be `config.n_workers` (the fabric convention).
/// Returns the final global parameters.
///
/// Initial parameters are derived deterministically from the workload's
/// seeded model build, so separately-launched processes agree on the
/// starting state without a broadcast.
///
/// # Errors
/// Propagates [`TransportError`] on comm faults — a dead worker mid-round
/// surfaces here instead of hanging the server.
pub fn run_server_rank<T: Transport>(
    ep: T,
    config: &RunConfig,
    workload: &Workload,
) -> Result<Vec<f32>, TransportError> {
    validate(config, workload);
    assert_eq!(
        ep.id(),
        config.n_workers,
        "the PS listens on rank n_workers"
    );
    assert_eq!(
        config.backend,
        SyncBackend::ParameterServer,
        "the decentralized backend has no server rank"
    );
    let init = flat_params(workload.build_model().as_visitor());
    match config.strategy {
        Strategy::Ssp { staleness } => run_ssp_server(ep, config.n_workers, init, staleness),
        _ => run_round_server(ep, config.n_workers, init),
    }
}

/// Run one worker rank (`ep.id()` in `0..config.n_workers`) over any
/// [`Transport`]. The worker's data partition is recomputed
/// deterministically from the config and workload, so separately
/// launched processes slice the dataset exactly as the in-process
/// trainer does.
///
/// # Errors
/// Propagates [`TransportError`] on comm faults (dead peer, closed
/// fabric) so multi-process launchers can exit with a diagnostic
/// instead of hanging.
pub fn run_worker_rank<T: Transport>(
    mut ep: T,
    config: &RunConfig,
    workload: &Workload,
) -> Result<WorkerOutput, TransportError> {
    validate(config, workload);
    let worker = ep.id();
    assert!(worker < config.n_workers, "worker rank out of range");
    let partition = build_partitions(config, workload)
        .into_iter()
        .nth(worker)
        // lint:allow(unwrap-in-prod): build_partitions returns exactly
        // n_workers entries and the rank was range-asserted above
        .expect("partition for rank");
    worker_main(worker, &mut ep, config, workload, partition)
}

pub(crate) enum AnyOptimizer {
    Sgd(Sgd),
    Adam(Adam),
}

impl AnyOptimizer {
    pub(crate) fn new(kind: OptimKind, lr: f32) -> Self {
        match kind {
            OptimKind::Sgd {
                momentum,
                weight_decay,
            } => AnyOptimizer::Sgd(Sgd::with_momentum(lr, momentum, weight_decay)),
            OptimKind::Adam => AnyOptimizer::Adam(Adam::new(lr)),
        }
    }
    pub(crate) fn step(&mut self, m: &mut dyn ParamVisitor) {
        match self {
            AnyOptimizer::Sgd(o) => o.step(m),
            AnyOptimizer::Adam(o) => o.step(m),
        }
    }
    pub(crate) fn set_lr(&mut self, lr: f32) {
        match self {
            AnyOptimizer::Sgd(o) => o.set_lr(lr),
            AnyOptimizer::Adam(o) => o.set_lr(lr),
        }
    }
    /// Snapshot `(step_counter, slot_buffers)` for a checkpoint: SGD has
    /// no counter and one velocity slot per param; Adam exports its bias
    /// correction `t` and `m ++ v`.
    pub(crate) fn export_state(&self) -> (u64, Vec<Vec<f32>>) {
        match self {
            AnyOptimizer::Sgd(o) => (0, o.export_slots()),
            AnyOptimizer::Adam(o) => (o.t(), o.export_slots()),
        }
    }
    /// Restore state captured by [`AnyOptimizer::export_state`].
    pub(crate) fn import_state(&mut self, t: u64, slots: Vec<Vec<f32>>) {
        match self {
            AnyOptimizer::Sgd(o) => o.import_slots(slots),
            AnyOptimizer::Adam(o) => o.import_slots(t, slots),
        }
    }
}

pub(crate) enum AnyCursor {
    Vision(BatchCursor),
    Text(TextBatchCursor),
}

impl AnyCursor {
    pub(crate) fn next_batch(&mut self, data: &WorkloadData) -> Batch {
        match (self, data) {
            (AnyCursor::Vision(c), WorkloadData::Vision { train, .. }) => c.next_batch(train),
            (AnyCursor::Text(c), WorkloadData::Text { train, .. }) => c.next_batch(train),
            // lint:allow(unwrap-in-prod): the cursor is constructed from the
            // same WorkloadData variant it is later stepped with
            _ => unreachable!("cursor/data kind mismatch"),
        }
    }
    pub(crate) fn steps_per_epoch(&self) -> usize {
        match self {
            AnyCursor::Vision(c) => c.batches_per_epoch(),
            AnyCursor::Text(c) => c.batches_per_epoch(),
        }
    }
    pub(crate) fn epoch_progress(&self) -> f64 {
        match self {
            AnyCursor::Vision(c) => c.epoch_progress(),
            AnyCursor::Text(c) => c.epoch_progress(),
        }
    }
}

/// Per-worker synchronization context: transport, compression state,
/// and logical-byte accounting.
struct SyncCtx {
    server: usize,
    n_workers: usize,
    backend: SyncBackend,
    compression: Option<CompressionKind>,
    /// Ship the compact wire form ([`Payload::SparseGrad`] etc.) instead
    /// of the densified reconstruction (DESIGN.md §12).
    wire_compression: bool,
    /// DGC-style error-feedback residual for lossy compression.
    residual: Vec<f32>,
    /// Model bytes this worker contributed to syncs (post-compression).
    logical_bytes: u64,
}

impl SyncCtx {
    /// Compress `grads` in place with error feedback; returns the wire
    /// bytes the compressed representation would occupy, plus the
    /// compact wire payload itself when `wire_compression` is on (the
    /// PS densifies it at arrival to exactly the same values as the
    /// in-place reconstruction for Top-k and sign; PowerSGD's padded
    /// reconstruction may reassociate float ops).
    fn compress_with_ef(&mut self, grads: &mut Vec<f32>) -> (u64, Option<Payload>) {
        let Some(kind) = self.compression else {
            return (4 * grads.len() as u64, None);
        };
        if self.residual.len() != grads.len() {
            self.residual = vec![0.0; grads.len()];
        }
        // error feedback: compensate with what previous syncs dropped
        for (g, r) in grads.iter_mut().zip(&self.residual) {
            *g += r;
        }
        let (lossy, bytes, wire) = match kind {
            CompressionKind::TopK { ratio } => {
                let k = ((grads.len() as f32 * ratio) as usize).max(1);
                let sparse = crate::compression::topk_compress(grads, k);
                let wire = self.wire_compression.then(|| Payload::SparseGrad {
                    len: sparse.len as u32,
                    indices: sparse.indices.clone(),
                    values: sparse.values.clone(),
                });
                (sparse.to_dense(), sparse.wire_bytes(), wire)
            }
            CompressionKind::SignSgd => {
                let sg = crate::compression::sign_compress(grads);
                let wire = self.wire_compression.then(|| Payload::SignGrad {
                    len: sg.len as u32,
                    scale: sg.scale,
                    bits: sg.bits.clone(),
                });
                (
                    crate::compression::sign_decompress(&sg),
                    sg.wire_bytes(),
                    wire,
                )
            }
            CompressionKind::PowerSgd { rank } => {
                // pad to a near-square matrix so the factorization is
                // meaningful regardless of the parameter count's divisors
                let n = grads.len();
                let rows = (n as f64).sqrt().ceil() as usize;
                let cols = n.div_ceil(rows);
                let mut padded = grads.clone();
                padded.resize(rows * cols, 0.0);
                let (pm, qm) = crate::compression::powersgd_factorize(&padded, rows, rank, 1, 0);
                // the factorization clamps the rank to the matrix shape
                let eff_rank = pm.shape().dim(1);
                let wire = self.wire_compression.then(|| Payload::LowRank {
                    rows: rows as u32,
                    cols: cols as u32,
                    rank: eff_rank as u32,
                    p: pm.as_slice().to_vec(),
                    q: qm.as_slice().to_vec(),
                });
                let mut rec = crate::compression::powersgd_reconstruct(&pm, &qm);
                rec.truncate(n);
                (
                    rec,
                    crate::compression::powersgd_wire_bytes(rows, cols, eff_rank),
                    wire,
                )
            }
        };
        for ((r, g), l) in self.residual.iter_mut().zip(grads.iter()).zip(&lossy) {
            *r = g - l;
        }
        *grads = lossy;
        (bytes, wire)
    }
}

/// Squared L2 norm of all gradients without materializing the flat copy.
pub(crate) fn grad_sqnorm(m: &dyn ParamVisitor) -> f32 {
    let mut s = 0.0;
    m.visit_params(&mut |p| s += sqnorm_slice(p.grad.as_slice()));
    s
}

#[allow(clippy::too_many_lines)]
fn worker_main<T: Transport>(
    worker: usize,
    ep: &mut T,
    config: &RunConfig,
    workload: &Workload,
    partition: Vec<usize>,
) -> Result<WorkerOutput, TransportError> {
    let n = config.n_workers;
    let mut ctx = SyncCtx {
        server: n,
        n_workers: n,
        backend: config.backend,
        compression: config.compression,
        wire_compression: config.wire_compression,
        residual: Vec::new(),
        logical_bytes: 0,
    };
    let mut model = workload.build_model();
    let mut opt = AnyOptimizer::new(config.optim, config.lr.at(0));

    // data injection setup (§III-E): shrink the local batch to b′
    let injection = config.injection;
    let local_batch = match injection {
        Some(inj) => inj.adjusted_batch_size(config.batch_size, n),
        None => config.batch_size,
    };
    let mut cursor = match &workload.data {
        WorkloadData::Vision { .. } => AnyCursor::Vision(BatchCursor::new(partition, local_batch)),
        WorkloadData::Text { .. } => {
            AnyCursor::Text(TextBatchCursor::new(partition, SEQ_LEN, local_batch))
        }
    };

    // Alg. 1 line 3: pull the initial model state from the PS. With the
    // decentralized backend there is no server; replicas already share
    // the seeded init (the §III-C broadcast-equivalent).
    if ctx.backend == SyncBackend::ParameterServer {
        let init = sync_round(ep, ctx.server, INIT_TAG, SyncRequest::Pull)?;
        set_flat_params(model.as_model(), &init);
    }

    // FedAvg synchronizes x = 1/E times per epoch, uniformly spaced
    let fedavg_interval = match config.strategy {
        Strategy::FedAvg { e, .. } => ((cursor.steps_per_epoch() as f32 * e).round() as u64).max(1),
        _ => u64::MAX,
    };

    let mut relchange = RelativeGradChange::new(config.ewma_window, config.ewma_alpha);
    let mut lssr = LssrCounter::new();
    let mut records = Vec::new();
    let mut evals = Vec::new();
    // loop-persistent snapshot buffer for SSP (allocation-free after the
    // first sync; the outgoing delta itself is wire-bound and moves into
    // the message)
    let mut ssp_before: Vec<f32> = Vec::new();
    // loop-persistent flat-gradient scratch for the pipelined push
    let mut grad_scratch: Vec<f32> = Vec::new();

    for step in 0..config.max_steps {
        opt.set_lr(config.lr.at(step));
        // injected systems heterogeneity (§II-A): the straggler computes
        // more slowly than its peers
        if let Some((slow, delay_us)) = config.straggler {
            if slow == worker {
                thread::sleep(std::time::Duration::from_micros(delay_us));
            }
        }
        let mut batch = cursor.next_batch(&workload.data);

        // --- data injection: sharers broadcast a slice of their batch ---
        if let Some(inj) = injection {
            batch = exchange_injection(ep, n, step, inj, config.seed, batch)?;
        }

        // --- forward / backward on the (possibly augmented) batch ---
        let logits = model.as_model().forward(&batch.input, true);
        let (loss, dlogits) = softmax_cross_entropy(&logits, &batch.targets);
        model.as_model().zero_grad();
        let pipelined = match config.overlap_buckets {
            // pipelined BSP push (DESIGN.md §12): backward itself streams
            // ready gradient buckets to the PS as the readiness watermark
            // descends, overlapping comm with the rest of backprop
            Some(bucket_size) => {
                push_grad_buckets(
                    ep,
                    &mut ctx,
                    step,
                    &mut model,
                    &dlogits,
                    bucket_size,
                    &mut grad_scratch,
                )?;
                true
            }
            None => {
                model.as_model().backward(&dlogits);
                false
            }
        };
        if let Some(max_norm) = config.grad_clip {
            selsync_nn::flat::clip_grad_norm(model.as_model(), max_norm);
        }

        // --- strategy-specific update & communication ---
        let (synced, delta_g) = match config.strategy {
            Strategy::Bsp { aggregation } => {
                if pipelined {
                    // the buckets are already on the wire; collect the
                    // round average and apply it like the monolithic path
                    let avg = recv_round_reply(ep, ctx.server, step)?;
                    set_flat_grads(model.as_model(), &avg);
                    opt.step(model.as_model());
                } else {
                    apply_sync(ep, &mut ctx, step, &mut model, &mut opt, aggregation)?;
                }
                (true, f32::NAN)
            }
            Strategy::LocalOnly => {
                opt.step(model.as_model());
                (false, f32::NAN)
            }
            Strategy::SelSync { delta, aggregation } => {
                // Alg. 1 lines 8–15
                let dg = relchange.update(grad_sqnorm(model.as_visitor()));
                let my_bit = u8::from(dg >= delta);
                let flags = allgather_flags(ep, n, step, my_bit)?;
                if flags.contains(&1) {
                    apply_sync(ep, &mut ctx, step, &mut model, &mut opt, aggregation)?;
                    (true, dg)
                } else {
                    opt.step(model.as_model());
                    (false, dg)
                }
            }
            Strategy::FedAvg { c, .. } => {
                opt.step(model.as_model());
                if (step + 1).is_multiple_of(fedavg_interval) {
                    let round = (step + 1) / fedavg_interval;
                    let participants =
                        InjectionConfig::new(c, 1.0).select_sharers(n, config.seed ^ 0xFEDA, round);
                    let req = if participants.binary_search(&worker).is_ok() {
                        SyncRequest::PushParams(flat_params(model.as_visitor()))
                    } else {
                        SyncRequest::Pull
                    };
                    let avg = sync_round(ep, ctx.server, step, req)?;
                    ctx.logical_bytes += 4 * avg.len() as u64;
                    set_flat_params(model.as_model(), &avg);
                    (true, f32::NAN)
                } else {
                    (false, f32::NAN)
                }
            }
            Strategy::Ssp { .. } => {
                flat_params_into(model.as_visitor(), &mut ssp_before);
                opt.step(model.as_model());
                // delta = after − before, streamed straight off the
                // updated params without materializing `after`
                let mut delta = Vec::with_capacity(ssp_before.len());
                let mut off = 0;
                model.as_visitor().visit_params(&mut |p| {
                    let prev = &ssp_before[off..off + p.numel()];
                    delta.extend(p.value.as_slice().iter().zip(prev).map(|(a, b)| a - b));
                    off += p.numel();
                });
                ctx.logical_bytes += 4 * ssp_before.len() as u64;
                let global = ssp_step(ep, ctx.server, step, delta)?;
                set_flat_params(model.as_model(), &global);
                (true, f32::NAN)
            }
        };

        if synced {
            lssr.record_sync();
        } else {
            lssr.record_local();
        }
        if worker == 0 {
            records.push(StepRecord {
                step,
                loss,
                synced,
                delta_g,
            });
            if (step + 1).is_multiple_of(config.eval_every) || step + 1 == config.max_steps {
                evals.push(EvalRecord {
                    step,
                    epoch: cursor.epoch_progress(),
                    metric: evaluate(&mut model, workload),
                });
            }
        }
    }

    // dedicated shutdown round (all workers, same tag)
    if ctx.backend == SyncBackend::ParameterServer {
        send_shutdown(ep, ctx.server, config.max_steps)?;
    }

    Ok(WorkerOutput {
        worker,
        final_params: flat_params(model.as_visitor()),
        lssr,
        records,
        evals,
        logical_sync_bytes: ctx.logical_bytes,
    })
}

/// Pipelined backward + push (DESIGN.md §12): run
/// [`Model::backward_hooked`] and ship every gradient bucket to the PS
/// the moment the readiness watermark clears it, so communication
/// overlaps the remaining backprop. Bucket `i` (covering flat range
/// `[i·B, (i+1)·B)`) is final once `watermark <= i·B`; ready buckets
/// are sent highest-index-first as the watermark descends. Buckets the
/// hook never announced — e.g. a model falling back to the default
/// un-hooked `backward` — are flushed after the pass, so the round
/// always completes. The server reassembles strictly by bucket index,
/// which keeps the result bit-identical to a monolithic push.
///
/// The caller still owns the round reply ([`recv_round_reply`]).
fn push_grad_buckets<T: Transport>(
    ep: &mut T,
    ctx: &mut SyncCtx,
    step: u64,
    model: &mut AnyModel,
    dlogits: &Tensor,
    bucket_size: usize,
    scratch: &mut Vec<f32>,
) -> Result<(), TransportError> {
    let total = model.as_visitor().num_params();
    let server = ctx.server;
    // lowest bucket index not yet sent, counting down from the top;
    // everything in `unsent_hi..` is already on the wire
    let mut unsent_hi = n_buckets(total, bucket_size);
    let mut send_err: Option<TransportError> = None;
    model
        .as_model()
        .backward_hooked(dlogits, &mut |watermark, m| {
            if send_err.is_some() {
                return;
            }
            // first bucket fully inside the finalized suffix [watermark..]
            let ready_from = watermark.div_ceil(bucket_size).min(unsent_hi);
            if ready_from >= unsent_hi {
                return;
            }
            flat_grads_into(m, scratch);
            match send_bucket_range(
                ep,
                server,
                step,
                scratch,
                bucket_size,
                ready_from..unsent_hi,
            ) {
                Ok(()) => unsent_hi = ready_from,
                Err(e) => send_err = Some(e),
            }
        });
    if let Some(e) = send_err {
        return Err(e);
    }
    if unsent_hi > 0 {
        flat_grads_into(model.as_visitor(), scratch);
        send_bucket_range(ep, server, step, scratch, bucket_size, 0..unsent_hi)?;
    }
    ctx.logical_bytes += 4 * total as u64;
    Ok(())
}

/// One synchronization (Alg. 1 lines 14–15 for PA; the §IV-D
/// gradient-aggregation variant otherwise), through the configured
/// transport: PS push/pull rounds or the decentralized ring allreduce
/// §III-E suggests as a drop-in replacement.
fn apply_sync<T: Transport>(
    ep: &mut T,
    ctx: &mut SyncCtx,
    step: u64,
    model: &mut AnyModel,
    opt: &mut AnyOptimizer,
    aggregation: Aggregation,
) -> Result<(), TransportError> {
    let inv_n = 1.0 / ctx.n_workers as f32;
    match aggregation {
        Aggregation::Parameter => {
            // local update first (Alg. 1 line 9), then average parameters
            opt.step(model.as_model());
            let mut params = flat_params(model.as_visitor());
            ctx.logical_bytes += 4 * params.len() as u64;
            match ctx.backend {
                SyncBackend::ParameterServer => {
                    let avg = sync_round(ep, ctx.server, step, SyncRequest::PushParams(params))?;
                    set_flat_params(model.as_model(), &avg);
                }
                SyncBackend::RingAllReduce => {
                    ring_allreduce(ep, ctx.n_workers, step, &mut params)?;
                    for v in &mut params {
                        *v *= inv_n;
                    }
                    set_flat_params(model.as_model(), &params);
                }
            }
        }
        Aggregation::Gradient => {
            // average (optionally compressed) gradients, then every
            // replica applies the same averaged update locally
            let mut grads = flat_grads(model.as_visitor());
            let n_values = grads.len();
            let (wire_bytes, wire_payload) = ctx.compress_with_ef(&mut grads);
            ctx.logical_bytes += wire_bytes;
            match ctx.backend {
                SyncBackend::ParameterServer => {
                    let avg = match wire_payload {
                        // ship the compact wire form; the server
                        // densifies at arrival, and PowerSGD's matrix
                        // padding is truncated back off the reply
                        Some(payload) => {
                            ep.send(ctx.server, step, payload)?;
                            let mut v = recv_round_reply(ep, ctx.server, step)?.into_vec();
                            v.truncate(n_values);
                            v
                        }
                        None => sync_round(ep, ctx.server, step, SyncRequest::PushGrads(grads))?
                            .into_vec(),
                    };
                    set_flat_grads(model.as_model(), &avg);
                }
                SyncBackend::RingAllReduce => {
                    ring_allreduce(ep, ctx.n_workers, step, &mut grads)?;
                    for v in &mut grads {
                        *v *= inv_n;
                    }
                    set_flat_grads(model.as_model(), &grads);
                }
            }
            opt.step(model.as_model());
        }
    }
    Ok(())
}

/// Broadcast/collect injection samples and build the augmented batch.
fn exchange_injection<T: Transport>(
    ep: &mut T,
    n: usize,
    step: u64,
    inj: InjectionConfig,
    seed: u64,
    batch: Batch,
) -> Result<Batch, TransportError> {
    let me = ep.id();
    let sharers = inj.select_sharers(n, seed ^ 0x1213, step);
    let share_k = inj.shared_per_worker(batch.len());
    let tag = phase_tag(step, INJECT_PHASE);
    if sharers.binary_search(&me).is_ok() {
        let shared = batch.truncate_dense(share_k);
        let x = shared.input.dense();
        let dims = x.shape().dims()[1..].to_vec();
        for w in 0..n {
            if w != me {
                ep.send(
                    w,
                    tag,
                    Payload::Samples {
                        data: x.as_slice().to_vec(),
                        targets: shared.targets.clone(),
                        dims: dims.clone(),
                    },
                )?;
            }
        }
    }
    let mut combined = batch;
    let expected = sharers.iter().filter(|&&s| s != me).count();
    let mut received = Vec::with_capacity(expected);
    for _ in 0..expected {
        received.push(ep.recv_tagged(None, tag)?);
    }
    // concatenate in worker-id order so the augmented batch (and hence
    // the gradients) are independent of message arrival order
    received.sort_by_key(|m| m.from);
    for m in received {
        if let Payload::Samples {
            data,
            targets,
            dims,
        } = m.payload
        {
            let mut shape = vec![targets.len()];
            shape.extend(&dims);
            let incoming = Batch::dense(Tensor::from_vec(data, shape.as_slice()), targets);
            combined = combined.concat_dense(&incoming);
        } else {
            return Err(TransportError::Protocol(
                "unexpected payload in injection exchange".into(),
            ));
        }
    }
    Ok(combined)
}

/// Evaluate worker 0's replica on the held-out split with the workload's
/// paper metric (top-1 / top-5 accuracy or perplexity).
pub fn evaluate(model: &mut AnyModel, workload: &Workload) -> f32 {
    match &workload.data {
        WorkloadData::Vision { test, .. } => {
            let n_eval = test.len().min(256);
            let indices: Vec<usize> = (0..n_eval).collect();
            let (x, targets) = test.gather(&indices);
            let logits = model.as_model().forward(&Input::Dense(x), false);
            if workload.kind == ModelKind::AlexNetMini {
                topk_accuracy(&logits, &targets, 5)
            } else {
                accuracy(&logits, &targets)
            }
        }
        WorkloadData::Text { test, .. } => {
            let total = test.num_windows(SEQ_LEN);
            assert!(total > 0, "test stream too short");
            let take = total.min(16);
            let mut seqs = Vec::with_capacity(take);
            let mut targets = Vec::new();
            // sample windows evenly across the stream so every topic
            // segment is represented (the corpus is topic-switching)
            for k in 0..take {
                let w = k * total / take;
                let (x, y) = test.window(w, SEQ_LEN);
                seqs.push(x);
                targets.extend(y);
            }
            let logits = model.as_model().forward(&Input::Tokens(seqs), false);
            let (loss, _) = softmax_cross_entropy(&logits, &targets);
            loss.exp() // perplexity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use selsync_data::PartitionScheme;

    fn quick(strategy: Strategy, n_workers: usize, steps: u64) -> RunConfig {
        RunConfig {
            strategy,
            n_workers,
            max_steps: steps,
            eval_every: steps,
            ..RunConfig::quick_defaults()
        }
    }

    fn mlp_workload() -> Workload {
        Workload::vision(ModelKind::VggMini, 96, 32, 7)
    }

    #[test]
    fn bsp_keeps_replicas_identical() {
        let cfg = quick(
            Strategy::Bsp {
                aggregation: Aggregation::Parameter,
            },
            3,
            6,
        );
        let r = run_distributed(&cfg, &mlp_workload());
        assert_eq!(r.lssr.lssr(), 0.0, "BSP syncs every step");
        assert!(
            r.replica_divergence() < 1e-5,
            "replicas identical after PA sync: {}",
            r.replica_divergence()
        );
        assert_eq!(r.worker_params.len(), 3);
        assert_eq!(r.step_records.len(), 6);
    }

    #[test]
    fn local_only_diverges_and_never_syncs() {
        let cfg = quick(Strategy::LocalOnly, 3, 6);
        let r = run_distributed(&cfg, &mlp_workload());
        assert_eq!(r.lssr.lssr(), 1.0);
        assert!(
            r.replica_divergence() > 1e-4,
            "independent local training must diverge"
        );
    }

    #[test]
    fn selsync_lssr_between_bsp_and_local() {
        let cfg = RunConfig {
            strategy: Strategy::SelSync {
                delta: 0.35,
                aggregation: Aggregation::Parameter,
            },
            n_workers: 3,
            max_steps: 40,
            eval_every: 40,
            ewma_window: 25,
            ewma_alpha: 0.1,
            partition: PartitionScheme::SelDp,
            ..RunConfig::quick_defaults()
        };
        let r = run_distributed(&cfg, &mlp_workload());
        let lssr = r.lssr.lssr();
        assert!(
            lssr > 0.0,
            "some steps go local with a positive δ (lssr={lssr})"
        );
        assert!(lssr < 1.0, "step 0 always syncs (Δ = ∞)");
        assert!(r.step_records[0].synced, "first step must synchronize");
    }

    #[test]
    fn selsync_delta_zero_equals_bsp_schedule() {
        let cfg = quick(
            Strategy::SelSync {
                delta: 0.0,
                aggregation: Aggregation::Parameter,
            },
            2,
            5,
        );
        let r = run_distributed(&cfg, &mlp_workload());
        assert_eq!(r.lssr.lssr(), 0.0, "δ=0 implies fully synchronous training");
    }

    #[test]
    fn fedavg_syncs_on_schedule() {
        // 96 samples, 3 workers DefDP → 32/worker; batch 8 → 4 steps/epoch;
        // E=0.5 → interval 2
        let cfg = RunConfig {
            strategy: Strategy::FedAvg { c: 1.0, e: 0.5 },
            n_workers: 3,
            max_steps: 8,
            eval_every: 8,
            partition: PartitionScheme::DefDp,
            ..RunConfig::quick_defaults()
        };
        let r = run_distributed(&cfg, &mlp_workload());
        let synced: Vec<u64> = r
            .step_records
            .iter()
            .filter(|s| s.synced)
            .map(|s| s.step)
            .collect();
        assert_eq!(synced, vec![1, 3, 5, 7], "uniformly spaced syncs");
        assert!((r.lssr.lssr() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ssp_trains_without_deadlock() {
        let cfg = quick(Strategy::Ssp { staleness: 3 }, 3, 10);
        let r = run_distributed(&cfg, &mlp_workload());
        assert_eq!(r.steps_run, 10);
        assert!(r.final_params.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn transformer_workload_runs_distributed() {
        let cfg = quick(
            Strategy::SelSync {
                delta: 0.1,
                aggregation: Aggregation::Parameter,
            },
            2,
            4,
        );
        let wl = Workload::text(SEQ_LEN * 40, 3);
        let r = run_distributed(&cfg, &wl);
        assert!(
            r.final_metric > 1.0,
            "perplexity is > 1: {}",
            r.final_metric
        );
    }

    #[test]
    fn noniid_injection_run_completes() {
        let cfg = RunConfig {
            strategy: Strategy::SelSync {
                delta: 0.3,
                aggregation: Aggregation::Parameter,
            },
            n_workers: 5,
            max_steps: 6,
            eval_every: 6,
            batch_size: 10,
            noniid_labels: Some(2),
            injection: Some(InjectionConfig::new(0.5, 0.5)),
            ..RunConfig::quick_defaults()
        };
        let wl = Workload::vision(ModelKind::ResNetMini, 400, 50, 9);
        let r = run_distributed(&cfg, &wl);
        assert_eq!(r.steps_run, 6);
        assert!(r.comm_bytes > 0);
    }

    #[test]
    fn ring_backend_matches_ps_backend_bitwise() {
        // §III-E: the PS push/pull and the ring allreduce compute the
        // same average; with a fixed seed the entire runs must agree
        // up to float reassociation in the reduction.
        let wl = mlp_workload();
        let mut cfg = quick(
            Strategy::Bsp {
                aggregation: Aggregation::Parameter,
            },
            3,
            8,
        );
        let ps = run_distributed(&cfg, &wl);
        cfg.backend = SyncBackend::RingAllReduce;
        let ring = run_distributed(&cfg, &wl);
        let dist = crate::divergence::l2_distance(&ps.worker_params[0], &ring.worker_params[0]);
        let norm: f32 = ps.worker_params[0]
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt();
        assert!(
            dist < 1e-3 * norm.max(1.0),
            "PS and ring training should agree: distance {dist}"
        );
        assert_eq!(ring.lssr.lssr(), 0.0);
    }

    #[test]
    fn ring_backend_runs_selsync() {
        let mut cfg = quick(
            Strategy::SelSync {
                delta: 0.3,
                aggregation: Aggregation::Parameter,
            },
            3,
            10,
        );
        cfg.backend = SyncBackend::RingAllReduce;
        let r = run_distributed(&cfg, &mlp_workload());
        assert!(r.step_records[0].synced);
        assert!(r.final_params.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic]
    fn ring_backend_rejects_ssp() {
        let mut cfg = quick(Strategy::Ssp { staleness: 5 }, 2, 4);
        cfg.backend = SyncBackend::RingAllReduce;
        let _ = run_distributed(&cfg, &mlp_workload());
    }

    #[test]
    fn topk_compression_cuts_logical_bytes() {
        let wl = mlp_workload();
        let mut cfg = quick(
            Strategy::Bsp {
                aggregation: Aggregation::Gradient,
            },
            2,
            6,
        );
        let dense = run_distributed(&cfg, &wl);
        cfg.compression = Some(CompressionKind::TopK { ratio: 0.05 });
        let compressed = run_distributed(&cfg, &wl);
        assert!(
            compressed.logical_sync_bytes * 5 < dense.logical_sync_bytes,
            "top-5% must cut payload ≥5x: {} vs {}",
            compressed.logical_sync_bytes,
            dense.logical_sync_bytes
        );
        // error feedback keeps training sane
        assert!(compressed.final_params.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic]
    fn compression_requires_gradient_aggregation() {
        let mut cfg = quick(
            Strategy::Bsp {
                aggregation: Aggregation::Parameter,
            },
            2,
            4,
        );
        cfg.compression = Some(CompressionKind::SignSgd);
        let _ = run_distributed(&cfg, &mlp_workload());
    }

    #[test]
    fn overlap_bucketed_run_matches_monolithic_bitwise() {
        // the tentpole invariant (DESIGN.md §12): pipelining the push as
        // buckets emitted during backward must not change a single bit —
        // the PS fixes the reduction order by bucket index, not arrival
        let wl = mlp_workload();
        let mut cfg = quick(
            Strategy::Bsp {
                aggregation: Aggregation::Gradient,
            },
            3,
            6,
        );
        let mono = run_distributed(&cfg, &wl);
        cfg.overlap_buckets = Some(1000);
        let bucketed = run_distributed(&cfg, &wl);
        assert_eq!(mono.worker_params.len(), bucketed.worker_params.len());
        for (m, b) in mono.worker_params.iter().zip(&bucketed.worker_params) {
            let mb: Vec<u32> = m.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(mb, bb, "bucketed push must be bit-identical");
        }
        assert_eq!(
            mono.logical_sync_bytes, bucketed.logical_sync_bytes,
            "same model bytes either way"
        );
        assert!(
            bucketed.comm_bytes > mono.comm_bytes,
            "per-bucket frames carry header overhead: {} vs {}",
            bucketed.comm_bytes,
            mono.comm_bytes
        );
    }

    #[test]
    fn overlap_bucket_size_larger_than_model_still_works() {
        let wl = mlp_workload();
        let mut cfg = quick(
            Strategy::Bsp {
                aggregation: Aggregation::Gradient,
            },
            2,
            4,
        );
        let mono = run_distributed(&cfg, &wl);
        cfg.overlap_buckets = Some(usize::MAX / 2);
        let one_bucket = run_distributed(&cfg, &wl);
        assert_eq!(
            mono.worker_params[0]
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            one_bucket.worker_params[0]
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    #[should_panic]
    fn overlap_requires_gradient_aggregation() {
        let mut cfg = quick(
            Strategy::Bsp {
                aggregation: Aggregation::Parameter,
            },
            2,
            4,
        );
        cfg.overlap_buckets = Some(512);
        let _ = run_distributed(&cfg, &mlp_workload());
    }

    #[test]
    #[should_panic]
    fn overlap_rejects_whole_vector_transforms() {
        let mut cfg = quick(
            Strategy::Bsp {
                aggregation: Aggregation::Gradient,
            },
            2,
            4,
        );
        cfg.overlap_buckets = Some(512);
        cfg.grad_clip = Some(1.0);
        let _ = run_distributed(&cfg, &mlp_workload());
    }

    #[test]
    fn wire_topk_matches_dense_push_bitwise_and_cuts_fabric_bytes() {
        // top-k densification at the server is exact, so shipping the
        // sparse wire form changes the physical bytes but not the math
        let wl = mlp_workload();
        let mut cfg = quick(
            Strategy::Bsp {
                aggregation: Aggregation::Gradient,
            },
            2,
            6,
        );
        cfg.compression = Some(CompressionKind::TopK { ratio: 0.05 });
        let dense_wire = run_distributed(&cfg, &wl);
        cfg.wire_compression = true;
        let compact = run_distributed(&cfg, &wl);
        for (d, c) in dense_wire.worker_params.iter().zip(&compact.worker_params) {
            let db: Vec<u32> = d.iter().map(|v| v.to_bits()).collect();
            let cb: Vec<u32> = c.iter().map(|v| v.to_bits()).collect();
            assert_eq!(db, cb, "server densification is exact for top-k");
        }
        assert!(
            compact.comm_bytes < dense_wire.comm_bytes,
            "sparse wire form must cut fabric bytes: {} vs {}",
            compact.comm_bytes,
            dense_wire.comm_bytes
        );
        assert_eq!(
            compact.logical_sync_bytes, dense_wire.logical_sync_bytes,
            "logical accounting is the compressed size either way"
        );
    }

    #[test]
    fn wire_sign_and_powersgd_runs_stay_finite() {
        let wl = mlp_workload();
        for kind in [
            CompressionKind::SignSgd,
            CompressionKind::PowerSgd { rank: 2 },
        ] {
            let mut cfg = quick(
                Strategy::Bsp {
                    aggregation: Aggregation::Gradient,
                },
                2,
                4,
            );
            cfg.compression = Some(kind);
            cfg.wire_compression = true;
            let r = run_distributed(&cfg, &wl);
            assert!(
                r.final_params.iter().all(|v| v.is_finite()),
                "{kind:?} wire run diverged"
            );
            assert!(r.comm_bytes > 0);
        }
    }

    #[test]
    #[should_panic]
    fn wire_compression_requires_a_compressor() {
        let mut cfg = quick(
            Strategy::Bsp {
                aggregation: Aggregation::Gradient,
            },
            2,
            4,
        );
        cfg.wire_compression = true;
        let _ = run_distributed(&cfg, &mlp_workload());
    }

    #[test]
    fn comm_bytes_scale_with_sync_frequency() {
        let bsp = run_distributed(
            &quick(
                Strategy::Bsp {
                    aggregation: Aggregation::Parameter,
                },
                2,
                10,
            ),
            &mlp_workload(),
        );
        let local = run_distributed(&quick(Strategy::LocalOnly, 2, 10), &mlp_workload());
        assert!(
            bsp.comm_bytes > 5 * local.comm_bytes.max(1),
            "BSP {} vs local {}",
            bsp.comm_bytes,
            local.comm_bytes
        );
    }
}
