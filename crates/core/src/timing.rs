//! Timing replay: convert a run's *real* decision log into paper-scale
//! wall-clock using the analytic network model.
//!
//! The in-process cluster makes every algorithmic decision for real
//! (which steps synchronize, what LSSR results, what accuracy is
//! reached), but its wall-clock is meaningless for a 16×V100 / 5 Gbps
//! cluster. This module replays the step log against
//! [`NetworkModel`] with the *paper's* model sizes and per-step compute
//! times, yielding the speedup and throughput numbers of Table I and
//! Fig. 1a. Calibration notes live in EXPERIMENTS.md.

use crate::config::Strategy;
use crate::metrics::StepRecord;
use selsync_comm::NetworkModel;
use selsync_nn::models::ModelKind;
use serde::{Deserialize, Serialize};

/// Paper-scale per-step compute time on a V100 (seconds), by workload.
/// Backed out from §II-A/Fig. 2a: deep ResNet101 is the slowest per
/// batch-32 step; the small Transformer the fastest per bptt batch.
pub fn paper_compute_time(kind: ModelKind) -> f64 {
    match kind {
        ModelKind::ResNetMini => 0.30,
        ModelKind::VggMini => 0.12,
        ModelKind::AlexNetMini => 0.10,
        ModelKind::TransformerMini => 0.05,
    }
}

/// The paper's measured Δ(g) + EWMA smoothing overhead per step for a
/// window of 25 (Fig. 8a): 17 ms for ResNet101, ~3 ms for the others.
pub fn paper_relchange_overhead(kind: ModelKind) -> f64 {
    match kind {
        ModelKind::ResNetMini => 0.017,
        ModelKind::VggMini => 0.0031,
        ModelKind::AlexNetMini => 0.0039,
        ModelKind::TransformerMini => 0.0023,
    }
}

/// Parameters of a timing replay.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimingParams {
    /// The modeled fabric.
    pub net: NetworkModel,
    /// Paper-scale model size in bytes.
    pub model_bytes: u64,
    /// Paper-scale compute time per step (seconds).
    pub compute_time_s: f64,
    /// Cluster size.
    pub n_workers: usize,
    /// Per-step Δ(g) tracking overhead (SelSync only).
    pub relchange_overhead_s: f64,
}

impl TimingParams {
    /// Paper-calibrated parameters for a workload on `n` workers.
    pub fn paper(kind: ModelKind, n: usize) -> Self {
        TimingParams {
            net: NetworkModel::paper_cluster(),
            model_bytes: kind.paper_model_bytes(),
            compute_time_s: paper_compute_time(kind),
            n_workers: n,
            relchange_overhead_s: paper_relchange_overhead(kind),
        }
    }
}

/// Result of a timing replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// Total cluster wall-clock (seconds).
    pub total_s: f64,
    /// Time spent computing.
    pub compute_s: f64,
    /// Time spent in synchronization collectives.
    pub sync_s: f64,
    /// SelSync-specific tracking overhead (Δ(g) + flags allgather).
    pub overhead_s: f64,
    /// Cumulative cluster time after each step.
    pub cumulative: Vec<f64>,
}

/// Replay a step log into paper-scale time.
pub fn simulate_timeline(
    strategy: Strategy,
    records: &[StepRecord],
    p: &TimingParams,
) -> TimingBreakdown {
    let mut compute_s = 0.0;
    let mut sync_s = 0.0;
    let mut overhead_s = 0.0;
    let mut cumulative = Vec::with_capacity(records.len());
    let mut t = 0.0f64;
    let full_sync = p.net.ps_sync_time(p.model_bytes, p.n_workers);
    for rec in records {
        let mut step_t = p.compute_time_s;
        compute_s += p.compute_time_s;
        match strategy {
            Strategy::Bsp { .. } => {
                step_t += full_sync;
                sync_s += full_sync;
            }
            Strategy::LocalOnly => {}
            Strategy::SelSync { .. } => {
                let track = p.relchange_overhead_s + p.net.flags_allgather_time(p.n_workers);
                step_t += track;
                overhead_s += track;
                if rec.synced {
                    step_t += full_sync;
                    sync_s += full_sync;
                }
            }
            Strategy::FedAvg { c, .. } => {
                if rec.synced {
                    let pushers = ((c * p.n_workers as f32).ceil() as usize).max(1);
                    let s = p
                        .net
                        .ps_partial_sync_time(p.model_bytes, pushers, p.n_workers);
                    step_t += s;
                    sync_s += s;
                }
            }
            Strategy::Ssp { .. } => {
                // asynchronous push/pull pipelined with compute: the step
                // rate is bounded by the slower of compute and the
                // worker's own 2×model transfer (sharded-PS assumption;
                // see EXPERIMENTS.md calibration notes)
                let comm = 2.0 * p.net.p2p_time(p.model_bytes);
                let eff = p.compute_time_s.max(comm);
                sync_s += eff - p.compute_time_s;
                step_t = eff;
            }
        }
        t += step_t;
        cumulative.push(t);
    }
    TimingBreakdown {
        total_s: t,
        compute_s,
        sync_s,
        overhead_s,
        cumulative,
    }
}

/// Timing replay under systems heterogeneity: per-worker compute-time
/// multipliers (1.0 = nominal; a straggler has > 1). Synchronous
/// strategies pay the *slowest* worker's compute each barrier step
/// (§II-A); SSP pays the mean, which is exactly its value proposition.
pub fn simulate_heterogeneous(
    strategy: Strategy,
    records: &[StepRecord],
    p: &TimingParams,
    multipliers: &[f64],
) -> TimingBreakdown {
    assert_eq!(multipliers.len(), p.n_workers, "one multiplier per worker");
    let worst = multipliers.iter().copied().fold(1.0f64, f64::max);
    let mean = multipliers.iter().sum::<f64>() / multipliers.len() as f64;
    let mut eff = *p;
    eff.compute_time_s = match strategy {
        // barrier strategies wait for the straggler on synced steps;
        // local steps also proceed at each worker's own pace, but the
        // cluster finish time is still set by the slowest lane
        Strategy::Ssp { .. } => p.compute_time_s * mean,
        _ => p.compute_time_s * worst,
    };
    simulate_timeline(strategy, records, &eff)
}

/// Fig. 1a quantity: training throughput on `n` workers relative to one
/// GPU under PS-based BSP.
pub fn relative_throughput(kind: ModelKind, n: usize) -> f64 {
    let p = TimingParams::paper(kind, n);
    if n == 1 {
        return 1.0;
    }
    let t1 = p.compute_time_s;
    let tn = p.compute_time_s + p.net.ps_sync_time(p.model_bytes, n);
    n as f64 * t1 / tn
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Aggregation;

    fn records(n: usize, sync_every: usize) -> Vec<StepRecord> {
        (0..n)
            .map(|i| StepRecord {
                step: i as u64,
                loss: 1.0,
                synced: sync_every > 0 && i % sync_every == 0,
                delta_g: 0.1,
            })
            .collect()
    }

    #[test]
    fn bsp_time_is_compute_plus_sync_every_step() {
        let p = TimingParams::paper(ModelKind::ResNetMini, 16);
        let tb = simulate_timeline(
            Strategy::Bsp {
                aggregation: Aggregation::Parameter,
            },
            &records(10, 1),
            &p,
        );
        let per_step = p.compute_time_s + p.net.ps_sync_time(p.model_bytes, 16);
        assert!((tb.total_s - 10.0 * per_step).abs() < 1e-6);
        assert_eq!(tb.cumulative.len(), 10);
    }

    #[test]
    fn selsync_cheaper_than_bsp_at_same_steps() {
        let p = TimingParams::paper(ModelKind::VggMini, 16);
        let bsp = simulate_timeline(
            Strategy::Bsp {
                aggregation: Aggregation::Parameter,
            },
            &records(100, 1),
            &p,
        );
        let sel = simulate_timeline(
            Strategy::SelSync {
                delta: 0.3,
                aggregation: Aggregation::Parameter,
            },
            &records(100, 10), // 10% sync ≈ LSSR 0.9
            &p,
        );
        assert!(
            bsp.total_s / sel.total_s > 5.0,
            "LSSR 0.9 should cut most of the comm wall: {}x",
            bsp.total_s / sel.total_s
        );
    }

    #[test]
    fn selsync_overhead_is_small_but_nonzero() {
        let p = TimingParams::paper(ModelKind::TransformerMini, 16);
        let sel = simulate_timeline(
            Strategy::SelSync {
                delta: 0.3,
                aggregation: Aggregation::Parameter,
            },
            &records(100, 0),
            &p,
        );
        assert!(sel.overhead_s > 0.0);
        assert!(sel.overhead_s < sel.compute_s, "tracking ≪ compute");
    }

    #[test]
    fn local_only_is_pure_compute() {
        let p = TimingParams::paper(ModelKind::AlexNetMini, 8);
        let tb = simulate_timeline(Strategy::LocalOnly, &records(50, 0), &p);
        assert_eq!(tb.sync_s, 0.0);
        assert!((tb.total_s - tb.compute_s).abs() < 1e-9);
    }

    #[test]
    fn fedavg_partial_push_cheaper_than_full() {
        let p = TimingParams::paper(ModelKind::ResNetMini, 16);
        let full = simulate_timeline(Strategy::FedAvg { c: 1.0, e: 0.25 }, &records(40, 4), &p);
        let half = simulate_timeline(Strategy::FedAvg { c: 0.5, e: 0.25 }, &records(40, 4), &p);
        assert!(half.sync_s < full.sync_s);
    }

    #[test]
    fn fig1a_shapes_hold() {
        // ResNet101 scales sublinearly: well below N at 16 workers
        let r16 = relative_throughput(ModelKind::ResNetMini, 16);
        assert!(r16 > 1.0 && r16 < 8.0, "sublinear scaling, got {r16}");
        // VGG11 at 2 workers is below 1× (the paper's 507 MB pathology)
        let v2 = relative_throughput(ModelKind::VggMini, 2);
        assert!(v2 < 1.0, "VGG11 2-worker relative throughput {v2} < 1");
        // and throughput grows monotonically with cluster size anyway
        let v4 = relative_throughput(ModelKind::VggMini, 4);
        let v16 = relative_throughput(ModelKind::VggMini, 16);
        assert!(v16 > v4 * 0.9, "no collapse at scale");
    }

    #[test]
    fn heterogeneity_hurts_bsp_more_than_ssp() {
        // one 3x straggler among 8 workers: BSP pays 3x compute on every
        // barrier; SSP pays only the mean slowdown (§II-A/§II-C)
        let p = TimingParams::paper(ModelKind::ResNetMini, 8);
        let mut mult = vec![1.0f64; 8];
        mult[3] = 3.0;
        let recs = records(20, 1);
        let bsp_hom = simulate_timeline(
            Strategy::Bsp {
                aggregation: Aggregation::Parameter,
            },
            &recs,
            &p,
        );
        let bsp_het = simulate_heterogeneous(
            Strategy::Bsp {
                aggregation: Aggregation::Parameter,
            },
            &recs,
            &p,
            &mult,
        );
        let ssp_het = simulate_heterogeneous(Strategy::Ssp { staleness: 10 }, &recs, &p, &mult);
        let ssp_hom = simulate_timeline(Strategy::Ssp { staleness: 10 }, &recs, &p);
        let bsp_penalty = bsp_het.compute_s / bsp_hom.compute_s;
        let ssp_penalty = ssp_het.total_s / ssp_hom.total_s;
        assert!(
            (bsp_penalty - 3.0).abs() < 1e-9,
            "BSP pays the straggler fully"
        );
        assert!(
            ssp_penalty < bsp_penalty,
            "SSP absorbs heterogeneity: {ssp_penalty}"
        );
    }

    #[test]
    fn ssp_step_rate_bounded_by_transfer() {
        let p = TimingParams::paper(ModelKind::AlexNetMini, 16);
        let tb = simulate_timeline(Strategy::Ssp { staleness: 100 }, &records(10, 1), &p);
        let per_step = (2.0 * p.net.p2p_time(p.model_bytes)).max(p.compute_time_s);
        assert!((tb.total_s - 10.0 * per_step).abs() < 1e-6);
    }
}
