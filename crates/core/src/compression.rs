//! Gradient-compression baselines from §II-D: Top-k sparsification
//! (DGC/Top-k), sign quantization (signSGD), and low-rank approximation
//! (PowerSGD).
//!
//! The paper positions SelSync *against* these methods — they reduce
//! communication volume per step, SelSync reduces the number of
//! communicating steps. The ablation bench `ablation_compression`
//! compares the two axes at matched communication budgets.

use selsync_tensor::matmul::{matmul, matmul_tn};
use selsync_tensor::Tensor;

/// A sparsified gradient: values and their flat indices.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseGrad {
    /// Flat indices of the kept entries.
    pub indices: Vec<u32>,
    /// Kept values, aligned with `indices`.
    pub values: Vec<f32>,
    /// Original dense length.
    pub len: usize,
}

impl SparseGrad {
    /// Reconstruct the dense gradient (zeros elsewhere).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.len];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }

    /// Wire bytes: 4 per index + 4 per value.
    pub fn wire_bytes(&self) -> u64 {
        8 * self.values.len() as u64
    }

    /// Compression factor vs. dense fp32.
    pub fn compression_ratio(&self) -> f64 {
        (4 * self.len) as f64 / self.wire_bytes() as f64
    }
}

/// Keep the `k` largest-magnitude entries (Top-k / DGC-style).
pub fn topk_compress(grad: &[f32], k: usize) -> SparseGrad {
    let k = k.clamp(1, grad.len());
    let mut idx: Vec<u32> = (0..grad.len() as u32).collect();
    // partial selection by magnitude
    idx.select_nth_unstable_by(k - 1, |&a, &b| {
        grad[b as usize]
            .abs()
            .partial_cmp(&grad[a as usize].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kept: Vec<u32> = idx[..k].to_vec();
    kept.sort_unstable();
    SparseGrad {
        values: kept.iter().map(|&i| grad[i as usize]).collect(),
        indices: kept,
        len: grad.len(),
    }
}

/// signSGD quantization: sign bits plus one scale (mean |g|), the
/// majority-vote-friendly 1-bit scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SignGrad {
    /// Packed sign bits (1 = positive), little-endian within bytes.
    pub bits: Vec<u8>,
    /// Scale applied on decompression.
    pub scale: f32,
    /// Original dense length.
    pub len: usize,
}

impl SignGrad {
    /// Wire bytes: ⌈len/8⌉ + 4.
    pub fn wire_bytes(&self) -> u64 {
        self.bits.len() as u64 + 4
    }
}

/// Compress to signs and a single mean-magnitude scale.
pub fn sign_compress(grad: &[f32]) -> SignGrad {
    let scale = if grad.is_empty() {
        0.0
    } else {
        grad.iter().map(|g| g.abs()).sum::<f32>() / grad.len() as f32
    };
    let mut bits = vec![0u8; grad.len().div_ceil(8)];
    for (i, &g) in grad.iter().enumerate() {
        if g >= 0.0 {
            bits[i / 8] |= 1 << (i % 8);
        }
    }
    SignGrad {
        bits,
        scale,
        len: grad.len(),
    }
}

/// Decompress signs back to ±scale.
pub fn sign_decompress(s: &SignGrad) -> Vec<f32> {
    (0..s.len)
        .map(|i| {
            if s.bits[i / 8] & (1 << (i % 8)) != 0 {
                s.scale
            } else {
                -s.scale
            }
        })
        .collect()
}

/// PowerSGD rank-`r` factorization of a gradient viewed as a
/// `rows × cols` matrix: returns `(P [rows, r], Q [cols, r])` with
/// `M ≈ P·Qᵀ` after `iters` subspace iterations.
pub fn powersgd_factorize(
    grad: &[f32],
    rows: usize,
    rank: usize,
    iters: usize,
    seed: u64,
) -> (Tensor, Tensor) {
    assert!(
        rows > 0 && grad.len().is_multiple_of(rows),
        "grad must reshape to rows×cols"
    );
    let cols = grad.len() / rows;
    let rank = rank.clamp(1, rows.min(cols));
    let m = Tensor::from_vec(grad.to_vec(), [rows, cols]);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut q = selsync_tensor::init::randn([cols, rank], 1.0, &mut rng);
    let mut p = Tensor::zeros([rows, rank]);
    for _ in 0..iters.max(1) {
        p = matmul(&m, &q); // [rows, rank]
        orthonormalize_columns(&mut p);
        q = matmul_tn(&m, &p); // Mᵀ·P = [cols, rank]
    }
    (p, q)
}

/// Reconstruct the dense gradient `P·Qᵀ` from the factors.
pub fn powersgd_reconstruct(p: &Tensor, q: &Tensor) -> Vec<f32> {
    selsync_tensor::matmul::matmul_nt(p, q).into_vec()
}

/// Wire bytes of the rank-r factors vs. the dense gradient.
pub fn powersgd_wire_bytes(rows: usize, cols: usize, rank: usize) -> u64 {
    4 * (rows as u64 + cols as u64) * rank as u64
}

/// Gram–Schmidt orthonormalization of a `[m, r]` matrix's columns.
fn orthonormalize_columns(a: &mut Tensor) {
    let (m, r) = (a.shape().dim(0), a.shape().dim(1));
    for j in 0..r {
        // subtract projections on previous columns
        for k in 0..j {
            let mut dot = 0.0;
            for i in 0..m {
                dot += a.at(&[i, j]) * a.at(&[i, k]);
            }
            for i in 0..m {
                *a.at_mut(&[i, j]) -= dot * a.at(&[i, k]);
            }
        }
        let mut norm = 0.0;
        for i in 0..m {
            norm += a.at(&[i, j]) * a.at(&[i, j]);
        }
        let norm = norm.sqrt().max(1e-12);
        for i in 0..m {
            *a.at_mut(&[i, j]) /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_keeps_largest_magnitudes() {
        let g = vec![0.1, -5.0, 0.3, 4.0, -0.2];
        let s = topk_compress(&g, 2);
        assert_eq!(s.indices, vec![1, 3]);
        assert_eq!(s.values, vec![-5.0, 4.0]);
        let d = s.to_dense();
        assert_eq!(d, vec![0.0, -5.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn topk_compression_ratio() {
        let g = vec![1.0; 1000];
        let s = topk_compress(&g, 10);
        // dense 4000 bytes; sparse 10*(4+4)=80 → 50×
        assert!((s.compression_ratio() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn topk_k_larger_than_len_is_identity() {
        let g = vec![1.0, -2.0];
        let s = topk_compress(&g, 10);
        assert_eq!(s.to_dense(), g);
    }

    #[test]
    fn sign_roundtrip_preserves_signs() {
        let g = vec![0.5, -1.5, 2.0, -0.1];
        let s = sign_compress(&g);
        let d = sign_decompress(&s);
        for (orig, dec) in g.iter().zip(&d) {
            assert_eq!(orig.signum(), dec.signum());
        }
        assert!((s.scale - 1.025).abs() < 1e-6, "mean |g|");
    }

    #[test]
    fn sign_is_32x_compression() {
        let g = vec![1.0f32; 3200];
        let s = sign_compress(&g);
        assert_eq!(s.wire_bytes(), 400 + 4);
        assert!(12800 / s.wire_bytes() >= 31);
    }

    #[test]
    fn powersgd_recovers_low_rank_exactly() {
        // build an exactly rank-1 matrix u·vᵀ
        let u = [1.0f32, 2.0, 3.0];
        let v = [0.5f32, -1.0, 2.0, 4.0];
        let mut g = Vec::new();
        for a in u {
            for b in v {
                g.push(a * b);
            }
        }
        let (p, q) = powersgd_factorize(&g, 3, 1, 3, 0);
        let rec = powersgd_reconstruct(&p, &q);
        for (orig, r) in g.iter().zip(&rec) {
            assert!((orig - r).abs() < 1e-3, "{orig} vs {r}");
        }
    }

    #[test]
    fn powersgd_rank_controls_error_and_volume() {
        // random-ish full-rank matrix: higher rank → lower error
        let g: Vec<f32> = (0..64).map(|i| ((i * 37 % 13) as f32) - 6.0).collect();
        let err = |rank: usize| {
            let (p, q) = powersgd_factorize(&g, 8, rank, 4, 1);
            let rec = powersgd_reconstruct(&p, &q);
            g.iter()
                .zip(&rec)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(err(6) < err(1), "rank 6 must fit better than rank 1");
        assert!(powersgd_wire_bytes(8, 8, 1) < 4 * 64);
    }

    #[test]
    fn orthonormalize_produces_unit_orthogonal_columns() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0, 0.0, 1.0, 1.0, 0.0], [3, 2]);
        orthonormalize_columns(&mut a);
        let mut dot = 0.0;
        let mut n0 = 0.0;
        let mut n1 = 0.0;
        for i in 0..3 {
            dot += a.at(&[i, 0]) * a.at(&[i, 1]);
            n0 += a.at(&[i, 0]) * a.at(&[i, 0]);
            n1 += a.at(&[i, 1]) * a.at(&[i, 1]);
        }
        assert!(dot.abs() < 1e-5);
        assert!((n0 - 1.0).abs() < 1e-5);
        assert!((n1 - 1.0).abs() < 1e-5);
    }
}
