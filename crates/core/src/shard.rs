//! Sharded parameter-server training: K instances of the *unmodified*
//! elastic PS, each serving one contiguous range of the flat parameter
//! vector, plus the worker loop that fans its pushes out to all of them.
//!
//! Every entry point here is a thin adapter. The servers run
//! [`selsync_comm::elastic::run_elastic_server`] verbatim over a
//! [`ShardView`] that relabels the shards-first physical fabric as the
//! monolithic logical world, so each shard inherits the full PR 3
//! recovery story — crash-consistent `.prev` checkpoints, resumable
//! restart, hot-standby promotion — *per shard*: one shard can crash,
//! promote its standby or resume from its own checkpoint file
//! ([`shard_state_path`]), and catch its workers up while the other
//! K − 1 shards keep serving their ranges. The workers run the ordinary
//! elastic training loop over a `ShardSession` whose rounds go through
//! [`ShardedPsClient`]'s parallel fan-out.
//!
//! At K = 1 the view is a pure relabeling and the client's fan-out
//! degenerates to the monolithic message sequence byte-for-byte, so a
//! K = 1 sharded run is bit-identical to the monolithic path (proved by
//! the `shard_processes` suite).

use crate::checkpoint;
use crate::config::RunConfig;
use crate::elastic::{
    alive_ranks, elastic_loop, server_checkpoint_writer, server_elastic_config, validate_elastic,
    ElasticOptions, PsSession,
};
use crate::trainer::WorkerOutput;
use crate::workload::Workload;
use selsync_comm::elastic::{
    join_request, run_elastic_server, run_elastic_server_from, run_standby_server, ElasticReport,
    ServerState, StandbyOutcome,
};
use selsync_comm::shard::{ShardClientConfig, ShardedPsClient};
use selsync_comm::{FlatVec, Transport, TransportError};
use selsync_nn::flat::flat_params;
use selsync_shard::{Role, ShardLayout, ShardMap, ShardView, ViewRole};
use std::path::{Path, PathBuf};

/// Where shard `s` keeps its durable state relative to the run's base
/// checkpoint path: `<ckpt>.s<s>` (each with its own `.prev`
/// generation). One file per shard is what makes recovery independent:
/// a crashed shard resumes from *its* last sync without touching its
/// siblings' files.
pub fn shard_state_path(base: &Path, s: usize) -> PathBuf {
    let mut name = base
        .file_name()
        .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
    name.push_str(&format!(".s{s}"));
    base.with_file_name(name)
}

/// Options for one shard: same knobs, checkpoint redirected to the
/// shard's own file.
fn shard_opts(opts: &ElasticOptions, s: usize) -> ElasticOptions {
    let mut so = opts.clone();
    so.checkpoint = opts.checkpoint.as_ref().map(|p| shard_state_path(p, s));
    so
}

/// Widen one shard server's eviction budget to cover a *sibling*
/// shard's recovery window. A worker whose fan-out is stalled on a dead
/// shard goes silent toward the healthy shards for up to `ps_patience`
/// (its per-shard failover budget); without this allowance the healthy
/// shards' free-running round clocks would read that stall as worker
/// death and evict the whole cluster. Fault-free rounds never
/// accumulate misses, so this does not perturb the K = 1 bit-identity
/// with the monolithic path — it only slows eviction of genuinely dead
/// workers by the patience window (documented in DESIGN.md §10).
fn widen_for_sibling_recovery(
    cfg: &mut selsync_comm::elastic::ElasticConfig,
    opts: &ElasticOptions,
) {
    let round_ms = cfg.round_timeout.as_millis().max(1);
    let stall_rounds = (opts.ps_patience.as_millis() / round_ms) as u32 + 1;
    cfg.max_missed = cfg.max_missed.saturating_add(stall_rounds);
}

/// The partition map every rank of a sharded run computes: the model's
/// flat parameter count split over the layout's K shards.
pub fn shard_map_for(workload: &Workload, layout: &ShardLayout) -> ShardMap {
    let total = flat_params(workload.build_model().as_visitor()).len() as u64;
    ShardMap::compute(total, layout.k)
}

fn expect_shard(rank: usize, layout: &ShardLayout) -> usize {
    match layout.role_of(rank) {
        Role::Shard(s) => s,
        // lint:allow(unwrap-in-prod): launch-time wiring check — a rank
        // started under the wrong role must die loudly before serving
        r => panic!("rank {rank} is {r:?}, not a shard server"),
    }
}

/// Run one shard server of a sharded run. Blocks until every worker has
/// finished or been evicted; returns this shard's membership history and
/// final range parameters.
///
/// # Errors
/// As [`crate::elastic::run_elastic_server_rank`].
pub fn run_shard_server_rank<T: Transport>(
    ep: T,
    config: &RunConfig,
    workload: &Workload,
    opts: &ElasticOptions,
    layout: ShardLayout,
) -> Result<ElasticReport, TransportError> {
    validate_elastic(config, workload);
    assert_eq!(layout.n_workers, config.n_workers, "layout/config mismatch");
    let s = expect_shard(ep.id(), &layout);
    let full = flat_params(workload.build_model().as_visitor());
    let map = ShardMap::compute(full.len() as u64, layout.k);
    let init = map.slice(&full, s).to_vec();
    let sopts = shard_opts(opts, s);
    let mut cfg = server_elastic_config(config, &sopts);
    cfg.shard_map = Some(map.spec().clone());
    widen_for_sibling_recovery(&mut cfg, opts);
    let view = ShardView::new(ep, layout, s, ViewRole::Server);
    run_elastic_server(
        view,
        config.n_workers,
        init,
        &cfg,
        server_checkpoint_writer(config, &sopts),
    )
}

/// Restart one shard server from its recovered
/// [`checkpoint::TrainState`] (loaded from [`shard_state_path`]):
/// training on this range resumes from its last durable sync while the
/// sibling shards keep serving uninterrupted.
///
/// # Errors
/// As [`run_shard_server_rank`].
pub fn run_shard_server_rank_from<T: Transport>(
    ep: T,
    config: &RunConfig,
    workload: &Workload,
    opts: &ElasticOptions,
    layout: ShardLayout,
    state: &checkpoint::TrainState,
) -> Result<ElasticReport, TransportError> {
    validate_elastic(config, workload);
    assert_eq!(layout.n_workers, config.n_workers, "layout/config mismatch");
    let s = expect_shard(ep.id(), &layout);
    let map = shard_map_for(workload, &layout);
    assert_eq!(
        state.params.len(),
        map.len_of(s),
        "checkpoint holds a different range than shard {s} owns"
    );
    assert_eq!(
        state.alive.len(),
        config.n_workers,
        "checkpoint membership must match the configured worker count"
    );
    let sopts = shard_opts(opts, s);
    let mut cfg = server_elastic_config(config, &sopts);
    cfg.shard_map = Some(map.spec().clone());
    widen_for_sibling_recovery(&mut cfg, opts);
    // same liveness grace as the monolithic restart: the workers'
    // in-flight rounds died with the old shard process
    cfg.resume_grace = opts.reply_timeout * 2 + opts.round_timeout;
    let view = ShardView::new(ep, layout, s, ViewRole::Server);
    run_elastic_server_from(
        view,
        ServerState {
            step: state.step,
            syncs: state.syncs,
            global: state.params.clone(),
            alive: state.alive.clone(),
            done: state.done.clone(),
            evictions: state.evictions.clone(),
            joins: state.joins.clone(),
        },
        &cfg,
        server_checkpoint_writer(config, &sopts),
    )
}

/// Run one shard's hot standby: shadow that shard's sync state, promote
/// to a full shard server if its workers fail over here, and keep
/// writing the same per-shard checkpoint once promoted.
///
/// # Errors
/// Propagates unrecoverable transport faults.
pub fn run_shard_standby_rank<T: Transport>(
    ep: T,
    config: &RunConfig,
    workload: &Workload,
    opts: &ElasticOptions,
    layout: ShardLayout,
) -> Result<StandbyOutcome, TransportError> {
    validate_elastic(config, workload);
    assert_eq!(layout.n_workers, config.n_workers, "layout/config mismatch");
    let s = match layout.role_of(ep.id()) {
        Role::Standby(s) => s,
        // lint:allow(unwrap-in-prod): launch-time wiring check, as above
        r => panic!("rank {} is {r:?}, not a shard standby", ep.id()),
    };
    let full = flat_params(workload.build_model().as_visitor());
    let map = ShardMap::compute(full.len() as u64, layout.k);
    let init = map.slice(&full, s).to_vec();
    let sopts = shard_opts(opts, s);
    let mut cfg = server_elastic_config(config, &sopts);
    cfg.shard_map = Some(map.spec().clone());
    widen_for_sibling_recovery(&mut cfg, opts);
    // the same promotion grace/silence budget as the monolithic standby
    cfg.resume_grace = opts.ps_patience + opts.reply_timeout;
    let max_silence = (opts.ps_patience + opts.reply_timeout) * 3;
    let view = ShardView::new(ep, layout, s, ViewRole::Standby);
    run_standby_server(
        view,
        config.n_workers,
        init,
        &cfg,
        max_silence,
        server_checkpoint_writer(config, &sopts),
    )
}

/// [`PsSession`] over a sharded PS group: each round fans out through
/// the [`ShardedPsClient`].
struct ShardSession<'a, T: Transport> {
    ep: &'a mut T,
    client: ShardedPsClient,
}

impl<T: Transport> PsSession for ShardSession<'_, T> {
    fn me(&self) -> usize {
        self.client.me()
    }

    fn heartbeat(&mut self, step: u64, bit: u8) -> Result<Vec<u8>, TransportError> {
        self.client.heartbeat(&mut *self.ep, step, bit)
    }

    fn sync(&mut self, step: u64, params: &[f32]) -> Result<FlatVec, TransportError> {
        self.client.sync(&mut *self.ep, step, params)
    }

    fn shutdown(&mut self, step: u64) -> Result<(), TransportError> {
        self.client.shutdown(&mut *self.ep, step);
        Ok(())
    }
}

fn build_client(
    ep_rank: usize,
    config: &RunConfig,
    opts: &ElasticOptions,
    layout: &ShardLayout,
    map: &ShardMap,
) -> ShardedPsClient {
    let w = match layout.role_of(ep_rank) {
        Role::Worker(w) => w,
        // lint:allow(unwrap-in-prod): launch-time wiring check, as above
        r => panic!("rank {ep_rank} is {r:?}, not a worker"),
    };
    ShardedPsClient::new(
        w,
        map.spec().clone(),
        &layout.shard_ranks(),
        layout.standby_ranks().as_deref(),
        ShardClientConfig {
            reply_timeout: opts.reply_timeout,
            comm_retries: opts.comm_retries,
            ps_patience: opts.ps_patience,
            // per-shard Bucket frames; each shard reassembles its range
            bucket: config.overlap_buckets,
        },
    )
}

/// Run one worker of a sharded run from step 0: prove map agreement
/// with every shard, then train the ordinary elastic loop with fan-out
/// rounds.
///
/// # Errors
/// [`TransportError::Evicted`] if any shard expelled this rank;
/// [`TransportError::Protocol`] if the map handshake fails; other
/// variants on unrecoverable comm faults.
pub fn run_shard_worker_rank<T: Transport>(
    ep: &mut T,
    config: &RunConfig,
    workload: &Workload,
    opts: &ElasticOptions,
    layout: ShardLayout,
) -> Result<WorkerOutput, TransportError> {
    validate_elastic(config, workload);
    assert_eq!(layout.n_workers, config.n_workers, "layout/config mismatch");
    let map = shard_map_for(workload, &layout);
    let mut client = build_client(ep.id(), config, opts, &layout, &map);
    client.handshake(&mut *ep)?;
    let members: Vec<usize> = (0..config.n_workers).collect();
    let mut sess = ShardSession { ep, client };
    elastic_loop(&mut sess, config, workload, opts, None, None, 0, members)
}

/// Re-admit this rank into a running sharded experiment: request a join
/// grant from every shard, assemble the warm-start parameters from the
/// per-range grants, and resume at shard 0's assigned step (shard 0 is
/// the authoritative membership, and all shards grant at the same sync
/// boundary because they see the same flags history).
///
/// # Errors
/// `RecvTimeout` if any shard never grants the join; otherwise as
/// [`run_shard_worker_rank`].
pub fn rejoin_shard_worker_rank<T: Transport>(
    ep: &mut T,
    config: &RunConfig,
    workload: &Workload,
    opts: &ElasticOptions,
    layout: ShardLayout,
) -> Result<(u64, WorkerOutput), TransportError> {
    validate_elastic(config, workload);
    assert_eq!(layout.n_workers, config.n_workers, "layout/config mismatch");
    let map = shard_map_for(workload, &layout);
    let worker = match layout.role_of(ep.id()) {
        Role::Worker(w) => w,
        // lint:allow(unwrap-in-prod): launch-time wiring check, as above
        r => panic!("rank {} is {r:?}, not a worker", ep.id()),
    };
    let mut init = vec![0.0f32; map.total() as usize];
    let mut members = Vec::new();
    let mut resume_step = 0;
    for s in 0..layout.k {
        let grant = join_request(ep, layout.shard_rank(s), opts.reply_timeout)?;
        let range = map.range(s);
        if grant.params.len() != range.len() {
            return Err(TransportError::Protocol(format!(
                "shard {s} join grant carried {} params, its range holds {}",
                grant.params.len(),
                range.len()
            )));
        }
        init[range].copy_from_slice(&grant.params);
        if s == 0 {
            members = alive_ranks(&grant.status);
            resume_step = grant.resume_step;
        }
    }
    // this rank's private state (optimizer slots, Δ(g) stream) survives
    // in the same per-worker mirror file as the monolithic path
    let private = opts
        .checkpoint
        .as_ref()
        .and_then(|p| {
            checkpoint::load_state_with_fallback(crate::elastic::worker_state_path(p, worker)).ok()
        })
        .map(|(st, _)| st);
    let mut client = build_client(ep.id(), config, opts, &layout, &map);
    client.handshake(&mut *ep)?;
    let mut sess = ShardSession { ep, client };
    let out = elastic_loop(
        &mut sess,
        config,
        workload,
        opts,
        Some(init),
        private,
        resume_step,
        members,
    )?;
    Ok((resume_step, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Aggregation, RunConfig, Strategy};
    use crate::elastic::{run_elastic_server_rank, run_elastic_worker_rank};
    use selsync_comm::Fabric;
    use selsync_nn::models::ModelKind;
    use std::thread;
    use std::time::Duration;

    fn elastic_cfg(n_workers: usize, steps: u64, delta: f32) -> RunConfig {
        RunConfig {
            strategy: Strategy::SelSync {
                delta,
                aggregation: Aggregation::Parameter,
            },
            n_workers,
            max_steps: steps,
            eval_every: steps,
            ..RunConfig::quick_defaults()
        }
    }

    fn small_workload() -> Workload {
        Workload::vision(ModelKind::VggMini, 96, 32, 7)
    }

    /// Run a full sharded cluster on one fabric; returns shard reports
    /// (by shard) and worker outputs (by logical worker).
    fn run_sharded(
        cfg: &RunConfig,
        wl: &Workload,
        opts: &ElasticOptions,
        k: usize,
    ) -> (Vec<ElasticReport>, Vec<WorkerOutput>) {
        let layout = ShardLayout::new(k, cfg.n_workers, opts.standby);
        let mut eps: Vec<_> = Fabric::new(layout.total_ranks()).into_iter().collect();
        let mut shard_handles = Vec::new();
        let mut worker_handles = Vec::new();
        // spawn back-to-front so remove() indices stay valid
        while let Some(ep) = eps.pop() {
            let (cfg, wl, opts) = (cfg.clone(), wl.clone(), opts.clone());
            match layout.role_of(ep.id()) {
                Role::Shard(s) => shard_handles.push((
                    s,
                    thread::spawn(move || run_shard_server_rank(ep, &cfg, &wl, &opts, layout)),
                )),
                Role::Worker(w) => worker_handles.push((
                    w,
                    thread::spawn(move || {
                        let mut ep = ep;
                        run_shard_worker_rank(&mut ep, &cfg, &wl, &opts, layout)
                    }),
                )),
                Role::Standby(_) => {
                    thread::spawn(move || run_shard_standby_rank(ep, &cfg, &wl, &opts, layout));
                }
            }
        }
        shard_handles.sort_by_key(|(s, _)| *s);
        worker_handles.sort_by_key(|(w, _)| *w);
        let reports = shard_handles
            .into_iter()
            .map(|(_, h)| h.join().unwrap().unwrap())
            .collect();
        let outs = worker_handles
            .into_iter()
            .map(|(_, h)| h.join().unwrap().unwrap())
            .collect();
        (reports, outs)
    }

    #[test]
    fn k1_sharded_run_is_bit_identical_to_monolithic() {
        let n = 2;
        let cfg = elastic_cfg(n, 8, 0.25);
        let wl = small_workload();
        let opts = ElasticOptions::with_liveness(Duration::from_millis(500), 3);

        // monolithic reference
        let mut eps = Fabric::new(n + 1);
        let server_ep = eps.pop().unwrap();
        let (s_cfg, s_wl, s_opts) = (cfg.clone(), wl.clone(), opts.clone());
        let server =
            thread::spawn(move || run_elastic_server_rank(server_ep, &s_cfg, &s_wl, &s_opts));
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                let (cfg, wl, opts) = (cfg.clone(), wl.clone(), opts.clone());
                thread::spawn(move || run_elastic_worker_rank(&mut ep, &cfg, &wl, &opts))
            })
            .collect();
        let mut mono: Vec<WorkerOutput> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        mono.sort_by_key(|o| o.worker);
        let mono_report = server.join().unwrap().unwrap();

        // K = 1 sharded run of the same seed/config
        let (reports, sharded) = run_sharded(&cfg, &wl, &opts, 1);

        assert_eq!(reports[0].final_params, mono_report.final_params);
        assert_eq!(reports[0].syncs, mono_report.syncs);
        for (m, s) in mono.iter().zip(&sharded) {
            assert_eq!(m.worker, s.worker);
            assert_eq!(m.final_params, s.final_params, "worker {}", m.worker);
            assert_eq!(m.records.len(), s.records.len());
            for (rm, rs) in m.records.iter().zip(&s.records) {
                assert_eq!(rm.synced, rs.synced, "step {}", rm.step);
                assert_eq!(rm.loss.to_bits(), rs.loss.to_bits(), "step {}", rm.step);
            }
            assert_eq!(m.logical_sync_bytes, s.logical_sync_bytes);
        }
    }

    #[test]
    fn k2_shards_reassemble_the_global_vector() {
        let n = 2;
        let cfg = elastic_cfg(n, 6, 0.0); // δ=0: sync every step
        let wl = small_workload();
        let opts = ElasticOptions::with_liveness(Duration::from_millis(500), 3);
        let (reports, outs) = run_sharded(&cfg, &wl, &opts, 2);
        assert_eq!(reports.len(), 2);
        // both shards saw the same sync schedule
        assert_eq!(reports[0].syncs, reports[1].syncs);
        // concatenating the shard ranges rebuilds every worker's final
        // params exactly (δ=0 ⇒ the last step synced)
        let mut global = reports[0].final_params.clone();
        global.extend_from_slice(&reports[1].final_params);
        for o in &outs {
            assert_eq!(o.final_params, global, "worker {}", o.worker);
        }
    }

    /// Bucketing the per-shard pushes is a wire-format change only:
    /// a K = 2 run with small Bucket frames must finish bit-identical
    /// to the plain ShardPush run of the same seed.
    #[test]
    fn bucketed_sharded_run_is_bit_identical() {
        let n = 2;
        let mut cfg = elastic_cfg(n, 6, 0.0); // δ=0: sync every step
        let wl = small_workload();
        let opts = ElasticOptions::with_liveness(Duration::from_millis(500), 3);
        let (plain_reports, plain_outs) = run_sharded(&cfg, &wl, &opts, 2);
        cfg.overlap_buckets = Some(1000);
        let (bucket_reports, bucket_outs) = run_sharded(&cfg, &wl, &opts, 2);
        for (p, b) in plain_reports.iter().zip(&bucket_reports) {
            assert_eq!(p.final_params, b.final_params);
            assert_eq!(p.syncs, b.syncs);
        }
        for (p, b) in plain_outs.iter().zip(&bucket_outs) {
            assert_eq!(
                p.final_params
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                b.final_params
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "worker {}",
                p.worker
            );
        }
    }

    /// One shard dies mid-sync (the most adversarial point: pushes
    /// consumed, nothing durable, no replies) and resumes from its own
    /// `.s<shard>` checkpoint while shard 0 keeps serving. The workers
    /// must finish with parameters bit-identical to a fault-free run.
    #[test]
    fn one_shard_crash_resumes_from_its_own_checkpoint() {
        use selsync_comm::elastic::ServerCrashPoint;
        let n = 2;
        let cfg = elastic_cfg(n, 8, 0.25);
        let wl = small_workload();
        let mut opts = ElasticOptions::with_liveness(Duration::from_millis(300), 5);
        let dir = std::env::temp_dir().join(format!("selsync_shard_crash_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("ckpt.bin");
        opts.checkpoint = Some(base.clone());

        // fault-free reference (no checkpointing, same seed)
        let ref_opts = ElasticOptions::with_liveness(Duration::from_millis(300), 5);
        let (_, reference) = run_sharded(&cfg, &wl, &ref_opts, 2);

        let layout = ShardLayout::new(2, n, false);
        let mut eps: Vec<_> = Fabric::new(layout.total_ranks()).into_iter().collect();
        let mut shard_handles = Vec::new();
        let mut worker_handles = Vec::new();
        while let Some(ep) = eps.pop() {
            let (cfg, wl, mut opts) = (cfg.clone(), wl.clone(), opts.clone());
            match layout.role_of(ep.id()) {
                Role::Shard(s) => {
                    if s == 1 {
                        opts.server_crash = Some(ServerCrashPoint::MidSync(1));
                    }
                    let base = base.clone();
                    shard_handles.push((
                        s,
                        thread::spawn(move || {
                            let mut ep = ep;
                            let mut report =
                                run_shard_server_rank(&mut ep, &cfg, &wl, &opts, layout).unwrap();
                            if report.crashed {
                                assert_eq!(s, 1, "only shard 1 is scheduled to die");
                                thread::sleep(Duration::from_millis(100));
                                let (state, _) = checkpoint::load_state_with_fallback(
                                    shard_state_path(&base, s),
                                )
                                .unwrap();
                                let mut ropts = opts.clone();
                                ropts.server_crash = None;
                                report = run_shard_server_rank_from(
                                    &mut ep, &cfg, &wl, &ropts, layout, &state,
                                )
                                .unwrap();
                            }
                            report
                        }),
                    ));
                }
                Role::Worker(w) => worker_handles.push((
                    w,
                    thread::spawn(move || {
                        let mut ep = ep;
                        run_shard_worker_rank(&mut ep, &cfg, &wl, &opts, layout)
                    }),
                )),
                Role::Standby(_) => unreachable!(),
            }
        }
        worker_handles.sort_by_key(|(w, _)| *w);
        let outs: Vec<WorkerOutput> = worker_handles
            .into_iter()
            .map(|(_, h)| h.join().unwrap().unwrap())
            .collect();
        shard_handles.sort_by_key(|(s, _)| *s);
        let reports: Vec<ElasticReport> = shard_handles
            .into_iter()
            .map(|(_, h)| h.join().unwrap())
            .collect();

        assert!(
            reports[1].evictions.is_empty(),
            "{:?}",
            reports[1].evictions
        );
        assert!(
            reports[0].evictions.is_empty(),
            "{:?}",
            reports[0].evictions
        );
        for (r, o) in reference.iter().zip(&outs) {
            assert_eq!(
                o.lssr.total(),
                cfg.max_steps,
                "worker {} ran every step",
                o.worker
            );
            assert_eq!(
                r.final_params, o.final_params,
                "worker {}: surviving params must be bit-identical to fault-free",
                o.worker
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_state_path_is_per_shard() {
        let base = PathBuf::from("/tmp/run/ckpt.bin");
        assert_eq!(
            shard_state_path(&base, 0),
            PathBuf::from("/tmp/run/ckpt.bin.s0")
        );
        assert_ne!(shard_state_path(&base, 1), shard_state_path(&base, 2));
    }
}
