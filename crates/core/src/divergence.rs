//! Replica-divergence measures: how far worker models drift from one
//! another and from the global state — the quantity behind the paper's
//! GA-vs-PA argument (§III-C, Figs. 10/11).

/// L2 distance between two flat parameter vectors.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "parameter vectors must align");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            (d * d) as f64
        })
        .sum::<f64>()
        .sqrt() as f32
}

/// Maximum pairwise L2 distance among a set of replicas
/// (0 when all replicas are identical — the PA post-sync invariant).
pub fn max_pairwise_l2(replicas: &[Vec<f32>]) -> f32 {
    let mut max = 0.0f32;
    for i in 0..replicas.len() {
        for j in i + 1..replicas.len() {
            max = max.max(l2_distance(&replicas[i], &replicas[j]));
        }
    }
    max
}

/// Mean L2 distance of each replica from their average — the bounded
/// local-to-global divergence SelSync maintains (§III-B).
pub fn mean_distance_from_average(replicas: &[Vec<f32>]) -> f32 {
    if replicas.is_empty() {
        return 0.0;
    }
    let n = replicas.len();
    let d = replicas[0].len();
    let mut avg = vec![0.0f32; d];
    for r in replicas {
        for (a, v) in avg.iter_mut().zip(r) {
            *a += v;
        }
    }
    for a in &mut avg {
        *a /= n as f32;
    }
    replicas.iter().map(|r| l2_distance(r, &avg)).sum::<f32>() / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_replicas_have_zero_divergence() {
        let r = vec![vec![1.0, 2.0]; 4];
        assert_eq!(max_pairwise_l2(&r), 0.0);
        assert_eq!(mean_distance_from_average(&r), 0.0);
    }

    #[test]
    fn l2_known_value() {
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn max_pairwise_finds_the_outlier() {
        let r = vec![vec![0.0], vec![0.1], vec![10.0]];
        assert!((max_pairwise_l2(&r) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn mean_distance_is_spread_measure() {
        let tight = vec![vec![1.0], vec![1.1]];
        let wide = vec![vec![0.0], vec![10.0]];
        assert!(mean_distance_from_average(&wide) > mean_distance_from_average(&tight) * 10.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        l2_distance(&[1.0], &[1.0, 2.0]);
    }
}
