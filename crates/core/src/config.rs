//! Training-run configuration: the strategy under test and everything
//! §IV-A of the paper fixes per experiment.

use selsync_data::{InjectionConfig, PartitionScheme};
use selsync_nn::LrSchedule;
use serde::{Deserialize, Serialize};

/// How model state is combined during a synchronization (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Average gradients, each worker applies the average locally (GA).
    Gradient,
    /// Average parameters on the PS, replicas adopt the average (PA) —
    /// SelSync's default and the better choice semi-synchronously.
    Parameter,
}

/// The distributed-training algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Bulk-synchronous parallel: aggregate on every step (§II-A).
    Bsp {
        /// GA and PA are equivalent here given identical init (§III-C).
        aggregation: Aggregation,
    },
    /// Federated averaging with participation fraction `c` and
    /// synchronization factor `e` (sync every `e` of an epoch, §II-B).
    FedAvg {
        /// Fraction of workers whose updates are collected per sync.
        c: f32,
        /// Synchronization factor E = 1/x for x syncs per epoch.
        e: f32,
    },
    /// Stale-synchronous parallel with staleness bound `s` (§II-C).
    Ssp {
        /// Max steps a fast worker may lead the slowest by.
        staleness: u64,
    },
    /// SelSync (Alg. 1): sync only when any worker's Δ(g_i) ≥ δ.
    SelSync {
        /// Threshold on relative gradient change. 0 ⇒ BSP;
        /// above the run's max Δ ⇒ pure local SGD (§III-B).
        delta: f32,
        /// GA for the §IV-D ablation; PA is the paper's choice.
        aggregation: Aggregation,
    },
    /// Pure local SGD — the δ → ∞ limit; workers never communicate.
    LocalOnly,
}

impl Strategy {
    /// Short label for experiment output.
    pub fn label(&self) -> String {
        match self {
            Strategy::Bsp { .. } => "BSP".into(),
            Strategy::FedAvg { c, e } => format!("FedAvg({c}, {e})"),
            Strategy::Ssp { staleness } => format!("SSP s={staleness}"),
            Strategy::SelSync { delta, aggregation } => {
                let agg = match aggregation {
                    Aggregation::Gradient => "GA",
                    Aggregation::Parameter => "PA",
                };
                format!("SelSync δ={delta} {agg}")
            }
            Strategy::LocalOnly => "Local-SGD".into(),
        }
    }
}

/// How synchronization payloads are exchanged (§III-E: "pullFromPS and
/// pushToPS ... can be easily swapped for an AllReduce collective").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncBackend {
    /// Central parameter server (the paper's deployment).
    ParameterServer,
    /// Decentralized bandwidth-optimal ring allreduce among workers.
    RingAllReduce,
}

/// Lossy gradient compression applied on gradient-aggregation syncs —
/// the §II-D baselines, with DGC-style error feedback.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CompressionKind {
    /// Keep the top `ratio` fraction of gradient entries by magnitude.
    TopK {
        /// Fraction kept, in (0, 1].
        ratio: f32,
    },
    /// 1-bit sign quantization with a mean-magnitude scale.
    SignSgd,
    /// Rank-`rank` PowerSGD low-rank factorization.
    PowerSgd {
        /// Approximation rank.
        rank: usize,
    },
}

/// Which optimizer a run uses (§IV-A recipes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimKind {
    /// SGD with momentum and weight decay.
    Sgd {
        /// Momentum coefficient.
        momentum: f32,
        /// L2 weight decay.
        weight_decay: f32,
    },
    /// Adam (AlexNet's recipe).
    Adam,
}

/// Complete configuration of one distributed training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunConfig {
    /// Algorithm under test.
    pub strategy: Strategy,
    /// Cluster size N (paper: 16 workers + 1 PS).
    pub n_workers: usize,
    /// Per-worker mini-batch size b.
    pub batch_size: usize,
    /// Total training steps per worker.
    pub max_steps: u64,
    /// Evaluate the test metric every this many steps (worker 0).
    pub eval_every: u64,
    /// IID partitioning scheme (ignored when `noniid_labels` is set).
    pub partition: PartitionScheme,
    /// Non-IID label-skew: labels per worker (None ⇒ IID).
    pub noniid_labels: Option<usize>,
    /// Data injection (α, β) for non-IID runs (§III-E).
    pub injection: Option<InjectionConfig>,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// Optimizer.
    pub optim: OptimKind,
    /// Δ(g) EWMA window (paper default 25).
    pub ewma_window: usize,
    /// Δ(g) EWMA smoothing factor (paper: N/100).
    pub ewma_alpha: f32,
    /// Master seed: model init, partition shuffles, injection subsets.
    pub seed: u64,
    /// Straggler injection: `(worker_id, delay_us)` makes one worker
    /// sleep that long per step — the systems heterogeneity of §II-A
    /// that SSP exists to tolerate and that blocks BSP barriers.
    pub straggler: Option<(usize, u64)>,
    /// Synchronization transport (PS or decentralized ring, §III-E).
    /// FedAvg's partial participation and SSP's staleness service are
    /// PS concepts; those strategies require `ParameterServer`.
    pub backend: SyncBackend,
    /// Lossy gradient compression with error feedback, applied on
    /// gradient-aggregation syncs (§II-D baselines).
    pub compression: Option<CompressionKind>,
    /// Global gradient-norm clipping applied after every backward pass
    /// (one of the §II-E hyperparameters shaping gradient trajectories).
    pub grad_clip: Option<f32>,
    /// Pipelined gradient pushes (DDP-style bucketing, DESIGN.md §12):
    /// chunk the flat gradient into buckets of this many values and ship
    /// each bucket to the PS the moment backward finalizes it,
    /// overlapping communication with the remaining backprop. `None`
    /// keeps the monolithic push. Requires `Bsp { Gradient }` over the
    /// parameter server with no clipping or compression — both are
    /// whole-vector transforms that need the full gradient first.
    #[serde(default)]
    pub overlap_buckets: Option<usize>,
    /// Ship gradient-aggregation payloads in their compact wire form
    /// (`SparseGrad` / `SignGrad` / `LowRank` codec variants) instead of
    /// densifying before the send; the server densifies at arrival.
    /// Cuts physical wire bytes without changing `logical_sync_bytes`
    /// accounting. Off by default so existing ablation byte counts stay
    /// stable. Requires `compression` to be set and the PS backend.
    #[serde(default)]
    pub wire_compression: bool,
}

impl RunConfig {
    /// Small, fast defaults used by tests and examples: 4 workers,
    /// SelSync-style instrumentation, SGD with momentum, SelDP.
    pub fn quick_defaults() -> Self {
        RunConfig {
            strategy: Strategy::Bsp {
                aggregation: Aggregation::Parameter,
            },
            n_workers: 4,
            batch_size: 8,
            max_steps: 100,
            eval_every: 25,
            partition: PartitionScheme::SelDp,
            noniid_labels: None,
            injection: None,
            lr: LrSchedule::Constant { lr: 0.05 },
            optim: OptimKind::Sgd {
                momentum: 0.9,
                weight_decay: 0.0,
            },
            ewma_window: 25,
            ewma_alpha: 0.16,
            seed: 42,
            straggler: None,
            backend: SyncBackend::ParameterServer,
            compression: None,
            grad_clip: None,
            overlap_buckets: None,
            wire_compression: false,
        }
    }

    /// The paper's EWMA factor for this cluster size (N/100, §III-A).
    pub fn paper_ewma_alpha(n_workers: usize) -> f32 {
        (n_workers as f32 / 100.0).clamp(0.01, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_informative() {
        assert_eq!(
            Strategy::SelSync {
                delta: 0.25,
                aggregation: Aggregation::Parameter
            }
            .label(),
            "SelSync δ=0.25 PA"
        );
        assert_eq!(
            Strategy::FedAvg { c: 1.0, e: 0.25 }.label(),
            "FedAvg(1, 0.25)"
        );
        assert_eq!(Strategy::Ssp { staleness: 100 }.label(), "SSP s=100");
    }

    #[test]
    fn paper_alpha_for_16_workers_is_point_16() {
        assert!((RunConfig::paper_ewma_alpha(16) - 0.16).abs() < 1e-6);
        assert_eq!(RunConfig::paper_ewma_alpha(500), 1.0, "clamped");
    }

    #[test]
    fn config_serializes_roundtrip() {
        let c = RunConfig::quick_defaults();
        let json = serde_json::to_string(&c).unwrap();
        let back: RunConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_workers, c.n_workers);
        assert_eq!(back.strategy, c.strategy);
    }
}
