//! # selsync-core
//!
//! The paper's contribution: **SelSync** — selective synchronization for
//! distributed DNN training (Alg. 1) — together with the baselines it is
//! evaluated against (BSP, FedAvg, SSP), a threaded distributed trainer
//! that runs any of them over the `selsync-comm` fabric, the timing
//! replayer that converts a run's decision log into paper-scale
//! wall-clock via the network cost model, and the gradient-compression
//! extensions the paper situates itself against (§II-D).
//!
//! Quick start:
//!
//! ```no_run
//! use selsync_core::prelude::*;
//!
//! let workload = Workload::vision(ModelKind::ResNetMini, 512, 256, 42);
//! let config = RunConfig {
//!     strategy: Strategy::SelSync { delta: 0.25, aggregation: Aggregation::Parameter },
//!     n_workers: 4,
//!     ..RunConfig::quick_defaults()
//! };
//! let result = run_distributed(&config, &workload);
//! println!("LSSR = {:.3}, final metric = {:.3}", result.lssr.lssr(), result.final_metric);
//! ```

// The unsafe-outside-kernels invariant (selsync-lint), compiler-enforced:
// SIMD and socket code live in crates/tensor and crates/net only.
#![deny(unsafe_code)]

pub mod checkpoint;
pub mod compression;
pub mod config;
pub mod divergence;
pub mod elastic;
pub mod metrics;
pub mod shard;
pub mod timing;
pub mod trainer;
pub mod workload;

pub use checkpoint::{CheckpointError, TrainState};
pub use config::{Aggregation, CompressionKind, OptimKind, RunConfig, Strategy, SyncBackend};
pub use elastic::{
    rejoin_elastic_worker_rank, run_elastic_server_rank, run_elastic_server_rank_from,
    run_elastic_worker_rank, run_standby_server_rank, worker_state_path, ElasticOptions,
};
pub use metrics::{EvalRecord, RunResult, StepRecord};
pub use shard::{
    rejoin_shard_worker_rank, run_shard_server_rank, run_shard_server_rank_from,
    run_shard_standby_rank, run_shard_worker_rank, shard_map_for, shard_state_path,
};
pub use trainer::{run_distributed, run_server_rank, run_worker_rank, WorkerOutput};
pub use workload::Workload;

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::config::{
        Aggregation, CompressionKind, OptimKind, RunConfig, Strategy, SyncBackend,
    };
    pub use crate::metrics::{EvalRecord, RunResult, StepRecord};
    pub use crate::timing::{
        simulate_heterogeneous, simulate_timeline, TimingBreakdown, TimingParams,
    };
    pub use crate::trainer::run_distributed;
    pub use crate::workload::Workload;
    pub use selsync_data::{InjectionConfig, PartitionScheme};
    pub use selsync_nn::models::ModelKind;
    pub use selsync_nn::LrSchedule;
}
