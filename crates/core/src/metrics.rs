//! Run results: step logs, evaluation curves, and convergence analysis.

use selsync_stats::LssrCounter;
use serde::{Deserialize, Serialize};

/// One training step as seen by worker 0.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StepRecord {
    /// 0-based step index.
    pub step: u64,
    /// Local training loss on worker 0's mini-batch.
    pub loss: f32,
    /// Whether this step invoked the aggregation op.
    pub synced: bool,
    /// Δ(g_i) on worker 0 (NaN for strategies that don't compute it).
    /// JSON represents NaN as `null`; deserialization maps it back.
    pub delta_g: f32,
}

/// One periodic evaluation on the held-out split (worker 0's model).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Step at which the evaluation ran.
    pub step: u64,
    /// Worker 0's fractional epoch at that step.
    pub epoch: f64,
    /// The workload metric: accuracy in `[0, 1]`, or perplexity (> 1).
    pub metric: f32,
}

/// Everything a distributed run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Per-step log from worker 0.
    pub step_records: Vec<StepRecord>,
    /// Evaluation curve.
    pub evals: Vec<EvalRecord>,
    /// Local/sync step counts (Eqn. 4).
    pub lssr: LssrCounter,
    /// Final test metric.
    pub final_metric: f32,
    /// Final global parameters (from the PS).
    pub final_params: Vec<f32>,
    /// Final parameters of every worker replica, for divergence
    /// analysis (Fig. 10/11).
    pub worker_params: Vec<Vec<f32>>,
    /// Total fabric traffic in wire bytes (real messages sent).
    pub comm_bytes: u64,
    /// Worker-0 model bytes contributed to syncs after compression —
    /// the communication-volume axis the §II-D baselines optimize.
    pub logical_sync_bytes: u64,
    /// Steps each worker ran.
    pub steps_run: u64,
}

impl RunResult {
    /// Best metric over the run (max for accuracy, min for perplexity).
    pub fn best_metric(&self, lower_is_better: bool) -> f32 {
        let it = self.evals.iter().map(|e| e.metric);
        if lower_is_better {
            it.fold(f32::INFINITY, f32::min)
        } else {
            it.fold(f32::NEG_INFINITY, f32::max)
        }
    }

    /// First step at which the metric reached `target`
    /// (≥ for accuracy, ≤ for perplexity). `None` if never reached.
    pub fn steps_to_target(&self, target: f32, lower_is_better: bool) -> Option<u64> {
        self.evals
            .iter()
            .find(|e| {
                if lower_is_better {
                    e.metric <= target
                } else {
                    e.metric >= target
                }
            })
            .map(|e| e.step)
    }

    /// Fraction of steps that synchronized.
    pub fn sync_fraction(&self) -> f64 {
        1.0 - self.lssr.lssr()
    }

    /// Maximum pairwise L2 distance between worker replicas at the end —
    /// the replica-divergence quantity behind Fig. 10/11.
    pub fn replica_divergence(&self) -> f32 {
        crate::divergence::max_pairwise_l2(&self.worker_params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with_evals(metrics: &[f32]) -> RunResult {
        RunResult {
            step_records: Vec::new(),
            evals: metrics
                .iter()
                .enumerate()
                .map(|(i, &m)| EvalRecord {
                    step: i as u64 * 10,
                    epoch: i as f64,
                    metric: m,
                })
                .collect(),
            lssr: LssrCounter::new(),
            final_metric: *metrics.last().unwrap_or(&0.0),
            final_params: Vec::new(),
            worker_params: Vec::new(),
            comm_bytes: 0,
            logical_sync_bytes: 0,
            steps_run: 0,
        }
    }

    #[test]
    fn best_metric_direction() {
        let r = result_with_evals(&[0.5, 0.8, 0.7]);
        assert_eq!(r.best_metric(false), 0.8);
        assert_eq!(r.best_metric(true), 0.5);
    }

    #[test]
    fn steps_to_target_finds_first_crossing() {
        let r = result_with_evals(&[0.5, 0.7, 0.9]);
        assert_eq!(r.steps_to_target(0.7, false), Some(10));
        assert_eq!(r.steps_to_target(0.95, false), None);
        // perplexity-style
        let p = result_with_evals(&[100.0, 50.0, 20.0]);
        assert_eq!(p.steps_to_target(50.0, true), Some(10));
    }

    #[test]
    fn sync_fraction_complements_lssr() {
        let mut r = result_with_evals(&[0.1]);
        for _ in 0..3 {
            r.lssr.record_local();
        }
        r.lssr.record_sync();
        assert!((r.sync_fraction() - 0.25).abs() < 1e-12);
    }
}
