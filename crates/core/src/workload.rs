//! Workloads: a paper model kind paired with train/test data and a
//! model factory, shared read-only across worker threads.

use selsync_data::{TextDataset, VisionDataset};
use selsync_nn::models::{
    AlexNetMini, Mlp, Model, ModelKind, ResNetMini, TransformerMini, VggMini,
};

/// Sequence length used by the Transformer workload (paper bptt = 35,
/// scaled to the mini).
pub const SEQ_LEN: usize = 12;

/// Topics used by [`Workload::text_with_topics`] (WikiText articles
/// analogue): distinct Markov chains over contiguous stream segments,
/// so DefDP chunks are topic-skewed exactly as the paper's data is
/// article-skewed. The default [`Workload::text`] corpus is stationary
/// (one topic), keeping the headline LM task within the mini model's
/// capacity; partitioning experiments opt into the heterogeneous corpus.
pub const TEXT_TOPICS: usize = 4;

/// Training + test data for one workload.
#[derive(Debug, Clone)]
pub enum WorkloadData {
    /// Image classification (ResNet/VGG/AlexNet minis).
    Vision {
        /// Training split.
        train: VisionDataset,
        /// Held-out split (same teacher, disjoint samples).
        test: VisionDataset,
    },
    /// Language modeling (Transformer mini).
    Text {
        /// Training token stream.
        train: TextDataset,
        /// Held-out token stream (same chain).
        test: TextDataset,
    },
}

/// A complete workload: model kind, data, and the seed models are built
/// from (all replicas share it, so initial parameters are identical —
/// the §III-C precondition).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which paper workload this is.
    pub kind: ModelKind,
    /// The data.
    pub data: WorkloadData,
    /// Model-init seed.
    pub model_seed: u64,
    /// Warm-start parameters: when set, every fresh replica loads these
    /// instead of the seeded init (checkpoint resume).
    pub init_params: Option<Vec<f32>>,
}

/// A model instance of any workload kind (enum dispatch keeps worker
/// threads free of trait objects while remaining `Clone + Send`).
#[derive(Clone)]
#[allow(clippy::large_enum_variant)] // replicas are built once per worker
pub enum AnyModel {
    /// ResNet-style mini.
    ResNet(ResNetMini),
    /// VGG-style mini.
    Vgg(VggMini),
    /// AlexNet-style mini.
    AlexNet(AlexNetMini),
    /// Transformer mini.
    Transformer(TransformerMini),
    /// MLP (tests / overhead harnesses).
    Mlp(Mlp),
}

impl AnyModel {
    /// Borrow the inner model as the common [`Model`] trait.
    pub fn as_model(&mut self) -> &mut dyn Model {
        match self {
            AnyModel::ResNet(m) => m,
            AnyModel::Vgg(m) => m,
            AnyModel::AlexNet(m) => m,
            AnyModel::Transformer(m) => m,
            AnyModel::Mlp(m) => m,
        }
    }

    /// Immutable borrow as a parameter visitor.
    pub fn as_visitor(&self) -> &dyn selsync_nn::module::ParamVisitor {
        match self {
            AnyModel::ResNet(m) => m,
            AnyModel::Vgg(m) => m,
            AnyModel::AlexNet(m) => m,
            AnyModel::Transformer(m) => m,
            AnyModel::Mlp(m) => m,
        }
    }
}

impl Workload {
    /// Build a vision workload (`train_n`/`test_n` samples) for one of
    /// the three image model kinds.
    pub fn vision(kind: ModelKind, train_n: usize, test_n: usize, seed: u64) -> Self {
        assert!(
            kind != ModelKind::TransformerMini,
            "use Workload::text for the Transformer"
        );
        let classes = kind.default_classes();
        let train = VisionDataset::synthetic(train_n, classes, seed, seed + 1);
        let test = VisionDataset::synthetic(test_n, classes, seed, seed + 2);
        Workload {
            kind,
            data: WorkloadData::Vision { train, test },
            model_seed: seed,
            init_params: None,
        }
    }

    /// Build the language-model workload with `train_tokens` training
    /// tokens and a quarter as many test tokens (stationary source).
    pub fn text(train_tokens: usize, seed: u64) -> Self {
        Self::text_with_topics(train_tokens, seed, 1)
    }

    /// Language-model workload over a topic-switching corpus: `topics`
    /// contiguous segments each drawn from its own Markov chain (the
    /// WikiText article-heterogeneity analogue). Train and test share
    /// the chains, with fresh sample paths.
    pub fn text_with_topics(train_tokens: usize, seed: u64, topics: usize) -> Self {
        let vocab = ModelKind::TransformerMini.default_classes();
        let train =
            TextDataset::synthetic_markov_topics(train_tokens, vocab, seed, seed + 1, topics);
        let test = TextDataset::topics_test_split(
            train_tokens / 4 + SEQ_LEN + 1,
            vocab,
            seed,
            seed.wrapping_add(0x7E57),
            topics,
        );
        Workload {
            kind: ModelKind::TransformerMini,
            data: WorkloadData::Text { train, test },
            model_seed: seed,
            init_params: None,
        }
    }

    /// The standard workload for a model kind at the given data scale.
    /// The VGG workload doubles `scale`: its CIFAR100-analogue task has
    /// twice the classes of ResNet's and needs the samples-per-class to
    /// stay meaningful.
    pub fn for_kind(kind: ModelKind, scale: usize, seed: u64) -> Self {
        match kind {
            ModelKind::TransformerMini => Workload::text(scale * SEQ_LEN, seed),
            ModelKind::VggMini => Workload::vision(kind, scale * 2, scale / 2 + 64, seed),
            _ => Workload::vision(kind, scale, scale / 4 + 32, seed),
        }
    }

    /// Instantiate a fresh model replica (identical across calls),
    /// warm-started from [`Workload::init_params`] when set.
    pub fn build_model(&self) -> AnyModel {
        let classes = self.num_classes();
        let mut model = match self.kind {
            ModelKind::ResNetMini => AnyModel::ResNet(ResNetMini::new(classes, self.model_seed)),
            ModelKind::VggMini => AnyModel::Vgg(VggMini::new(classes, self.model_seed)),
            ModelKind::AlexNetMini => AnyModel::AlexNet(AlexNetMini::new(classes, self.model_seed)),
            ModelKind::TransformerMini => {
                AnyModel::Transformer(TransformerMini::new(classes, self.model_seed))
            }
        };
        if let Some(init) = &self.init_params {
            selsync_nn::flat::set_flat_params(model.as_model(), init);
        }
        model
    }

    /// Output classes / vocab size.
    pub fn num_classes(&self) -> usize {
        match &self.data {
            WorkloadData::Vision { train, .. } => train.num_classes,
            WorkloadData::Text { train, .. } => train.vocab,
        }
    }

    /// Number of trainable samples (vision) or bptt windows (text) —
    /// the unit the partitioners divide.
    pub fn num_train_units(&self) -> usize {
        match &self.data {
            WorkloadData::Vision { train, .. } => train.len(),
            WorkloadData::Text { train, .. } => train.num_windows(SEQ_LEN),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_nn::flat::flat_params;

    #[test]
    fn vision_workload_shapes() {
        let w = Workload::vision(ModelKind::ResNetMini, 100, 20, 1);
        assert_eq!(w.num_classes(), 10);
        assert_eq!(w.num_train_units(), 100);
    }

    #[test]
    fn text_workload_counts_windows() {
        let w = Workload::text(SEQ_LEN * 10, 2);
        assert_eq!(w.num_classes(), 64);
        assert!(w.num_train_units() >= 9);
    }

    #[test]
    fn replicas_are_bit_identical() {
        let w = Workload::vision(ModelKind::VggMini, 50, 10, 3);
        let a = w.build_model();
        let b = w.build_model();
        assert_eq!(flat_params(a.as_visitor()), flat_params(b.as_visitor()));
    }

    #[test]
    fn train_and_test_are_disjoint_samples_same_task() {
        let w = Workload::vision(ModelKind::ResNetMini, 64, 64, 4);
        if let WorkloadData::Vision { train, test } = &w.data {
            assert_ne!(train.images.as_slice(), test.images.as_slice());
            assert_eq!(train.num_classes, test.num_classes);
        } else {
            panic!("expected vision data");
        }
    }

    #[test]
    fn for_kind_dispatches_all_four() {
        for kind in ModelKind::ALL {
            let w = Workload::for_kind(kind, 64, 5);
            assert_eq!(w.kind, kind);
            let mut m = w.build_model();
            let _ = m.as_model().num_classes();
        }
    }
}
