//! Per-file analysis context: tokens plus the line-level metadata the
//! rules share — which lines are test code, which are attribute-only,
//! where the `lint:allow` suppressions sit and what they target.

use crate::lexer::{lex, Comment, Tok};
use crate::parser::{self, ItemTree};
use std::cell::Cell;

/// Minimum characters of justification a `lint:allow` must carry.
/// Short enough not to be bureaucratic, long enough that "ok" fails.
pub const MIN_JUSTIFICATION: usize = 8;

/// An inline suppression: `// lint:allow(rule): justification`.
#[derive(Debug)]
pub struct Suppression {
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Line whose findings it silences (the comment's own line for a
    /// trailing comment, else the next code line below it).
    pub target: u32,
    /// Justification text after the closing paren's `:`, if any.
    pub justification: Option<String>,
    /// Set when a finding is actually silenced; an unused allow is
    /// itself reported, so stale suppressions cannot accumulate.
    pub used: Cell<bool>,
}

impl Suppression {
    /// A suppression counts as justified only with a real explanation.
    pub fn justified(&self) -> bool {
        self.justification
            .as_deref()
            .map(str::trim)
            .is_some_and(|j| j.len() >= MIN_JUSTIFICATION)
    }
}

/// One lexed source file with everything a rule needs to run.
pub struct SourceFile {
    /// Path relative to the scan root, forward slashes.
    pub rel: String,
    /// Token stream (comments excluded).
    pub toks: Vec<Tok>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
    /// `true` when the whole file is test/bench code by location
    /// (`tests/`, `benches/`).
    pub is_test_file: bool,
    /// 1-based line → inside a `#[cfg(test)]`/`#[test]` item.
    test_lines: Vec<bool>,
    /// 1-based line → every token on it belongs to an attribute.
    attr_only: Vec<bool>,
    /// 1-based line → contains at least one token.
    code_lines: Vec<bool>,
    /// Parsed `lint:allow` suppressions.
    pub suppressions: Vec<Suppression>,
    /// Item tree (fns, enums, consts, loops) for the semantic rules.
    pub items: ItemTree,
}

impl SourceFile {
    /// Lex and analyze one file. `rel` must use forward slashes.
    pub fn new(rel: String, src: &str) -> SourceFile {
        let (toks, comments) = lex(src);
        let n_lines = src.lines().count().max(1) as u32;
        let is_test_file = {
            let r = rel.as_str();
            r.starts_with("tests/")
                || r.starts_with("benches/")
                || r.contains("/tests/")
                || r.contains("/benches/")
        };

        let mut code_lines = vec![false; n_lines as usize + 2];
        for t in &toks {
            if let Some(slot) = code_lines.get_mut(t.line as usize) {
                *slot = true;
            }
        }

        let (attr_only, test_lines) = attribute_and_test_lines(&toks, n_lines);
        let suppressions = parse_suppressions(&comments, &code_lines, n_lines);
        let items = parser::parse(&toks);

        SourceFile {
            rel,
            toks,
            comments,
            is_test_file,
            test_lines,
            attr_only,
            code_lines,
            suppressions,
            items,
        }
    }

    /// Is this 1-based line inside test code (file-level or item-level)?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.is_test_file || *self.test_lines.get(line as usize).unwrap_or(&false)
    }

    /// Does this 1-based line consist solely of attribute tokens?
    pub fn is_attr_only_line(&self, line: u32) -> bool {
        *self.attr_only.get(line as usize).unwrap_or(&false)
    }

    /// Does this 1-based line carry any token at all?
    pub fn is_code_line(&self, line: u32) -> bool {
        *self.code_lines.get(line as usize).unwrap_or(&false)
    }
}

/// Walk the token stream once, marking (a) lines fully covered by
/// attributes and (b) lines inside items annotated with a
/// test-flavoured attribute (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]`).
fn attribute_and_test_lines(toks: &[Tok], n_lines: u32) -> (Vec<bool>, Vec<bool>) {
    let mut attr_tok = vec![false; toks.len()];
    let mut test_lines = vec![false; n_lines as usize + 2];
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_punct('!') {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct('[') {
            i += 1;
            continue;
        }
        // consume the balanced [...] of the attribute
        let mut depth = 0i32;
        let mut is_test_attr = false;
        let attr_start = i;
        while j < toks.len() {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[j].is_ident("test") {
                is_test_attr = true;
            }
            j += 1;
        }
        let attr_end = j.min(toks.len() - 1);
        for slot in attr_tok.iter_mut().take(attr_end + 1).skip(attr_start) {
            *slot = true;
        }
        if is_test_attr {
            mark_item_extent(toks, attr_end + 1, toks[attr_start].line, &mut test_lines);
        }
        i = attr_end + 1;
    }

    // attribute-only lines: every token on the line is an attr token
    let mut attr_only = vec![false; n_lines as usize + 2];
    let mut has_tok = vec![false; n_lines as usize + 2];
    let mut has_non_attr = vec![false; n_lines as usize + 2];
    for (t, is_attr) in toks.iter().zip(&attr_tok) {
        let l = t.line as usize;
        if l < has_tok.len() {
            has_tok[l] = true;
            if !is_attr {
                has_non_attr[l] = true;
            }
        }
    }
    for l in 0..attr_only.len() {
        attr_only[l] = has_tok[l] && !has_non_attr[l];
    }
    (attr_only, test_lines)
}

/// From the token after a test attribute's `]`, find the annotated
/// item's extent (first top-level `{...}` body, or a `;` for bodyless
/// items) and mark its lines — plus any stacked attributes above —
/// as test code.
fn mark_item_extent(toks: &[Tok], start: usize, attr_line: u32, test_lines: &mut [bool]) {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut k = start;
    let mut end_line = attr_line;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct(';') && paren == 0 && bracket == 0 {
            end_line = t.line;
            break;
        } else if t.is_punct('{') && paren == 0 && bracket == 0 {
            // found the body: consume balanced braces
            let mut depth = 0i32;
            while k < toks.len() {
                if toks[k].is_punct('{') {
                    depth += 1;
                } else if toks[k].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            end_line = toks.get(k).map_or(attr_line, |t| t.line);
            break;
        }
        end_line = t.line;
        k += 1;
    }
    for l in attr_line..=end_line {
        if let Some(slot) = test_lines.get_mut(l as usize) {
            *slot = true;
        }
    }
}

/// Extract every `lint:allow(rule)[: justification]` from the comments
/// and resolve each one's target line.
fn parse_suppressions(comments: &[Comment], code_lines: &[bool], n_lines: u32) -> Vec<Suppression> {
    const MARKER: &str = "lint:allow(";
    let mut out = Vec::new();
    for c in comments {
        // A suppression must BE the comment, not be mentioned inside
        // one — prose like "use lint:allow(rule) here" (this crate's
        // own docs included) is not a suppression.
        let Some(after) = c.text.trim_start().strip_prefix(MARKER) else {
            continue;
        };
        let Some(close) = after.find(')') else {
            continue;
        };
        let rule = after[..close].trim().to_string();
        let justification = after[close + 1..]
            .strip_prefix(':')
            .map(|j| j.trim().to_string())
            .filter(|j| !j.is_empty());
        let target = if c.own_line {
            // next line below the comment that carries code
            let mut l = c.end_line + 1;
            while l <= n_lines && !code_lines.get(l as usize).copied().unwrap_or(false) {
                l += 1;
            }
            l
        } else {
            c.line
        };
        out.push(Suppression {
            rule,
            line: c.line,
            target,
            justification,
            used: Cell::new(false),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "\
fn prod() { x.unwrap(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}
";
        let f = SourceFile::new("crates/core/src/a.rs".into(), src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(6));
        assert!(f.is_test_line(7));
    }

    #[test]
    fn cfg_test_use_statement_extends_to_semicolon_only() {
        let src = "\
#[cfg(test)]
use std::collections::HashMap;
fn prod() {}
";
        let f = SourceFile::new("a.rs".into(), src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn tests_dir_marks_whole_file() {
        let f = SourceFile::new("crates/core/tests/x.rs".into(), "fn a() {}");
        assert!(f.is_test_file);
        assert!(f.is_test_line(1));
    }

    #[test]
    fn suppression_targets_next_code_line() {
        let src = "\
// lint:allow(nondet-iteration): keys sorted before use below
// more prose
use std::collections::HashMap;
";
        let f = SourceFile::new("a.rs".into(), src);
        assert_eq!(f.suppressions.len(), 1);
        let s = &f.suppressions[0];
        assert_eq!(s.rule, "nondet-iteration");
        assert_eq!(s.target, 3);
        assert!(s.justified());
    }

    #[test]
    fn trailing_suppression_targets_its_own_line() {
        let src = "let m = HashMap::new(); // lint:allow(nondet-iteration): never iterated\n";
        let f = SourceFile::new("a.rs".into(), src);
        assert_eq!(f.suppressions[0].target, 1);
    }

    #[test]
    fn bare_allow_is_unjustified() {
        let src = "// lint:allow(raw-net)\nuse std::net::TcpStream;\n";
        let f = SourceFile::new("a.rs".into(), src);
        assert!(!f.suppressions[0].justified());
        let short = "// lint:allow(raw-net): ok\nuse std::net::TcpStream;\n";
        let f2 = SourceFile::new("a.rs".into(), short);
        assert!(
            !f2.suppressions[0].justified(),
            "two chars is not a justification"
        );
    }

    #[test]
    fn attr_only_lines() {
        let src = "#[target_feature(enable = \"avx2\")]\nunsafe fn k() {}\n";
        let f = SourceFile::new("a.rs".into(), src);
        assert!(f.is_attr_only_line(1));
        assert!(!f.is_attr_only_line(2));
    }
}
