//! A lightweight item-tree parser layered on the lexer.
//!
//! This is deliberately *not* an AST: it recovers only the structure
//! the semantic rules need — function extents and names, enum variant
//! lists, integer `const` values, loop extents, and match arms — as
//! index ranges into the flat token stream. No type inference, no
//! expression trees, no path resolution. Everything degrades safely:
//! a construct the parser does not model is simply absent from the
//! tree, and rules built on it stay silent rather than guessing.
//!
//! All ranges are half-open `[start, end)` token indices. A body range
//! covers the tokens *between* the braces, excluding the braces
//! themselves, so scanning a body never sees its own delimiters.

use crate::lexer::{Tok, TokKind};
use std::ops::Range;

/// One `fn` item (free function or method; nested fns included).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Tokens between the body braces (empty for bodyless trait fns).
    pub body: Range<usize>,
}

/// One variant of an enum.
#[derive(Debug, Clone)]
pub struct VariantItem {
    pub name: String,
    /// 1-based line the variant name sits on.
    pub line: u32,
}

/// One `enum` item with its variant list.
#[derive(Debug, Clone)]
pub struct EnumItem {
    pub name: String,
    pub line: u32,
    pub variants: Vec<VariantItem>,
}

/// One `const NAME: T = <int>;` whose initializer is a single integer
/// literal. Consts with computed initializers are recorded with
/// `value: None`.
#[derive(Debug, Clone)]
pub struct ConstItem {
    pub name: String,
    pub line: u32,
    pub value: Option<u64>,
}

/// The keyword that introduced a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    Loop,
    While,
    For,
}

/// One `loop`/`while`/`for` with head + body extents.
#[derive(Debug, Clone)]
pub struct LoopItem {
    pub kind: LoopKind,
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Tokens from the loop keyword through the closing body brace
    /// (head condition included), so bound references in either the
    /// condition or the body both count.
    pub span: Range<usize>,
}

/// One arm of a `match`: `pat => body`.
#[derive(Debug, Clone)]
pub struct MatchArm {
    /// Tokens of the pattern (guard included), up to the `=>`.
    pub pat: Range<usize>,
    /// Tokens of the arm body (braces excluded for block bodies).
    pub body: Range<usize>,
    /// 1-based line the pattern starts on.
    pub line: u32,
}

/// Flat item tree for one file.
#[derive(Debug, Default)]
pub struct ItemTree {
    pub fns: Vec<FnItem>,
    pub enums: Vec<EnumItem>,
    pub consts: Vec<ConstItem>,
    pub loops: Vec<LoopItem>,
}

impl ItemTree {
    /// First function with this name, if any.
    pub fn fn_named(&self, name: &str) -> Option<&FnItem> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// First enum with this name, if any.
    pub fn enum_named(&self, name: &str) -> Option<&EnumItem> {
        self.enums.iter().find(|e| e.name == name)
    }
}

/// Parse the token stream into an item tree. Single linear pass; items
/// are recorded at any nesting depth (a fn inside a mod, a loop inside
/// a fn) because the rules scope by extent, not by hierarchy.
pub fn parse(toks: &[Tok]) -> ItemTree {
    let mut tree = ItemTree::default();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "fn" => {
                if let Some(f) = parse_fn(toks, i) {
                    tree.fns.push(f);
                }
                // do not skip the body: nested items must be seen too
                i += 1;
            }
            "enum" => {
                if let Some((e, next)) = parse_enum(toks, i) {
                    tree.enums.push(e);
                    i = next;
                } else {
                    i += 1;
                }
            }
            "const" => {
                // skip `const fn` and raw-pointer `*const`
                let is_ptr = i > 0 && toks[i - 1].is_punct('*');
                let is_const_fn = toks.get(i + 1).is_some_and(|n| n.is_ident("fn"));
                if !is_ptr && !is_const_fn {
                    if let Some(c) = parse_const(toks, i) {
                        tree.consts.push(c);
                    }
                }
                i += 1;
            }
            "loop" | "while" | "for" => {
                if let Some(l) = parse_loop(toks, i) {
                    tree.loops.push(l);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    tree
}

/// From the index of a `{`, return the index of its matching `}`.
fn close_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// From the token after a fn signature's start, find the body's opening
/// brace: the first `{` at zero paren/bracket depth, stopping at a
/// bodyless `;`. Generic `<...>` is not tracked — a brace cannot appear
/// inside the generics this codebase (or the fixtures) use.
fn fn_body_open(toks: &[Tok], start: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut k = start;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct(';') {
                return None; // trait method declaration, no body
            }
            if t.is_punct('{') {
                return Some(k);
            }
        }
        k += 1;
    }
    None
}

fn parse_fn(toks: &[Tok], kw: usize) -> Option<FnItem> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let open = fn_body_open(toks, kw + 2)?;
    let close = close_brace(toks, open)?;
    Some(FnItem {
        name: name_tok.text.clone(),
        line: toks[kw].line,
        body: open + 1..close,
    })
}

fn parse_enum(toks: &[Tok], kw: usize) -> Option<(EnumItem, usize)> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // find the body `{`; an enum declaration cannot contain `;` first
    let mut open = kw + 2;
    while open < toks.len() && !toks[open].is_punct('{') {
        if toks[open].is_punct(';') {
            return None;
        }
        open += 1;
    }
    if open >= toks.len() {
        return None;
    }
    let close = close_brace(toks, open)?;
    let mut variants = Vec::new();
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        // skip attributes on variants: #[...]
        if t.is_punct('#') {
            let mut j = k + 1;
            if j < close && toks[j].is_punct('[') {
                let mut depth = 0i32;
                while j < close {
                    if toks[j].is_punct('[') {
                        depth += 1;
                    } else if toks[j].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                k = j + 1;
                continue;
            }
        }
        if t.kind == TokKind::Ident {
            variants.push(VariantItem {
                name: t.text.clone(),
                line: t.line,
            });
            // skip the variant's payload/discriminant to the next `,`
            // at variant depth (or the enum's closing brace)
            let mut paren = 0i32;
            let mut brace = 0i32;
            let mut bracket = 0i32;
            k += 1;
            while k < close {
                let p = &toks[k];
                if p.is_punct('(') {
                    paren += 1;
                } else if p.is_punct(')') {
                    paren -= 1;
                } else if p.is_punct('{') {
                    brace += 1;
                } else if p.is_punct('}') {
                    brace -= 1;
                } else if p.is_punct('[') {
                    bracket += 1;
                } else if p.is_punct(']') {
                    bracket -= 1;
                } else if p.is_punct(',') && paren == 0 && brace == 0 && bracket == 0 {
                    k += 1;
                    break;
                }
                k += 1;
            }
        } else {
            k += 1;
        }
    }
    Some((
        EnumItem {
            name: name_tok.text.clone(),
            line: toks[kw].line,
            variants,
        },
        close + 1,
    ))
}

fn parse_const(toks: &[Tok], kw: usize) -> Option<ConstItem> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // scan to `=` (stopping at `;` for associated-const declarations)
    let mut k = kw + 2;
    while k < toks.len() && !toks[k].is_punct('=') {
        if toks[k].is_punct(';') || toks[k].is_punct('{') {
            return None;
        }
        k += 1;
    }
    if k >= toks.len() {
        return None;
    }
    // initializer tokens up to the `;`
    let init_start = k + 1;
    let mut end = init_start;
    while end < toks.len() && !toks[end].is_punct(';') {
        end += 1;
    }
    let init = &toks[init_start..end];
    let value = match init {
        [only] if only.kind == TokKind::Num => parse_int(&only.text),
        _ => None,
    };
    Some(ConstItem {
        name: name_tok.text.clone(),
        line: name_tok.line,
        value,
    })
}

/// Parse an integer literal: decimal or `0x`/`0o`/`0b`, underscores and
/// a type suffix allowed.
fn parse_int(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x") {
        (h, 16)
    } else if let Some(o) = t.strip_prefix("0o") {
        (o, 8)
    } else if let Some(b) = t.strip_prefix("0b") {
        (b, 2)
    } else {
        (t.as_str(), 10)
    };
    // strip a type suffix (u8, u32, usize, ...)
    let digits = digits
        .find(|c: char| !c.is_digit(radix))
        .map_or(digits, |cut| &digits[..cut]);
    u64::from_str_radix(digits, radix).ok()
}

fn parse_loop(toks: &[Tok], kw: usize) -> Option<LoopItem> {
    let kind = match toks[kw].text.as_str() {
        "loop" => LoopKind::Loop,
        "while" => LoopKind::While,
        "for" => LoopKind::For,
        _ => return None,
    };
    // `for` also appears in `impl Trait for Type` and higher-ranked
    // bounds; a real for-loop is followed by a pattern then `in`.
    // Cheap disambiguation: require `in` before the body brace at
    // depth 0 for LoopKind::For.
    let open = fn_body_open(toks, kw + 1)?;
    if kind == LoopKind::For {
        let head = &toks[kw + 1..open];
        let mut paren = 0i32;
        let mut has_in = false;
        for t in head {
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if paren == 0 && t.is_ident("in") {
                has_in = true;
                break;
            }
        }
        if !has_in {
            return None;
        }
    }
    let close = close_brace(toks, open)?;
    Some(LoopItem {
        kind,
        line: toks[kw].line,
        span: kw..close + 1,
    })
}

/// Split the body of the first `match` inside `range` into arms.
/// Returns an empty vec when no match is found.
pub fn first_match_arms(toks: &[Tok], range: Range<usize>) -> Vec<MatchArm> {
    let Some(kw) = (range.start..range.end).find(|&k| toks[k].is_ident("match")) else {
        return Vec::new();
    };
    let Some(open) = fn_body_open(toks, kw + 1) else {
        return Vec::new();
    };
    let Some(close) = close_brace(toks, open) else {
        return Vec::new();
    };
    match_arms(toks, open + 1..close)
}

/// Split a match body (tokens strictly between the match braces) into
/// arms. Handles struct patterns (`X { .. } =>`), or-patterns, guards,
/// block and expression bodies, and trailing commas.
pub fn match_arms(toks: &[Tok], body: Range<usize>) -> Vec<MatchArm> {
    let mut arms = Vec::new();
    let mut k = body.start;
    while k < body.end {
        // pattern: scan to `=>` at zero relative depth
        let pat_start = k;
        let mut paren = 0i32;
        let mut brace = 0i32;
        let mut bracket = 0i32;
        let mut arrow = None;
        while k < body.end {
            let t = &toks[k];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if t.is_punct('=')
                && paren == 0
                && brace == 0
                && bracket == 0
                && toks.get(k + 1).is_some_and(|n| n.is_punct('>'))
            {
                arrow = Some(k);
                break;
            }
            k += 1;
        }
        let Some(arrow) = arrow else { break };
        if pat_start == arrow {
            // stray `=>`; bail rather than loop forever
            break;
        }
        let body_start = arrow + 2;
        let (arm_body, next) = if toks.get(body_start).is_some_and(|t| t.is_punct('{')) {
            match close_brace(toks, body_start) {
                Some(c) => {
                    let mut n = c + 1;
                    if toks.get(n).is_some_and(|t| t.is_punct(',')) {
                        n += 1;
                    }
                    (body_start + 1..c, n)
                }
                None => (body_start + 1..body.end, body.end),
            }
        } else {
            // expression body: to the `,` at zero relative depth
            let mut paren = 0i32;
            let mut brace = 0i32;
            let mut bracket = 0i32;
            let mut e = body_start;
            while e < body.end {
                let t = &toks[e];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren -= 1;
                } else if t.is_punct('{') {
                    brace += 1;
                } else if t.is_punct('}') {
                    brace -= 1;
                } else if t.is_punct('[') {
                    bracket += 1;
                } else if t.is_punct(']') {
                    bracket -= 1;
                } else if t.is_punct(',') && paren == 0 && brace == 0 && bracket == 0 {
                    break;
                }
                e += 1;
            }
            (body_start..e, (e + 1).min(body.end))
        };
        arms.push(MatchArm {
            pat: pat_start..arrow,
            body: arm_body,
            line: toks[pat_start].line,
        });
        k = next;
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> (Vec<Tok>, ItemTree) {
        let (toks, _) = lex(src);
        let t = parse(&toks);
        (toks, t)
    }

    #[test]
    fn fn_extents_and_nesting() {
        let src = "\
fn outer(x: u32) -> Result<u32, ()> {
    fn inner() {}
    loop { break; }
    Ok(x)
}
trait T { fn decl(&self); }
";
        let (toks, t) = tree(src);
        let names: Vec<_> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let outer = t.fn_named("outer").unwrap();
        // the loop keyword sits inside outer's body
        let l = &t.loops[0];
        assert!(outer.body.contains(&l.span.start));
        assert!(toks[l.span.end - 1].is_punct('}'));
    }

    #[test]
    fn enum_variants_with_payloads_and_attrs() {
        let src = "\
#[derive(Debug)]
pub enum Payload {
    Params(Vec<f32>),
    #[allow(dead_code)]
    Bucket { bucket: u32, values: Vec<f32> },
    Control(u64),
}
";
        let (_, t) = tree(src);
        let e = t.enum_named("Payload").unwrap();
        let names: Vec<_> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Params", "Bucket", "Control"]);
        assert_eq!(e.variants[1].line, 5);
    }

    #[test]
    fn const_values_parse_and_computed_is_none() {
        let src = "\
pub const KIND_PARAMS: u8 = 0;
pub const KIND_HEX: u8 = 0x0b;
pub const SIZE: usize = 4 + 8;
const fn not_a_const() -> u8 { 1 }
";
        let (_, t) = tree(src);
        assert_eq!(t.consts.len(), 3);
        assert_eq!(t.consts[0].value, Some(0));
        assert_eq!(t.consts[1].value, Some(11));
        assert_eq!(t.consts[2].value, None);
    }

    #[test]
    fn loops_record_head_and_body_while_impl_for_is_skipped() {
        let src = "\
impl Clone for Thing {
    fn clone(&self) -> Thing { Thing }
}
fn f(deadline: u32) {
    while now() < deadline { step(); }
    for x in 0..3 { use_it(x); }
}
";
        let (toks, t) = tree(src);
        assert_eq!(t.loops.len(), 2);
        assert_eq!(t.loops[0].kind, LoopKind::While);
        assert_eq!(t.loops[1].kind, LoopKind::For);
        // the while span includes its condition tokens
        let w = &t.loops[0];
        assert!(toks[w.span.clone()].iter().any(|x| x.is_ident("deadline")));
    }

    #[test]
    fn match_arms_split_struct_patterns_and_guards() {
        let src = "\
fn kind_of(p: &Payload) -> u8 {
    match p {
        Payload::Params(_) | Payload::SharedParams(_) => KIND_PARAMS,
        Payload::Bucket { .. } => KIND_BUCKET,
        Payload::Control(c) if *c > 0 => { KIND_CONTROL }
        other => fallback(other),
    }
}
";
        let (toks, t) = tree(src);
        let f = t.fn_named("kind_of").unwrap();
        let arms = first_match_arms(&toks, f.body.clone());
        assert_eq!(arms.len(), 4);
        let pat0: Vec<_> = toks[arms[0].pat.clone()]
            .iter()
            .filter(|x| x.kind == TokKind::Ident)
            .map(|x| x.text.as_str())
            .collect();
        assert!(pat0.contains(&"SharedParams"));
        assert!(toks[arms[1].body.clone()]
            .iter()
            .any(|x| x.is_ident("KIND_BUCKET")));
        assert!(toks[arms[2].body.clone()]
            .iter()
            .any(|x| x.is_ident("KIND_CONTROL")));
    }
}
