//! The once-per-run workspace symbol index.
//!
//! Cross-file rules cannot work from a single `SourceFile`: checking
//! that every `Payload` variant has a decode arm requires the enum
//! (crates/comm) and the codec (crates/net) in the same view. The
//! engine loads every file first, builds this index, and hands it to
//! the workspace rules after the per-file rules have run.
//!
//! Site discovery is anchored on *structure*, not paths: the payload
//! site is the file that defines `enum Payload` **and** its byte
//! accounting (`fn body_bytes` / `fn wire_bytes`); a codec site is any
//! file defining `fn kind_of`. That way the fixture mini-workspace
//! exercises the same resolution logic as the real repo, and fixture
//! files that merely *mention* a `Payload` enum (the wire-wildcard
//! fixtures) are never mistaken for the protocol definition.

use crate::source::SourceFile;

/// Every scanned file, parsed, in deterministic (sorted-path) order.
pub struct WorkspaceIndex {
    pub files: Vec<SourceFile>,
}

impl WorkspaceIndex {
    /// The file at this workspace-relative path, if scanned.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// The protocol-definition site: the non-test file defining
    /// `enum Payload` plus its byte accounting. First in path order if
    /// several match (the real workspace has exactly one).
    pub fn payload_site(&self) -> Option<&SourceFile> {
        self.files.iter().find(|f| {
            !f.is_test_file
                && f.items.enum_named("Payload").is_some()
                && (f.items.fn_named("body_bytes").is_some()
                    || f.items.fn_named("wire_bytes").is_some())
        })
    }

    /// Every non-test file defining `fn kind_of` — the codec sites that
    /// must stay in lockstep with the payload enum.
    pub fn codec_sites(&self) -> impl Iterator<Item = &SourceFile> {
        self.files
            .iter()
            .filter(|f| !f.is_test_file && f.items.fn_named("kind_of").is_some())
    }
}
