//! File discovery, rule execution, suppression resolution and report
//! formatting.

use crate::rules::{all_rules, is_known_rule, Finding};
use crate::source::SourceFile;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A finding after suppression resolution, tied to its file.
#[derive(Debug, Clone)]
pub struct RecordedFinding {
    /// Path relative to the scan root, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
    /// `true` when a justified (or bare) `lint:allow` silenced it.
    pub suppressed: bool,
    /// The suppression's justification, when one applied.
    pub justification: Option<String>,
}

/// Result of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed ones included, sorted by
    /// (path, line, rule) so output is deterministic.
    pub findings: Vec<RecordedFinding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that fail the build.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &RecordedFinding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Count of findings that fail the build.
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Count of silenced findings.
    pub fn suppressed_count(&self) -> usize {
        self.findings.len() - self.unsuppressed_count()
    }
}

/// Directory names never descended into. `fixtures` holds deliberate
/// violations for the self-tests; `vendor` and `target` are external.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// Default scan roots, relative to the workspace root.
pub const DEFAULT_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Collect every `.rs` file under `root`/`sub` for each sub-root, in
/// sorted order. A sub-root may also name a single file.
fn collect_files(root: &Path, subs: &[String]) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for sub in subs {
        let p = root.join(sub);
        if p.is_file() {
            files.push(p);
        } else if p.is_dir() {
            walk(&p, &mut files)?;
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&p, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Run every rule over the `.rs` files under `root` (restricted to the
/// given sub-roots), resolve suppressions, and return the report.
pub fn run(root: &Path, subs: &[String]) -> io::Result<Report> {
    let rules = all_rules();
    let mut report = Report::default();
    for path in collect_files(root, subs)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        let file = SourceFile::new(rel.clone(), &src);
        report.files_scanned += 1;

        let mut raw: Vec<Finding> = Vec::new();
        for rule in &rules {
            if rule.in_scope(&file.rel) && (rule.lints_tests() || !file.is_test_file) {
                rule.check(&file, &mut raw);
            }
        }

        // resolve suppressions: a lint:allow silences findings of its
        // rule on its target line (justified or not — an unjustified
        // allow is reported separately below, so CI still fails)
        for f in raw {
            let supp = file
                .suppressions
                .iter()
                .find(|s| s.rule == f.rule && s.target == f.line);
            if let Some(s) = supp {
                s.used.set(true);
            }
            report.findings.push(RecordedFinding {
                path: rel.clone(),
                line: f.line,
                rule: f.rule.to_string(),
                message: f.message,
                suppressed: supp.is_some(),
                justification: supp.and_then(|s| s.justification.clone()),
            });
        }

        // suppression hygiene: these meta-findings cannot themselves be
        // suppressed
        for s in &file.suppressions {
            if !s.justified() {
                report.findings.push(RecordedFinding {
                    path: rel.clone(),
                    line: s.line,
                    rule: "bare-allow".to_string(),
                    message: format!(
                        "lint:allow({}) without a written justification; append \
                         `: <why this is sound>`",
                        s.rule
                    ),
                    suppressed: false,
                    justification: None,
                });
            }
            if !s.used.get() {
                let why = if is_known_rule(&s.rule) {
                    "it silences nothing on its target line — remove it"
                } else {
                    "no such rule exists — fix the rule name or remove it"
                };
                report.findings.push(RecordedFinding {
                    path: rel.clone(),
                    line: s.line,
                    rule: "unused-allow".to_string(),
                    message: format!("lint:allow({}): {}", s.rule, why),
                    suppressed: false,
                    justification: None,
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(report)
}

/// Human-readable report: one `path:line rule message` per unsuppressed
/// finding, plus a summary line.
pub fn format_human(report: &Report) -> String {
    let mut out = String::new();
    for f in report.unsuppressed() {
        let _ = writeln!(out, "{}:{} {} {}", f.path, f.line, f.rule, f.message);
    }
    let _ = writeln!(
        out,
        "selsync-lint: {} unsuppressed finding(s), {} suppressed, {} files scanned",
        report.unsuppressed_count(),
        report.suppressed_count(),
        report.files_scanned
    );
    out
}
