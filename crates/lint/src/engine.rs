//! File discovery, rule execution, suppression resolution and report
//! formatting.

use crate::index::WorkspaceIndex;
use crate::rules::{all_rules, is_known_rule, workspace_rules, Finding};
use crate::source::SourceFile;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A finding after suppression resolution, tied to its file.
#[derive(Debug, Clone)]
pub struct RecordedFinding {
    /// Path relative to the scan root, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
    /// `true` when a justified (or bare) `lint:allow` silenced it.
    pub suppressed: bool,
    /// The suppression's justification, when one applied.
    pub justification: Option<String>,
}

/// Result of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed ones included, sorted by
    /// (path, line, rule) so output is deterministic.
    pub findings: Vec<RecordedFinding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that fail the build.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &RecordedFinding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Count of findings that fail the build.
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Count of silenced findings.
    pub fn suppressed_count(&self) -> usize {
        self.findings.len() - self.unsuppressed_count()
    }
}

/// Directory names never descended into. `fixtures` holds deliberate
/// violations for the self-tests; `vendor` and `target` are external.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// Default scan roots, relative to the workspace root.
pub const DEFAULT_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Collect every `.rs` file under `root`/`sub` for each sub-root, in
/// sorted order. A sub-root may also name a single file.
fn collect_files(root: &Path, subs: &[String]) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for sub in subs {
        let p = root.join(sub);
        if p.is_file() {
            files.push(p);
        } else if p.is_dir() {
            walk(&p, &mut files)?;
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&p, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Load and parse every `.rs` file under `root` (restricted to the
/// given sub-roots) into a [`WorkspaceIndex`]. Built once per run; the
/// per-file rules, the cross-file rules and `--wire-table` all read
/// from the same index.
pub fn load_index(root: &Path, subs: &[String]) -> io::Result<WorkspaceIndex> {
    let mut files = Vec::new();
    for path in collect_files(root, subs)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        files.push(SourceFile::new(rel, &src));
    }
    Ok(WorkspaceIndex { files })
}

/// Run every rule over the `.rs` files under `root` (restricted to the
/// given sub-roots), resolve suppressions, and return the report.
pub fn run(root: &Path, subs: &[String]) -> io::Result<Report> {
    Ok(run_on_index(&load_index(root, subs)?))
}

/// Run the per-file rules, then the cross-file workspace rules, then
/// resolve suppressions per file. Suppression semantics are identical
/// for both rule families: a `lint:allow(rule)` targeting the finding's
/// line silences it, and unused/bare allows are reported.
pub fn run_on_index(index: &WorkspaceIndex) -> Report {
    let rules = all_rules();
    let mut report = Report {
        files_scanned: index.files.len(),
        ..Report::default()
    };

    let mut raw: Vec<Vec<Finding>> = index.files.iter().map(|_| Vec::new()).collect();
    for (fi, file) in index.files.iter().enumerate() {
        for rule in &rules {
            if rule.in_scope(&file.rel) && (rule.lints_tests() || !file.is_test_file) {
                rule.check(file, &mut raw[fi]);
            }
        }
    }
    for wrule in workspace_rules() {
        let mut found: Vec<(String, Finding)> = Vec::new();
        wrule.check(index, &mut found);
        for (rel, f) in found {
            if let Some(fi) = index.files.iter().position(|x| x.rel == rel) {
                raw[fi].push(f);
            }
        }
    }

    for (file, raw) in index.files.iter().zip(raw) {
        let rel = &file.rel;
        // resolve suppressions: a lint:allow silences findings of its
        // rule on its target line (justified or not — an unjustified
        // allow is reported separately below, so CI still fails)
        for f in raw {
            let supp = file
                .suppressions
                .iter()
                .find(|s| s.rule == f.rule && s.target == f.line);
            if let Some(s) = supp {
                s.used.set(true);
            }
            report.findings.push(RecordedFinding {
                path: rel.clone(),
                line: f.line,
                rule: f.rule.to_string(),
                message: f.message,
                suppressed: supp.is_some(),
                justification: supp.and_then(|s| s.justification.clone()),
            });
        }

        // suppression hygiene: these meta-findings cannot themselves be
        // suppressed
        for s in &file.suppressions {
            if !s.justified() {
                report.findings.push(RecordedFinding {
                    path: rel.clone(),
                    line: s.line,
                    rule: "bare-allow".to_string(),
                    message: format!(
                        "lint:allow({}) without a written justification; append \
                         `: <why this is sound>`",
                        s.rule
                    ),
                    suppressed: false,
                    justification: None,
                });
            }
            if !s.used.get() {
                let why = if is_known_rule(&s.rule) {
                    "it silences nothing on its target line — remove it"
                } else {
                    "no such rule exists — fix the rule name or remove it"
                };
                report.findings.push(RecordedFinding {
                    path: rel.clone(),
                    line: s.line,
                    rule: "unused-allow".to_string(),
                    message: format!("lint:allow({}): {}", s.rule, why),
                    suppressed: false,
                    justification: None,
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    report
}

/// Human-readable report: one `path:line rule message` per unsuppressed
/// finding, plus a summary line.
pub fn format_human(report: &Report) -> String {
    let mut out = String::new();
    for f in report.unsuppressed() {
        let _ = writeln!(out, "{}:{} {} {}", f.path, f.line, f.rule, f.message);
    }
    let _ = writeln!(
        out,
        "selsync-lint: {} unsuppressed finding(s), {} suppressed, {} files scanned",
        report.unsuppressed_count(),
        report.suppressed_count(),
        report.files_scanned
    );
    out
}
