//! The determinism & protocol-invariant rules.
//!
//! Each rule is a token-level check with a path scope. Scopes are
//! matched against workspace-relative paths (`crates/<name>/...`), so
//! the fixture trees under `tests/fixtures/` exercise the same scoping
//! logic as the real workspace.

use crate::index::WorkspaceIndex;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// One raised finding, before suppression is applied.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that raised it.
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// A lint rule: a named token-level check with a path scope.
pub trait Rule {
    /// Kebab-case rule name, as used in `lint:allow(<name>)`.
    fn name(&self) -> &'static str;
    /// Whether findings inside test code count. Most determinism rules
    /// police runtime behaviour only; the `unsafe` rules police
    /// everything.
    fn lints_tests(&self) -> bool {
        false
    }
    /// Whether this rule runs on the file at workspace-relative `rel`.
    fn in_scope(&self, rel: &str) -> bool;
    /// Scan the file and append findings.
    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>);
}

/// A cross-file rule: runs once per scan over the whole
/// [`WorkspaceIndex`], after the per-file rules. Findings are keyed by
/// the workspace-relative path they belong to, so suppression
/// resolution works exactly as for per-file rules.
pub trait WorkspaceRule {
    /// Kebab-case rule name, as used in `lint:allow(<name>)`.
    fn name(&self) -> &'static str;
    /// Scan the index and append `(path, finding)` pairs.
    fn check(&self, index: &WorkspaceIndex, out: &mut Vec<(String, Finding)>);
}

/// The full registry, in stable order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NondetIteration),
        Box::new(NondetTime),
        Box::new(UnwrapInProd),
        Box::new(UnsafeNeedsSafety),
        Box::new(UnsafeOutsideKernels),
        Box::new(FloatOrder),
        Box::new(RawNet),
        Box::new(WireWildcard),
        Box::new(PollBlocking),
        Box::new(UnboundedRetry),
        Box::new(LockAcrossSend),
    ]
}

/// The cross-file registry, in stable order.
pub fn workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![Box::new(crate::wire::WireConformance)]
}

/// Names of findings the engine itself emits about suppression misuse.
pub const META_RULES: [&str; 2] = ["bare-allow", "unused-allow"];

/// Is `name` a real rule (registry, workspace registry, or engine
/// meta-rule)?
pub fn is_known_rule(name: &str) -> bool {
    all_rules().iter().any(|r| r.name() == name)
        || workspace_rules().iter().any(|r| r.name() == name)
        || META_RULES.contains(&name)
}

fn in_crates(rel: &str, crates: &[&str]) -> bool {
    crates
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/")))
}

/// Emit a finding for each occurrence, honoring the rule's test-code
/// policy.
fn emit(rule: &dyn Rule, f: &SourceFile, line: u32, message: String, out: &mut Vec<Finding>) {
    if !rule.lints_tests() && f.is_test_line(line) {
        return;
    }
    out.push(Finding {
        rule: rule.name(),
        line,
        message,
    });
}

// ---------------------------------------------------------------------
// nondet-iteration
// ---------------------------------------------------------------------

/// `HashMap`/`HashSet` in protocol, fingerprint, checkpoint and
/// state-serialization paths. Their iteration order is randomized per
/// process, so any loop, `.keys()`, `.values()` or serialization over
/// one breaks the bit-identical-replay contract. Require `BTreeMap`/
/// `BTreeSet` (deterministic order) or an explicit sort.
struct NondetIteration;

impl Rule for NondetIteration {
    fn name(&self) -> &'static str {
        "nondet-iteration"
    }
    fn in_scope(&self, rel: &str) -> bool {
        in_crates(rel, &["comm", "core", "net", "chaos", "serve", "shard"])
    }
    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        for t in &f.toks {
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                emit(
                    self,
                    f,
                    t.line,
                    format!(
                        "`{}` has nondeterministic iteration order in a protocol/state path; \
                         use BTreeMap/BTreeSet or sort before iterating",
                        t.text
                    ),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// nondet-time
// ---------------------------------------------------------------------

/// Wall-clock reads outside the allowlisted timeout/watchdog modules.
/// A protocol decision derived from `Instant::now()` diverges across
/// ranks and replays; clocks are only legitimate for liveness deadlines
/// in the modules that own them.
struct NondetTime;

/// Modules allowed to read the clock: they implement timeouts,
/// watchdogs and liveness deadlines, where wall time is the point.
const TIME_ALLOWLIST: [&str; 7] = [
    "crates/comm/src/elastic.rs",
    "crates/comm/src/fabric.rs",
    "crates/comm/src/shard.rs",
    "crates/core/src/elastic.rs",
    "crates/net/src/poll.rs",
    "crates/net/src/tcp.rs",
    "crates/serve/src/timer.rs",
];

impl Rule for NondetTime {
    fn name(&self) -> &'static str {
        "nondet-time"
    }
    fn in_scope(&self, rel: &str) -> bool {
        in_crates(rel, &["comm", "core", "net", "serve", "shard"]) && !TIME_ALLOWLIST.contains(&rel)
    }
    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        for w in f.toks.windows(4) {
            if (w[0].is_ident("Instant") || w[0].is_ident("SystemTime"))
                && w[1].is_punct(':')
                && w[2].is_punct(':')
                && w[3].is_ident("now")
            {
                emit(
                    self,
                    f,
                    w[0].line,
                    format!(
                        "`{}::now()` outside the timeout/watchdog allowlist makes protocol \
                         behaviour wall-clock dependent; plumb deadlines in from an \
                         allowlisted module",
                        w[0].text
                    ),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// unwrap-in-prod
// ---------------------------------------------------------------------

/// Panicking escape hatches in production paths of the distributed
/// stack. PR 3 purged `net`/`comm` so a lost packet degrades to a typed
/// `TransportError` instead of killing the rank; this rule keeps them
/// purged and extends the contract to `chaos`/`core`/`data`/`stats`.
struct UnwrapInProd;

impl Rule for UnwrapInProd {
    fn name(&self) -> &'static str {
        "unwrap-in-prod"
    }
    fn in_scope(&self, rel: &str) -> bool {
        in_crates(
            rel,
            &[
                "net", "comm", "chaos", "core", "data", "stats", "serve", "shard",
            ],
        )
    }
    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &f.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next_is = |c: char| toks.get(i + 1).is_some_and(|n| n.is_punct(c));
            let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');
            let hit = match t.text.as_str() {
                "unwrap" | "expect" => prev_is_dot && next_is('('),
                "panic" | "unreachable" | "todo" | "unimplemented" => next_is('!') && !prev_is_dot,
                _ => false,
            };
            if hit {
                let what = if next_is('!') {
                    format!("{}!", t.text)
                } else {
                    format!(".{}()", t.text)
                };
                emit(
                    self,
                    f,
                    t.line,
                    format!(
                        "`{what}` in production code can kill a rank mid-protocol; return a \
                         typed error or justify with lint:allow"
                    ),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// unsafe-needs-safety
// ---------------------------------------------------------------------

/// Every `unsafe` block/fn/impl must be immediately preceded by a
/// `// SAFETY:` comment stating the invariant that makes it sound
/// (attribute lines may sit between the comment and the keyword).
struct UnsafeNeedsSafety;

impl Rule for UnsafeNeedsSafety {
    fn name(&self) -> &'static str {
        "unsafe-needs-safety"
    }
    fn lints_tests(&self) -> bool {
        true
    }
    fn in_scope(&self, _rel: &str) -> bool {
        true
    }
    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        for t in &f.toks {
            if t.is_ident("unsafe") && !has_safety_comment(f, t.line) {
                out.push(Finding {
                    rule: self.name(),
                    line: t.line,
                    message: "`unsafe` without an immediately preceding `// SAFETY:` comment \
                              stating the invariant that makes it sound"
                        .to_string(),
                });
            }
        }
    }
}

/// Is the `unsafe` on `line` covered by a SAFETY comment? Accepted
/// shapes: a comment on the same line before the keyword, or a
/// contiguous comment block directly above (attribute-only lines in
/// between are skipped) in which some line starts with `SAFETY:`.
fn has_safety_comment(f: &SourceFile, line: u32) -> bool {
    let is_safety = |text: &str| text.trim_start().starts_with("SAFETY:");
    // same-line comment (e.g. `let x = /* SAFETY: ... */ unsafe { .. }`)
    if f.comments
        .iter()
        .any(|c| c.line == line && is_safety(&c.text))
    {
        return true;
    }
    // walk upward over attribute-only lines to the adjacent line
    let mut l = line.saturating_sub(1);
    while l > 0 && f.is_attr_only_line(l) {
        l -= 1;
    }
    // the contiguous run of comment lines ending at `l`
    let mut covered = l;
    loop {
        let Some(c) = f
            .comments
            .iter()
            .find(|c| c.own_line && c.end_line == covered)
        else {
            return false;
        };
        if is_safety(&c.text) {
            return true;
        }
        if c.line == 0 {
            return false;
        }
        covered = c.line - 1;
    }
}

// ---------------------------------------------------------------------
// unsafe-outside-kernels
// ---------------------------------------------------------------------

/// `unsafe` is confined to the two crates with a reason to exist below
/// the safety line: `tensor` (SIMD microkernels) and `net` (raw socket
/// setup). Everywhere else it is a finding — and additionally
/// compiler-enforced via `#![deny(unsafe_code)]` in those crate roots.
struct UnsafeOutsideKernels;

impl Rule for UnsafeOutsideKernels {
    fn name(&self) -> &'static str {
        "unsafe-outside-kernels"
    }
    fn lints_tests(&self) -> bool {
        true
    }
    fn in_scope(&self, rel: &str) -> bool {
        rel.starts_with("crates/") && !in_crates(rel, &["tensor", "net"])
    }
    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        for t in &f.toks {
            if t.is_ident("unsafe") {
                out.push(Finding {
                    rule: self.name(),
                    line: t.line,
                    message: "`unsafe` is permitted only in crates/tensor (SIMD kernels) and \
                              crates/net (socket setup)"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// float-order
// ---------------------------------------------------------------------

/// Unordered parallel float reductions. `par_iter().sum()` and friends
/// combine partial results in scheduler-dependent order; float addition
/// is not associative, so the result varies run to run and breaks the
/// serial≡parallel bit-identity contract (PR 4). Reduce over a fixed
/// chunking instead, combining partials in index order.
struct FloatOrder;

const PAR_SOURCES: [&str; 7] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_chunks_exact",
    "par_windows",
];
const UNORDERED_REDUCERS: [&str; 3] = ["sum", "product", "reduce"];

impl Rule for FloatOrder {
    fn name(&self) -> &'static str {
        "float-order"
    }
    fn in_scope(&self, rel: &str) -> bool {
        rel.starts_with("crates/") || rel.starts_with("src/") || rel.starts_with("examples/")
    }
    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &f.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if !(t.kind == TokKind::Ident && PAR_SOURCES.contains(&t.text.as_str()))
                || i == 0
                || !toks[i - 1].is_punct('.')
            {
                continue;
            }
            // scan the rest of the method chain: stop at a statement
            // boundary or when the expression's nesting closes
            let mut depth = 0i32;
            for j in i + 1..toks.len() {
                let u = &toks[j];
                if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if u.is_punct(';') && depth == 0 {
                    break;
                } else if depth == 0
                    && u.kind == TokKind::Ident
                    && UNORDERED_REDUCERS.contains(&u.text.as_str())
                    && j > 0
                    && toks[j - 1].is_punct('.')
                {
                    emit(
                        self,
                        f,
                        u.line,
                        format!(
                            "`.{}()` after `.{}()` reduces in scheduler order; float \
                             accumulation must combine partials in index order to stay \
                             bit-identical across thread counts",
                            u.text, t.text
                        ),
                        out,
                    );
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// raw-net
// ---------------------------------------------------------------------

/// `std::net` types outside `crates/net`. All wire traffic must flow
/// through the `Transport` abstraction so byte accounting, chaos
/// injection and the codec's frame invariants cannot be bypassed.
struct RawNet;

impl Rule for RawNet {
    fn name(&self) -> &'static str {
        "raw-net"
    }
    fn in_scope(&self, rel: &str) -> bool {
        !rel.starts_with("crates/net/")
    }
    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        for w in f.toks.windows(4) {
            if w[0].is_ident("std")
                && w[1].is_punct(':')
                && w[2].is_punct(':')
                && w[3].is_ident("net")
            {
                emit(
                    self,
                    f,
                    w[0].line,
                    "`std::net` outside crates/net bypasses the Transport layer (byte \
                     accounting, chaos injection, frame codec); use selsync-net"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// wire-wildcard
// ---------------------------------------------------------------------

/// No `_ =>` wildcard arms in matches over `Payload` (or the codec's
/// frame `kind`). A wildcard silently swallows newly added wire
/// variants; an explicit variant list makes the compiler flag every
/// match site when the wire format grows.
struct WireWildcard;

impl Rule for WireWildcard {
    fn name(&self) -> &'static str {
        "wire-wildcard"
    }
    fn in_scope(&self, rel: &str) -> bool {
        in_crates(rel, &["comm", "net", "core", "chaos", "serve", "shard"])
    }
    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &f.toks;
        let in_net = f.rel.starts_with("crates/net/");
        let mut i = 0;
        while i < toks.len() {
            if !toks[i].is_ident("match") {
                i += 1;
                continue;
            }
            // scrutinee: tokens between `match` and its body `{`
            let mut j = i + 1;
            let mut paren = 0i32;
            let mut relevant = false;
            while j < toks.len() {
                let u = &toks[j];
                if u.is_punct('(') || u.is_punct('[') {
                    paren += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    paren -= 1;
                } else if u.is_punct('{') && paren == 0 {
                    break;
                } else if u.kind == TokKind::Ident
                    && (u.text == "payload" || u.text == "Payload" || (in_net && u.text == "kind"))
                {
                    relevant = true;
                }
                j += 1;
            }
            if !relevant || j >= toks.len() {
                i += 1;
                continue;
            }
            // body: find `_ =>` or `_ if` arms at arm level
            let mut brace = 0i32;
            let mut paren2 = 0i32;
            let mut k = j;
            while k < toks.len() {
                let u = &toks[k];
                if u.is_punct('{') {
                    brace += 1;
                } else if u.is_punct('}') {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                } else if u.is_punct('(') || u.is_punct('[') {
                    paren2 += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    paren2 -= 1;
                } else if brace == 1
                    && paren2 == 0
                    && u.is_ident("_")
                    && toks.get(k + 1).is_some_and(|n| {
                        (n.is_punct('=') && toks.get(k + 2).is_some_and(|m| m.is_punct('>')))
                            || n.is_ident("if")
                    })
                {
                    emit(
                        self,
                        f,
                        u.line,
                        "wildcard `_ =>` arm in a Payload/codec match silently swallows \
                         future wire variants; list the variants explicitly so new ones \
                         fail at compile time"
                            .to_string(),
                        out,
                    );
                }
                k += 1;
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------
// poll-blocking
// ---------------------------------------------------------------------

/// Blocking calls inside the poll driver. `PollTcpEndpoint`'s single
/// driver thread multiplexes every connection with nonblocking I/O; one
/// blocking `read`/`sleep`/`lock` in `driver_loop` or anything it calls
/// stalls *all* peers at once. The rule builds the intra-file call
/// graph from `driver_loop` and denies a fixed list of blocking calls
/// in every reachable fn; justified `lint:allow(poll-blocking)` marks
/// the deliberate exceptions (the idle backoff sleep, the bounded
/// redial attempt).
struct PollBlocking;

/// Call names that block the calling thread. `recv` is exact — the
/// nonblocking `try_recv` and deadline-bounded `recv_timeout` pass.
const BLOCKING_CALLS: [&str; 14] = [
    "sleep",
    "read_exact",
    "write_all",
    "read_to_end",
    "read_to_string",
    "recv",
    "lock",
    "join",
    "wait",
    "park",
    "dial",
    "connect",
    "connect_timeout",
    "shake_hands_as_dialer",
];

impl Rule for PollBlocking {
    fn name(&self) -> &'static str {
        "poll-blocking"
    }
    fn in_scope(&self, rel: &str) -> bool {
        rel.starts_with("crates/net/")
            && rel
                .rsplit('/')
                .next()
                .is_some_and(|f| f.starts_with("poll"))
    }
    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        let fns = &f.items.fns;
        let Some(entry) = fns.iter().position(|x| x.name == "driver_loop") else {
            return;
        };
        // BFS over the intra-file call graph from driver_loop
        let mut reachable = vec![false; fns.len()];
        reachable[entry] = true;
        let mut work = vec![entry];
        while let Some(cur) = work.pop() {
            for k in fns[cur].body.clone() {
                let t = &f.toks[k];
                if t.kind != TokKind::Ident
                    || !f.toks.get(k + 1).is_some_and(|n| n.is_punct('('))
                    || (k > 0 && f.toks[k - 1].is_ident("fn"))
                {
                    continue;
                }
                if let Some(callee) = fns.iter().position(|x| x.name == t.text) {
                    if !reachable[callee] {
                        reachable[callee] = true;
                        work.push(callee);
                    }
                }
            }
        }
        for (fi, item) in fns.iter().enumerate() {
            if !reachable[fi] {
                continue;
            }
            for k in item.body.clone() {
                let t = &f.toks[k];
                let is_call = t.kind == TokKind::Ident
                    && f.toks.get(k + 1).is_some_and(|n| n.is_punct('('))
                    && !(k > 0 && f.toks[k - 1].is_ident("fn"));
                if !is_call || !BLOCKING_CALLS.contains(&t.text.as_str()) {
                    continue;
                }
                // a call resolving to a local fn is traversed by the
                // BFS instead; only calls leaving the file are denied
                if fns.iter().any(|x| x.name == t.text) {
                    continue;
                }
                emit(
                    self,
                    f,
                    t.line,
                    format!(
                        "`{}(...)` blocks the poll driver (reachable from driver_loop via {}); \
                         the sweep must stay nonblocking — use a try_/timeout variant or move \
                         the work off the driver thread",
                        t.text, item.name
                    ),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// unbounded-retry
// ---------------------------------------------------------------------

/// Retry loops without a visible bound. A `loop`/`while` that redials
/// or reconnects must reference *some* cap — a deadline, timeout,
/// backoff, attempt counter or budget — inside its head or body, or a
/// dead peer turns into an infinite spin that holds the rank forever
/// instead of surfacing a typed liveness error.
struct UnboundedRetry;

/// Call names that mark a loop as a dial/send-retry loop.
const RETRY_CALLS: [&str; 8] = [
    "dial",
    "redial",
    "redial_once",
    "reconnect",
    "connect",
    "connect_timeout",
    "bind_reuse",
    "resend",
];

/// Identifier substrings accepted as evidence of a bound.
const BOUND_MARKERS: [&str; 9] = [
    "deadline", "timeout", "backoff", "budget", "attempt", "retries", "patience", "max_",
    "shutdown",
];

impl Rule for UnboundedRetry {
    fn name(&self) -> &'static str {
        "unbounded-retry"
    }
    fn in_scope(&self, rel: &str) -> bool {
        in_crates(rel, &["net", "comm"])
    }
    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &f.toks;
        for l in &f.items.loops {
            let span = l.span.clone();
            let is_call = |k: usize| {
                toks[k].kind == TokKind::Ident
                    && toks.get(k + 1).is_some_and(|n| n.is_punct('('))
                    && !(k > 0 && toks[k - 1].is_ident("fn"))
            };
            let has_dial = span
                .clone()
                .any(|k| is_call(k) && RETRY_CALLS.contains(&toks[k].text.as_str()));
            let has_resend = span.clone().any(|k| is_call(k) && toks[k].text == "send")
                && span.clone().any(|k| toks[k].is_ident("Err"))
                && span.clone().any(|k| toks[k].is_ident("continue"));
            if !has_dial && !has_resend {
                continue;
            }
            // a bound marker anywhere in the loop head or body counts,
            // but not the retry call's own name (connect_timeout bounds
            // one attempt, not the loop)
            let bounded = span.clone().any(|k| {
                let t = &toks[k];
                if t.kind != TokKind::Ident
                    || (is_call(k) && RETRY_CALLS.contains(&t.text.as_str()))
                {
                    return false;
                }
                let lower = t.text.to_lowercase();
                BOUND_MARKERS.iter().any(|m| lower.contains(m))
            });
            if !bounded {
                emit(
                    self,
                    f,
                    l.line,
                    "retry loop with no visible bound: reference a deadline, timeout, \
                     backoff, attempt cap or budget in the loop, or a dead peer spins \
                     this rank forever"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// lock-across-send
// ---------------------------------------------------------------------

/// A `MutexGuard` held across a `Transport::send`. The send can block
/// on a slow or dead peer (bounded only by the transport's own
/// timeout), and every thread contending on the mutex stalls with it —
/// the classic path from one sick peer to a wedged rank. Drop the
/// guard (end its block or `drop(guard)`) before sending.
struct LockAcrossSend;

impl Rule for LockAcrossSend {
    fn name(&self) -> &'static str {
        "lock-across-send"
    }
    fn in_scope(&self, rel: &str) -> bool {
        rel.starts_with("crates/comm/")
    }
    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        struct Guard {
            name: Option<String>,
            depth: i32,
            line: u32,
        }
        let toks = &f.toks;
        let mut depth = 0i32;
        let mut guards: Vec<Guard> = Vec::new();
        // index of the current statement's first token, for `let` naming
        let mut stmt_start = 0usize;
        for k in 0..toks.len() {
            let t = &toks[k];
            if t.is_punct('{') {
                depth += 1;
                stmt_start = k + 1;
            } else if t.is_punct('}') {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                stmt_start = k + 1;
            } else if t.is_punct(';') {
                // statement end: temporaries (unnamed guards) at this
                // depth die here
                guards.retain(|g| g.name.is_some() || g.depth < depth);
                stmt_start = k + 1;
            } else if t.is_ident("drop")
                && toks.get(k + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(k + 3).is_some_and(|n| n.is_punct(')'))
            {
                if let Some(name) = toks.get(k + 2).filter(|n| n.kind == TokKind::Ident) {
                    guards.retain(|g| g.name.as_deref() != Some(name.text.as_str()));
                }
            } else if t.is_ident("lock")
                && k > 0
                && toks[k - 1].is_punct('.')
                && toks.get(k + 1).is_some_and(|n| n.is_punct('('))
            {
                // `let [mut] NAME = ...lock()...` binds a named guard;
                // anything else holds an unnamed temporary
                let name = if toks.get(stmt_start).is_some_and(|s| s.is_ident("let")) {
                    let mut n = stmt_start + 1;
                    if toks.get(n).is_some_and(|s| s.is_ident("mut")) {
                        n += 1;
                    }
                    toks.get(n)
                        .filter(|s| s.kind == TokKind::Ident)
                        .map(|s| s.text.clone())
                } else {
                    None
                };
                guards.push(Guard {
                    name,
                    depth,
                    line: t.line,
                });
            } else if t.is_ident("send")
                && k > 0
                && toks[k - 1].is_punct('.')
                && toks.get(k + 1).is_some_and(|n| n.is_punct('('))
            {
                if let Some(g) = guards.last() {
                    emit(
                        self,
                        f,
                        t.line,
                        format!(
                            "`.send()` while the mutex guard taken on line {} is still \
                             live; a slow peer now stalls every thread contending on \
                             that lock — drop the guard before sending",
                            g.line
                        ),
                        out,
                    );
                }
            }
        }
    }
}
