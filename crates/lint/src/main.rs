//! CLI for the workspace determinism & protocol-invariant linter.
//!
//! ```text
//! selsync-lint [--json] [--root DIR] [--baseline FILE] [PATH...]
//! selsync-lint --write-baseline FILE [--root DIR] [PATH...]
//! selsync-lint --wire-table [--root DIR]
//! ```
//!
//! Scans `crates/ src/ tests/ examples/` under the workspace root (or
//! the given PATHs, relative to it) and exits nonzero on any
//! unsuppressed finding. `--json` emits the machine-readable report on
//! stdout, self-validated before printing — malformed JSON is a build
//! failure, not a silent artifact. `--baseline` diffs the run against
//! a committed snapshot and fails on drift in either direction (new
//! finding, or stale entry); `--write-baseline` regenerates the
//! snapshot. `--wire-table` prints the kind → layout table derived
//! from the parsed codec, which ci.sh diffs against DESIGN.md.
#![deny(unsafe_code)]

use selsync_lint::{baseline, engine, json, wire};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
selsync-lint: workspace determinism & protocol-invariant linter

USAGE:
  selsync-lint [--json] [--root DIR] [--baseline FILE] [PATH...]
  selsync-lint --write-baseline FILE [--root DIR] [PATH...]
  selsync-lint --wire-table [--root DIR]

OPTIONS:
  --json                 emit the machine-readable report (self-validated)
  --root DIR             workspace root to scan from (default: .)
  --baseline FILE        diff findings against the committed snapshot;
                         fail on any new finding or stale entry
  --write-baseline FILE  snapshot the current findings to FILE and exit 0
  --wire-table           print the kind -> layout table parsed from the codec
  PATH...                sub-paths to scan instead of crates/ src/ tests/ examples/
  -h, --help             show this help

EXIT CODES:
  0  no unsuppressed findings (or: all findings covered by the baseline)
  1  unsuppressed findings / baseline drift
  2  usage / IO / internal error
";

fn main() -> ExitCode {
    let mut json_mode = false;
    let mut wire_table = false;
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_mode = true,
            "--wire-table" => wire_table = true,
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("selsync-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(f) => baseline_path = Some(PathBuf::from(f)),
                None => {
                    eprintln!("selsync-lint: --baseline needs a file\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => match args.next() {
                Some(f) => write_baseline = Some(PathBuf::from(f)),
                None => {
                    eprintln!("selsync-lint: --write-baseline needs a file\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("selsync-lint: unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            p => paths.push(p.to_string()),
        }
    }
    if paths.is_empty() {
        paths = engine::DEFAULT_ROOTS
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    let index = match engine::load_index(&root, &paths) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("selsync-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if index.files.is_empty() {
        eprintln!(
            "selsync-lint: no .rs files under {} in {:?}",
            root.display(),
            paths
        );
        return ExitCode::from(2);
    }

    if wire_table {
        return match wire::wire_table(&index) {
            Ok(t) => {
                print!("{t}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("selsync-lint: --wire-table: {e}");
                ExitCode::from(2)
            }
        };
    }

    let report = engine::run_on_index(&index);

    if let Some(path) = write_baseline {
        let snapshot = baseline::to_json(&report);
        if let Err(e) = json::validate(&snapshot) {
            eprintln!("selsync-lint: internal error: baseline JSON is malformed: {e}");
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::write(&path, &snapshot) {
            eprintln!("selsync-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "selsync-lint: snapshotted {} finding(s) ({} unsuppressed) to {}",
            report.findings.len(),
            report.unsuppressed_count(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if json_mode {
        let out = json::to_json(&report);
        if let Err(e) = json::validate(&out) {
            eprintln!("selsync-lint: internal error: emitted JSON is malformed: {e}");
            return ExitCode::from(2);
        }
        print!("{out}");
    }

    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("selsync-lint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let base = match baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("selsync-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let d = baseline::diff(&report, &base);
        if !json_mode {
            for f in &d.new {
                println!(
                    "{}:{} {} [NEW vs baseline] {}",
                    f.path, f.line, f.rule, f.message
                );
            }
            for b in &d.stale {
                println!(
                    "{}:{} {} [STALE baseline entry] regenerate with --write-baseline",
                    b.path, b.line, b.rule
                );
            }
            println!(
                "selsync-lint: {} new, {} stale, {} baselined, {} files scanned",
                d.new.len(),
                d.stale.len(),
                d.matched,
                report.files_scanned
            );
        }
        return if d.clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if !json_mode {
        print!("{}", engine::format_human(&report));
    }

    if report.unsuppressed_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
