//! CLI for the workspace determinism & protocol-invariant linter.
//!
//! ```text
//! selsync-lint [--json] [--root DIR] [PATH...]
//! ```
//!
//! Scans `crates/ src/ tests/ examples/` under the workspace root (or
//! the given PATHs, relative to it) and exits nonzero on any
//! unsuppressed finding. `--json` emits the machine-readable report on
//! stdout, self-validated before printing — malformed JSON is a build
//! failure, not a silent artifact.
#![deny(unsafe_code)]

use selsync_lint::{engine, json};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
selsync-lint: workspace determinism & protocol-invariant linter

USAGE:
  selsync-lint [--json] [--root DIR] [PATH...]

OPTIONS:
  --json        emit the machine-readable report (self-validated)
  --root DIR    workspace root to scan from (default: .)
  PATH...       sub-paths to scan instead of crates/ src/ tests/ examples/
  -h, --help    show this help

EXIT CODES:
  0  no unsuppressed findings
  1  unsuppressed findings
  2  usage / IO / internal error
";

fn main() -> ExitCode {
    let mut json_mode = false;
    let mut root = PathBuf::from(".");
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_mode = true,
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("selsync-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("selsync-lint: unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            p => paths.push(p.to_string()),
        }
    }
    if paths.is_empty() {
        paths = engine::DEFAULT_ROOTS
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    let report = match engine::run(&root, &paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("selsync-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if report.files_scanned == 0 {
        eprintln!(
            "selsync-lint: no .rs files under {} in {:?}",
            root.display(),
            paths
        );
        return ExitCode::from(2);
    }

    if json_mode {
        let out = json::to_json(&report);
        if let Err(e) = json::validate(&out) {
            eprintln!("selsync-lint: internal error: emitted JSON is malformed: {e}");
            return ExitCode::from(2);
        }
        print!("{out}");
    } else {
        print!("{}", engine::format_human(&report));
    }

    if report.unsuppressed_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
