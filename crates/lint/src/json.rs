//! Hand-rolled JSON emission and parsing for the `--json` report and
//! the `--baseline` snapshot.
//!
//! The lint crate is dependency-free by policy (it must build from std
//! alone), so it carries its own emitter plus a small value-producing
//! parser. The parser does double duty: every emitted report is
//! self-checked before it reaches CI (`--json` output that does not
//! parse is itself a build failure), and `lint-baseline.json` is read
//! back through the same code path, so the snapshot round-trips
//! through the exact grammar the emitter writes.

use crate::engine::Report;

/// A parsed JSON value. Object keys keep insertion order — the
/// baseline differ never needs hashing, and output stays
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` for other shapes.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escape a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize a report. Schema:
///
/// ```json
/// {
///   "version": 1,
///   "files_scanned": 104,
///   "unsuppressed": 0,
///   "suppressed": 3,
///   "findings": [
///     {"path": "...", "line": 12, "rule": "...", "message": "...",
///      "suppressed": false, "justification": null}
///   ]
/// }
/// ```
pub fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"unsuppressed\": {},\n",
        report.unsuppressed_count()
    ));
    out.push_str(&format!(
        "  \"suppressed\": {},\n",
        report.suppressed_count()
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"path\": \"{}\", ", escape(&f.path)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"rule\": \"{}\", ", escape(&f.rule)));
        out.push_str(&format!("\"message\": \"{}\", ", escape(&f.message)));
        out.push_str(&format!("\"suppressed\": {}, ", f.suppressed));
        match &f.justification {
            Some(j) => out.push_str(&format!("\"justification\": \"{}\"", escape(j))),
            None => out.push_str("\"justification\": null"),
        }
        out.push('}');
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parse `s` as one well-formed JSON value with nothing trailing.
/// Returns a position-annotated error otherwise.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    let v = value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(v)
}

/// Validate that `s` is one well-formed JSON value with nothing
/// trailing. Returns a position-annotated error otherwise.
pub fn validate(s: &str) -> Result<(), String> {
    parse(s).map(|_| ())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i).map(Value::Str),
        Some(b't') => literal(b, i, "true").map(|_| Value::Bool(true)),
        Some(b'f') => literal(b, i, "false").map(|_| Value::Bool(false)),
        Some(b'n') => literal(b, i, "null").map(|_| Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        other => Err(format!("unexpected {:?} at offset {}", other, *i)),
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<Value, String> {
    *i += 1; // '{'
    let mut members = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(b, i);
        let key = string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at offset {}", *i));
        }
        *i += 1;
        let v = value(b, i)?;
        members.push((key, v));
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Value::Obj(members));
            }
            other => return Err(format!("expected ',' or '}}', got {:?} at {}", other, *i)),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<Value, String> {
    *i += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(value(b, i)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Value::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', got {:?} at {}", other, *i)),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at offset {}", *i));
    }
    *i += 1;
    let mut out: Vec<u8> = Vec::new();
    while *i < b.len() {
        match b[*i] {
            b'\\' => {
                let esc = b.get(*i + 1).copied();
                *i += 2;
                match esc {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = b
                            .get(*i..*i + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {}", *i))?;
                        *i += 4;
                        // lone surrogates decode to the replacement
                        // character; the emitter never writes them
                        let c = char::from_u32(hex).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape {:?} at offset {}", other, *i)),
                }
            }
            b'"' => {
                *i += 1;
                return String::from_utf8(out).map_err(|e| format!("bad UTF-8 in string: {e}"));
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *i)),
            c => {
                out.push(c);
                *i += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], i: &mut usize) -> Result<Value, String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while *i < b.len()
        && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    if *i == start {
        return Err(format!("empty number at offset {start}"));
    }
    let text = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {text:?} at offset {start}: {e}"))
}

fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {}", *i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RecordedFinding;

    #[test]
    fn empty_report_roundtrips() {
        let r = Report::default();
        validate(&to_json(&r)).expect("empty report must be valid JSON");
    }

    #[test]
    fn hostile_strings_are_escaped() {
        let mut r = Report {
            files_scanned: 1,
            ..Default::default()
        };
        r.findings.push(RecordedFinding {
            path: "a\\b\"c.rs".to_string(),
            line: 3,
            rule: "nondet-iteration".to_string(),
            message: "quote \" backslash \\ newline \n tab \t control \u{1}".to_string(),
            suppressed: true,
            justification: Some("multi\nline".to_string()),
        });
        validate(&to_json(&r)).expect("escaped report must be valid JSON");
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate("{").is_err());
        assert!(validate("{\"a\": }").is_err());
        assert!(validate("[1, 2,]").is_err());
        assert!(validate("{\"a\": 1} trailing").is_err());
        assert!(validate("\"unterminated").is_err());
        assert!(validate("{\"a\" 1}").is_err());
    }

    #[test]
    fn validator_accepts_wellformed() {
        assert!(validate("{\"a\": [1, -2.5e3, true, null, \"s\"], \"b\": {}}").is_ok());
    }

    #[test]
    fn parser_produces_values_and_unescapes() {
        let v = parse("{\"path\": \"a\\\"b\\\\c\", \"line\": 12, \"ok\": true, \"j\": null}")
            .expect("parse");
        assert_eq!(v.get("path").and_then(Value::as_str), Some("a\"b\\c"));
        assert_eq!(v.get("line").and_then(Value::as_u64), Some(12));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("j"), Some(&Value::Null));
        let u = parse("\"tab\\tu\\u0041\"").expect("escapes");
        assert_eq!(u.as_str(), Some("tab\tuA"));
    }

    #[test]
    fn emitted_report_parses_back_to_matching_values() {
        let mut r = Report {
            files_scanned: 2,
            ..Default::default()
        };
        r.findings.push(RecordedFinding {
            path: "crates/net/src/poll.rs".to_string(),
            line: 7,
            rule: "poll-blocking".to_string(),
            message: "msg".to_string(),
            suppressed: true,
            justification: Some("bounded idle backoff".to_string()),
        });
        let v = parse(&to_json(&r)).expect("round-trip");
        let fs = v.get("findings").and_then(Value::as_arr).expect("findings");
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].get("line").and_then(Value::as_u64), Some(7));
        assert_eq!(
            fs[0].get("rule").and_then(Value::as_str),
            Some("poll-blocking")
        );
        assert_eq!(fs[0].get("suppressed").and_then(Value::as_bool), Some(true));
    }
}
