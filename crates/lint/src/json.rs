//! Hand-rolled JSON emission and validation for the `--json` report.
//!
//! The lint crate is dependency-free by policy (it must build from std
//! alone), so it carries its own emitter plus a minimal parser used to
//! self-check every emitted report before it reaches CI — `--json`
//! output that does not parse is itself a build failure.

use crate::engine::Report;

/// Escape a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize a report. Schema:
///
/// ```json
/// {
///   "version": 1,
///   "files_scanned": 104,
///   "unsuppressed": 0,
///   "suppressed": 3,
///   "findings": [
///     {"path": "...", "line": 12, "rule": "...", "message": "...",
///      "suppressed": false, "justification": null}
///   ]
/// }
/// ```
pub fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"unsuppressed\": {},\n",
        report.unsuppressed_count()
    ));
    out.push_str(&format!(
        "  \"suppressed\": {},\n",
        report.suppressed_count()
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"path\": \"{}\", ", escape(&f.path)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"rule\": \"{}\", ", escape(&f.rule)));
        out.push_str(&format!("\"message\": \"{}\", ", escape(&f.message)));
        out.push_str(&format!("\"suppressed\": {}, ", f.suppressed));
        match &f.justification {
            Some(j) => out.push_str(&format!("\"justification\": \"{}\"", escape(j))),
            None => out.push_str("\"justification\": null"),
        }
        out.push('}');
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Validate that `s` is one well-formed JSON value with nothing
/// trailing. Returns a position-annotated error otherwise.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, "true"),
        Some(b'f') => literal(b, i, "false"),
        Some(b'n') => literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        other => Err(format!("unexpected {:?} at offset {}", other, *i)),
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at offset {}", *i));
        }
        *i += 1;
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {:?} at {}", other, *i)),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {:?} at {}", other, *i)),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at offset {}", *i));
    }
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2,
            b'"' => {
                *i += 1;
                return Ok(());
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *i)),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while *i < b.len()
        && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    if *i == start {
        return Err(format!("empty number at offset {start}"));
    }
    Ok(())
}

fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {}", *i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RecordedFinding;

    #[test]
    fn empty_report_roundtrips() {
        let r = Report::default();
        validate(&to_json(&r)).expect("empty report must be valid JSON");
    }

    #[test]
    fn hostile_strings_are_escaped() {
        let mut r = Report {
            files_scanned: 1,
            ..Default::default()
        };
        r.findings.push(RecordedFinding {
            path: "a\\b\"c.rs".to_string(),
            line: 3,
            rule: "nondet-iteration".to_string(),
            message: "quote \" backslash \\ newline \n tab \t control \u{1}".to_string(),
            suppressed: true,
            justification: Some("multi\nline".to_string()),
        });
        validate(&to_json(&r)).expect("escaped report must be valid JSON");
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate("{").is_err());
        assert!(validate("{\"a\": }").is_err());
        assert!(validate("[1, 2,]").is_err());
        assert!(validate("{\"a\": 1} trailing").is_err());
        assert!(validate("\"unterminated").is_err());
        assert!(validate("{\"a\" 1}").is_err());
    }

    #[test]
    fn validator_accepts_wellformed() {
        assert!(validate("{\"a\": [1, -2.5e3, true, null, \"s\"], \"b\": {}}").is_ok());
    }
}
